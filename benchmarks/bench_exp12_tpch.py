"""Fig. 14 + the SiCr/PrMo improvement table: TPC-H sequences (Exp12)."""

from conftest import run_once

from repro.bench import exp12_tpch as exp12


def test_exp12_tpch(benchmark, record_table):
    result = run_once(benchmark, exp12.run)
    record_table("exp12_fig14", exp12.describe(result))
    # Paper shape (steady state): sideways cracking beats plain MonetDB on
    # the selective multi-reconstruction queries once maps are cracked in.
    model = result["model_ms"]
    wins = 0
    for query_id, systems in model.items():
        third = max(1, len(systems["monetdb"]) // 3)
        if sum(systems["sideways"][-third:]) < sum(systems["monetdb"][-third:]):
            wins += 1
    assert wins >= 8, f"sideways steady-state wins on only {wins}/12 queries"
