"""Fig. 7: effect of updates, HFLV and LFHV scenarios (Exp6)."""

from conftest import run_once

from repro.bench import exp06_updates as exp06


def test_exp06_updates(benchmark, record_table):
    result = run_once(benchmark, exp06.run)
    record_table("exp06_fig7", exp06.describe(result))
    # Self-organization survives updates: the sequence completes and the
    # cracking systems keep answering correctly (checked in tests/); here we
    # assert the series exist for both scenarios and all systems.
    for scenario in ("HFLV", "LFHV"):
        for system in exp06.SYSTEMS:
            assert len(result["series_us"][scenario][system]) == result["queries"]
