"""Fig. 5: join queries with multiple selections and reconstructions (Exp4)."""

from conftest import run_once

from repro.bench import exp04_joins as exp04


def test_exp04_joins(benchmark, record_table):
    result = run_once(benchmark, exp04.run)
    record_table("exp04_fig5", exp04.describe(result))
    model = result["model_total_ms"]
    # Paper shape: sideways converges toward presorted, well under the
    # non-clustering systems (steady state = last third of the sequence).
    third = len(model["monetdb"]) // 3
    steady = {s: sum(v[-third:]) for s, v in model.items()}
    assert steady["sideways"] < steady["monetdb"]
    assert steady["presorted"] < steady["monetdb"]
