"""Ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.bench import ablations


def test_abl_partial_alignment(benchmark, record_table):
    result = run_once(benchmark, ablations.partial_alignment)
    record_table("abl_partial_alignment", ablations.describe("partial alignment", result))
    totals = result["totals"]
    # Partial alignment replays strictly fewer tape entries.
    assert totals["partial_alignment"]["replays"] <= totals["full_alignment"]["replays"]


def test_abl_head_dropping(benchmark, record_table):
    result = run_once(benchmark, ablations.head_dropping)
    record_table("abl_head_dropping", ablations.describe("head dropping", result))
    totals = result["totals"]
    # Dropping heads halves chunk footprints: fewer storage-pressure drops.
    assert totals["cold"]["peak_storage"] <= totals["off"]["peak_storage"] + 1


def test_abl_mapset_choice(benchmark, record_table):
    result = run_once(benchmark, ablations.mapset_choice)
    record_table("abl_mapset_choice", ablations.describe("map-set choice", result))
    totals = result["totals"]
    # The self-organizing histogram beats blindly taking the first predicate.
    assert totals["histogram"]["model_ms"] < totals["first_predicate"]["model_ms"]


def test_abl_crack_kernels(benchmark, record_table):
    result = run_once(benchmark, ablations.crack_kernels)
    record_table("abl_crack_kernels", ablations.describe("crack kernels", result))
    totals = result["totals"]
    # One three-way pass touches fewer elements than two two-way passes.
    assert (totals["crack_in_three"]["touches"]
            < totals["two_crack_in_two"]["touches"])
    # Both end with the same partitioning knowledge.
    assert totals["crack_in_three"]["pieces"] == totals["two_crack_in_two"]["pieces"]


def test_abl_chunk_size_enforcement(benchmark, record_table):
    result = run_once(benchmark, ablations.chunk_size_enforcement)
    record_table("abl_chunk_size",
                 ablations.describe("chunk-size enforcement", result))
    totals = result["totals"]
    # Bounded chunks cut the per-query peak (no giant chunk creations)...
    assert totals["enforced"]["peak_query_ms"] < totals["unbounded"]["peak_query_ms"]
    # ...at the price of more chunk creations.
    assert totals["enforced"]["chunks"] >= totals["unbounded"]["chunks"]
