"""Fig. 4(b): varying selectivity (Exp2)."""

from conftest import run_once

from repro.bench import exp02_selectivity as exp02


def test_exp02_selectivity(benchmark, record_table):
    result = run_once(benchmark, exp02.run)
    record_table("exp02_fig4b", exp02.describe(result))
    # Paper shape: after convergence sideways runs below MonetDB (model).
    for label, series in result["relative_model"].items():
        tail = series[-20:]
        assert sum(tail) / len(tail) < 1.0, label
