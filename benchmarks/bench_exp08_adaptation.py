"""Fig. 10: workload adaptation with partial maps (Exp8)."""

from conftest import run_once

from repro.bench import exp08_adaptation as exp08
from repro.bench.partial_common import FULL, PARTIAL


def test_exp08_adaptation(benchmark, record_table):
    result = run_once(benchmark, exp08.run)
    record_table("exp08_fig10", exp08.describe(result))
    # Partial maps materialize a fraction of what full maps allocate when
    # queries are selective or skewed.
    for case in exp08.VARIANTS:
        full_storage = max(result["storage_tuples"][case][FULL])
        partial_storage = max(result["storage_tuples"][case][PARTIAL])
        assert partial_storage < full_storage
