"""Fig. 9: storage restrictions, full vs partial maps (Exp7)."""

from conftest import run_once

from repro.bench import exp07_storage as exp07
from repro.bench.exp07_storage import batch_stats
from repro.bench.partial_common import FULL, PARTIAL


def test_exp07_storage(benchmark, record_table):
    result = run_once(benchmark, exp07.run)
    record_table("exp07_fig9", exp07.describe(result))
    batch = result["batch"]
    # Paper shape: under the tightest threshold, full maps' per-batch peaks
    # dwarf partial maps' (drop + recreate vs chunk-wise adaptation).
    # Model series: wall-clock peaks can be OS-noise outliers.
    tight = result["per_query_model_ms"]["T=2R"]
    full_peak = max(mx for mx, _ in batch_stats(tight[FULL], batch)[1:])
    partial_peak = max(mx for mx, _ in batch_stats(tight[PARTIAL], batch)[1:])
    assert full_peak > 2 * partial_peak
    # Storage stays within the threshold for partial maps.
    rows = result["rows"]
    assert max(result["storage_tuples"]["T=2R"][PARTIAL]) <= 2.05 * rows
