"""Fig. 4(a) + the Tot/TR/Sel breakdown table (Exp1)."""

from conftest import run_once

from repro.bench import exp01_tuple_reconstruction as exp01


def test_exp01_tuple_reconstruction(benchmark, record_table):
    result = run_once(benchmark, exp01.run)
    record_table("exp01_fig4a", exp01.describe(result))
    # Paper shape: presorted and sideways far cheaper than selection
    # cracking and plain MonetDB at 8 reconstructions (model cost).
    model = result["model_ms"]
    assert model["presorted"][8] < model["monetdb"][8]
    assert model["sideways"][8] < model["monetdb"][8]
    assert model["monetdb"][8] < model["selection_cracking"][8]
