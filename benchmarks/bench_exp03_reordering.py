"""Exp3: reordering intermediate results."""

from conftest import run_once

from repro.bench import exp03_reordering as exp03


def test_exp03_reordering(benchmark, record_table):
    result = run_once(benchmark, exp03.run)
    record_table("exp03_reordering", exp03.describe(result))
    model = result["model_ms"]
    # The reordering investment pays off only with enough projections.
    assert model["sort"][1] > model["unordered"][1]
    assert model["radix"][1] > model["unordered"][1]
    assert model["radix"][8] < model["unordered"][8]
    # Ordered (plain MonetDB) reconstruction is the floor.
    assert model["ordered"][8] < model["unordered"][8]
