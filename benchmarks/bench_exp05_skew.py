"""Fig. 6: skewed workload (Exp5)."""

from conftest import run_once

from repro.bench import exp05_skew as exp05


def test_exp05_skew(benchmark, record_table):
    result = run_once(benchmark, exp05.run)
    record_table("exp05_fig6", exp05.describe(result))
    model = result["model_ms"]
    third = len(model["monetdb"]) // 3
    assert sum(model["sideways"][-third:]) < sum(model["monetdb"][-third:])
