"""Fig. 11: total query-sequence cost, full vs partial (Exp9)."""

from conftest import run_once

from repro.bench import exp09_cumulative as exp09
from repro.bench.partial_common import FULL, PARTIAL


def test_exp09_cumulative(benchmark, record_table):
    result = run_once(benchmark, exp09.run)
    record_table("exp09_fig11", exp09.describe(result))
    totals = result["totals_seconds"]
    # Paper shape: selective queries favor partial maps outright.
    selective = totals["S=0.001 noT"]
    assert selective[PARTIAL] < selective[FULL]
    # At 30% selectivity the two are comparable (within 2x either way).
    broad = totals["S=0.3 noT"]
    ratio = broad[PARTIAL] / broad[FULL]
    assert 0.4 < ratio < 2.5
