"""Fig. 13: alignment cost, full vs partial maps (Exp11)."""

from conftest import run_once

from repro.bench import exp11_alignment as exp11
from repro.bench.exp07_storage import batch_stats
from repro.bench.partial_common import FULL, PARTIAL


def test_exp11_alignment(benchmark, record_table):
    result = run_once(benchmark, exp11.run)
    record_table("exp11_fig13", exp11.describe(result))
    # Paper shape: the longer the batch, the taller full maps' alignment
    # peak at the workload change; partial maps avoid those peaks.  The
    # model series is used — wall-clock peaks are noisy at these sizes.
    per_query = result["per_query_model_ms"]
    for change_every, systems in per_query.items():
        stats_full = batch_stats(systems[FULL], change_every)
        stats_partial = batch_stats(systems[PARTIAL], change_every)
        if len(stats_full) < 2:
            continue
        full_peak = max(mx for mx, _ in stats_full[1:])
        partial_peak = max(mx for mx, _ in stats_partial[1:])
        assert full_peak > partial_peak, change_every
