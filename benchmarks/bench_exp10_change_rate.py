"""Fig. 12: cost vs workload-change rate (Exp10)."""

from conftest import run_once

from repro.bench import exp10_change_rate as exp10
from repro.bench.partial_common import FULL, PARTIAL


def test_exp10_change_rate(benchmark, record_table):
    result = run_once(benchmark, exp10.run)
    record_table("exp10_fig12", exp10.describe(result))
    totals = result["totals_seconds"]
    rates = sorted(totals)
    # Full maps degrade with change frequency; partial maps stay stable
    # enough that the full/partial ratio grows.
    slow = totals[rates[0]][FULL] / totals[rates[0]][PARTIAL]
    fast = totals[rates[-1]][FULL] / totals[rates[-1]][PARTIAL]
    assert fast > 2 * slow
