"""Future-work extensions: piece-exploiting max, cracker joins, row cracking."""

from conftest import run_once

from repro.bench import extensions


def test_ext_piece_max(benchmark, record_table):
    result = run_once(benchmark, extensions.piece_max)
    record_table("ext_piece_max", extensions.describe("piece-exploiting max", result))
    totals = result["totals"]
    assert (totals["piece_exploiting"]["answers_checksum"]
            == totals["area_scan"]["answers_checksum"])
    assert (totals["piece_exploiting"]["model_ms"]
            < totals["area_scan"]["model_ms"])


def test_ext_cracker_join(benchmark, record_table):
    result = run_once(benchmark, extensions.join_strategies)
    record_table("ext_cracker_join", extensions.describe("cracker join", result))
    totals = result["totals"]
    assert totals["cracker_join"]["matches"] == totals["hash_join"]["matches"]
    assert totals["cracker_join"]["model_ms"] < totals["hash_join"]["model_ms"]


def test_ext_row_vs_column(benchmark, record_table):
    result = run_once(benchmark, extensions.row_vs_column)
    record_table("ext_row_vs_column",
                 extensions.describe("row vs column cracking", result))
    totals = result["totals"]
    # Row cracking's cost is projection-independent; sideways pays per map.
    row_growth = (totals["row_cracking k=6"]["model_ms"]
                  / totals["row_cracking k=1"]["model_ms"])
    col_growth = (totals["sideways k=6"]["model_ms"]
                  / totals["sideways k=1"]["model_ms"])
    assert col_growth > row_growth
