"""Section 5's mixed TPC-H workload (Exp13)."""

from conftest import run_once

from repro.bench import exp13_tpch_mixed as exp13


def test_exp13_tpch_mixed(benchmark, record_table):
    result = run_once(benchmark, exp13.run)
    record_table("exp13_tpch_mixed", exp13.describe(result))
    # Cross-query reuse: the last batch runs cheaper relative to MonetDB
    # than the first batch (model cost).
    rel = result["relative_model"]
    first_batch = rel[:12]
    last_batch = rel[-12:]
    assert sum(last_batch) < sum(first_batch)
