"""Exp14: stochastic cracking robustness under adversarial workloads."""

from conftest import run_once

from repro.bench import exp14_robustness as exp14


def test_exp14_robustness(benchmark, record_table):
    result = run_once(benchmark, exp14.run, scale=0.1)
    record_table("exp14_robustness", exp14.describe(result))
    # Every engine returns scan-identical results under every policy/pattern.
    assert result["engines_match_scan"], result["engine_failures"]
    for pattern, cells in result["grid"].items():
        for policy_name, cell in cells.items():
            assert cell["matches_scan"], f"{policy_name} on {pattern}"
    # The robustness payoff: on the sequential workload at least one
    # stochastic policy beats query-driven cracking clearly even at this
    # reduced scale (the gap widens with rows x queries; ~10x at full scale).
    headline = result["headline"]
    assert headline is not None
    assert headline["cost_ratio"] >= 3.0, headline
