"""Benchmark harness glue.

Each benchmark runs one experiment driver exactly once (the drivers run
whole query sequences internally; repeating them would re-measure cold
caches) and writes the regenerated paper table/figure data to
``benchmarks/results/<name>.txt`` for inspection and for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Write an experiment's rendered table to the results directory."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
