"""FaultSan: plan parsing, deterministic injection, atomic rollback, recovery.

The contract under test (see docs/faults.md): with any single-fault plan
armed, every engine either answers each query correctly or raises a
structured :class:`FaultError` — never a silently wrong result — and every
structure still alive afterwards passes ``check_invariants(deep=True)``.
"""

import numpy as np
import pytest

from repro.analysis import invariants
from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.engine.scan import PlainEngine
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.engine.sideways_engine import SidewaysEngine
from repro.errors import ArenaPressure, InjectedFault, InvariantError
from repro.faults import guard
from repro.faults.guard import is_quarantined, quarantine
from repro.faults.plan import (
    ENV_VAR,
    PAYLOAD_SITES,
    SITES,
    FaultPlan,
    FaultPlanError,
    active_plan,
    fault_hook,
    install_plan,
    resolve_plan,
)

ROWS = 1_200
DOMAIN = 10_000
N_QUERIES = 8
SELECTIVITY = 0.05

ENGINES = ("selection_cracking", "sideways", "partial_sideways")


def make_db(faults=None, sanitize=None, policy="mdd1r"):
    rng = np.random.default_rng(7)
    arrays = {
        attr: rng.integers(1, DOMAIN + 1, size=ROWS).astype(np.int64)
        for attr in "ABC"
    }
    db = Database(
        faults=faults, sanitize=sanitize, crack_policy=policy, crack_seed=17
    )
    db.create_table("R", arrays)
    return db


def make_engine(name, db):
    if name == "selection_cracking":
        return SelectionCrackingEngine(db)
    if name == "sideways":
        return SidewaysEngine(db, partial=False)
    return SidewaysEngine(db, partial=True)


def query_for(lo):
    hi = lo + int(DOMAIN * SELECTIVITY)
    return Query(
        table="R",
        predicates=(Predicate("A", Interval.open(lo, hi)),),
        projections=("B", "C"),
    )


def run_workload(engine, baseline, db, with_updates=True):
    """Queries (interleaved with updates) asserting scan-identical results."""
    rng = np.random.default_rng(11)
    recovered = 0
    for i in range(N_QUERIES):
        if with_updates and i % 3 == 1:
            db.insert("R", {
                attr: rng.integers(1, DOMAIN + 1, size=25).astype(np.int64)
                for attr in "ABC"
            })
        if with_updates and i % 3 == 2:
            live = np.flatnonzero(~db.tombstones("R"))
            db.delete("R", rng.choice(live, size=10, replace=False))
        query = query_for(int(rng.integers(1, DOMAIN * 0.9)))
        got = engine.run(query)
        want = baseline.run(query)
        assert got.row_count == want.row_count
        for attr in ("B", "C"):
            assert np.array_equal(
                np.sort(got.columns[attr]), np.sort(want.columns[attr])
            ), f"{engine.name}: {attr} diverged from scan"
        recovered += int(got.fault_recovered)
    return recovered


# -- plan parsing ----------------------------------------------------------------


class TestPlanParsing:
    def test_single_site_defaults(self):
        plan = FaultPlan.parse("mapset.align=error")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert (spec.site, spec.hit, spec.kind) == ("mapset.align", 1, "error")

    def test_kind_defaults_to_error(self):
        plan = FaultPlan.parse("tape.append")
        assert plan.specs[0].kind == "error"

    def test_hit_count_and_multiple_specs(self):
        plan = FaultPlan.parse("arena.alloc@3=oom, chunkmap.fetch=corrupt")
        assert [s.describe() for s in plan.specs] == [
            "arena.alloc@3=oom", "chunkmap.fetch@1=corrupt",
        ]

    def test_describe_reparses_identically(self):
        plan = FaultPlan.parse("kernels.crack_two@2=corrupt,tape.append=error")
        again = FaultPlan.parse(plan.describe())
        assert again.specs == plan.specs

    def test_empty_segments_skipped(self):
        assert FaultPlan.parse(" , tape.append=error ,, ").specs[0].site == "tape.append"

    @pytest.mark.parametrize("bad", [
        "nonexistent.site=error",
        "tape.append=explode",
        "tape.append@zero=error",
        "tape.append@0=error",
        "tape.append=corrupt",  # no payload at this site
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_payload_sites_are_registered(self):
        assert PAYLOAD_SITES <= set(SITES)


# -- the hook --------------------------------------------------------------------


class TestFaultHook:
    def test_noop_without_plan(self):
        fault_hook("tape.append")  # must not raise

    def test_fires_on_exact_hit_only(self):
        install_plan(FaultPlan.parse("tape.append@3=error"))
        fault_hook("tape.append")
        fault_hook("tape.append")
        with pytest.raises(InjectedFault) as exc_info:
            fault_hook("tape.append")
        assert exc_info.value.site == "tape.append"
        assert exc_info.value.hit == 3
        fault_hook("tape.append")  # hit 4: the spec is spent
        assert active_plan().hits["tape.append"] == 4
        assert active_plan().injected == ["tape.append@3=error"]

    def test_oom_raises_arena_pressure(self):
        install_plan(FaultPlan.parse("arena.alloc=oom"))
        with pytest.raises(ArenaPressure):
            fault_hook("arena.alloc")

    def test_unregistered_site_rejected_when_armed(self):
        install_plan(FaultPlan.parse("tape.append=error"))
        with pytest.raises(FaultPlanError):
            fault_hook("not.a.site")

    def test_corrupt_flips_exactly_one_element(self):
        install_plan(FaultPlan.parse("chunkmap.fetch=corrupt"))
        payload = np.arange(64, dtype=np.int64)
        pristine = payload.copy()
        fault_hook("chunkmap.fetch", payload)
        assert active_plan().dirty
        assert (payload != pristine).sum() == 1

    def test_corrupt_is_deterministic_per_seed(self):
        flips = []
        for _ in range(2):
            install_plan(FaultPlan.parse("chunkmap.fetch=corrupt", seed=99))
            payload = np.arange(64, dtype=np.int64)
            fault_hook("chunkmap.fetch", payload)
            flips.append(int(np.flatnonzero(payload != np.arange(64))[0]))
        assert flips[0] == flips[1]

    def test_corrupt_tolerates_missing_payload(self):
        install_plan(FaultPlan.parse("chunkmap.fetch=corrupt"))
        fault_hook("chunkmap.fetch", None)  # site visited without a payload
        assert not active_plan().dirty


# -- resolution + plumbing -------------------------------------------------------


class TestResolvePlan:
    def test_explicit_plan_passthrough(self):
        plan = FaultPlan.parse("tape.append=error")
        assert resolve_plan(plan) is plan

    def test_string_and_empty_string(self):
        assert resolve_plan("tape.append=error").specs[0].site == "tape.append"
        assert resolve_plan("   ") is None

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "arena.alloc=oom")
        assert resolve_plan().specs[0].kind == "oom"
        monkeypatch.delenv(ENV_VAR)
        assert resolve_plan() is None


class TestDatabasePlumbing:
    def test_database_installs_plan(self):
        db = make_db(faults="tape.append=error")
        assert db.fault_plan is not None
        assert active_plan() is db.fault_plan

    def test_database_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tape.append@5=error")
        db = make_db()
        assert db.fault_plan.specs[0].hit == 5

    def test_database_defaults_to_no_plan(self):
        db = make_db()
        assert db.fault_plan is None
        assert active_plan() is None

    def test_cli_faults_flag(self, monkeypatch, capsys):
        import os

        from repro.cli import main

        monkeypatch.setenv(ENV_VAR, "")  # recorded, so teardown restores it
        # A malformed plan fails fast, before any experiment runs.
        with pytest.raises(FaultPlanError):
            main(["run", "exp99", "--faults", "bogus.site=error"])
        # A valid plan is exported for every Database the run creates
        # ("exp99" keeps the invocation cheap: it exits before running).
        assert main(["run", "exp99", "--faults", "tape.append=error"]) == 2
        assert os.environ[ENV_VAR] == "tape.append=error"
        capsys.readouterr()


# -- atomic rollback (structure level) ------------------------------------------


class TestAtomicRollback:
    def test_injected_fault_rolls_back_column(self, db):
        column = db.cracker_column("R", "A")
        column.select(Interval.open(100, 900))  # warm: some cracked state
        head = column.head.copy()
        keys = column.keys.copy()
        install_plan(FaultPlan.parse(
            "kernels.crack_two=error,kernels.crack_three=error", seed=17
        ))
        with pytest.raises(InjectedFault):
            column.select(Interval.open(2_000, 2_600))
        assert np.array_equal(column.head, head)
        assert np.array_equal(column.keys, keys)
        assert invariants.check(column, "column", deep=True) == []
        # The spec is spent: the same select now succeeds and agrees with
        # a plain scan of the base column.
        got = np.sort(column.select(Interval.open(2_000, 2_600)))
        base = db.table("R").values("A")
        want = np.sort(np.flatnonzero((base > 2_000) & (base < 2_600)))
        assert np.array_equal(got, want)

    def test_detected_corruption_rolls_back_and_raises(self, db):
        column = db.cracker_column("R", "A")
        column.select(Interval.open(100, 900))
        install_plan(FaultPlan.parse(
            "kernels.crack_two=corrupt,kernels.crack_three=corrupt", seed=17
        ))
        with pytest.raises(InvariantError):
            column.select(Interval.open(2_000, 2_600))
        # Either the rollback fully undid the damage, or the column was
        # quarantined; it must never stay live-and-broken.
        if not is_quarantined(column):
            assert invariants.check(column, "column", deep=True) == []

    def test_atomic_is_noop_when_disarmed(self, db):
        column = db.cracker_column("R", "A")
        with guard.atomic(column, "column"):
            column.head[0] ^= 0x5A  # would be rolled back if journaled
        assert column.head[0] == (db.table("R").values("A")[0] ^ 0x5A)
        column.head[0] ^= 0x5A  # undo; the column is shared with other tests


class TestForceJournal:
    def test_journal_preserves_results_without_faults(self):
        guard.FORCE_JOURNAL = True
        try:
            db = make_db()
            engine = make_engine("sideways", db)
            baseline = PlainEngine(db)
            recovered = run_workload(engine, baseline, db)
        finally:
            guard.FORCE_JOURNAL = False
        assert recovered == 0
        assert db.heal_faults() == []


# -- engine-level recovery -------------------------------------------------------


class TestEngineRecovery:
    def test_recovers_and_matches_scan(self):
        db = make_db(faults="kernels.crack_two=error")
        engine = make_engine("selection_cracking", db)
        baseline = PlainEngine(db)
        query = query_for(3_000)
        got = engine.run(query)
        assert got.fault_recovered
        want = baseline.run(query)
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        )
        # The next query runs on rebuilt structures, without recovery.
        again = engine.run(query_for(5_000))
        assert not again.fault_recovered
        assert db.fault_plan.injected == ["kernels.crack_two@1=error"]

    def test_arena_oom_falls_back_to_reference_backend(self):
        db = make_db(faults="arena.alloc=oom")
        engine = make_engine("selection_cracking", db)
        baseline = PlainEngine(db)
        query = query_for(3_000)
        got = engine.run(query)
        want = baseline.run(query)
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        )
        # The kernel dispatcher absorbs the pressure by retrying on the
        # allocation-free reference backend — no engine-level recovery.
        assert not got.fault_recovered
        assert db.fault_plan.injected == ["arena.alloc@1=oom"]

    def test_faults_off_exceptions_propagate(self, db):
        engine = make_engine("sideways", db)
        engine.run(query_for(3_000))
        mapset = next(iter(db._sideways["R"].sets.values()))
        original = mapset.align

        def boom(*args, **kwargs):
            raise InjectedFault("mapset.align", 1, "error")

        mapset.align = boom
        try:
            with pytest.raises(InjectedFault):
                engine.run(query_for(5_000))  # no plan: no silent fallback
        finally:
            mapset.align = original

    def test_heal_faults_drops_quarantined_structures(self):
        db = make_db()
        engine = make_engine("sideways", db)
        engine.run(query_for(3_000))
        mapset = next(iter(db._sideways["R"].sets.values()))
        quarantine(mapset, "test damage")
        healed = db.heal_faults()
        assert healed == ["mapset[R.B]"] or healed == ["mapset[R.A]"]
        assert not db._sideways["R"].sets
        # The next query lazily rebuilds the set and answers correctly.
        got = engine.run(query_for(3_000))
        want = PlainEngine(db).run(query_for(3_000))
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        )

    def test_heal_faults_detects_unflagged_corruption(self):
        db = make_db()
        engine = make_engine("selection_cracking", db)
        engine.run(query_for(3_000))
        column = db._crackers[("R", "A")]
        column.head[len(column.head) // 2] ^= 0x5A  # silent in-place damage
        healed = db.heal_faults()
        assert healed == ["cracker_column[R.A]"]
        assert ("R", "A") not in db._crackers


# -- single-fault soundness (chaos matrix) --------------------------------------


SMOKE_CELLS = (
    ("kernels.crack_two", "error", "selection_cracking"),
    ("mapset.align", "error", "sideways"),
    ("tape.append", "error", "sideways"),
    ("chunkmap.fetch", "corrupt", "partial_sideways"),
    ("ripple.merge_insertions", "error", "selection_cracking"),
)


def _soundness_cell(site, kind, engine_name):
    db = make_db(faults=f"{site}={kind}")
    engine = make_engine(engine_name, db)
    baseline = PlainEngine(db)
    run_workload(engine, baseline, db)
    # Whatever happened, no live structure may remain broken.
    assert db.heal_faults() == []


@pytest.mark.parametrize("site,kind,engine_name", SMOKE_CELLS)
def test_single_fault_soundness_smoke(site, kind, engine_name):
    _soundness_cell(site, kind, engine_name)


@pytest.mark.slow
@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("site", SITES)
def test_single_fault_soundness_error(site, engine_name):
    _soundness_cell(site, "error", engine_name)


@pytest.mark.slow
@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("site", sorted(PAYLOAD_SITES))
def test_single_fault_soundness_corrupt(site, engine_name):
    _soundness_cell(site, "corrupt", engine_name)


@pytest.mark.slow
@pytest.mark.parametrize("engine_name", ENGINES)
def test_single_fault_soundness_under_deep_sanitize(engine_name):
    """Recovery and CrackSan deep sweeps coexist (quarantine is skipped)."""
    db = make_db(faults="kernels.crack_two=corrupt", sanitize="deep")
    engine = make_engine(engine_name, db)
    baseline = PlainEngine(db)
    run_workload(engine, baseline, db)
    assert db.heal_faults() == []
    assert db.sanitizer.violations == []
