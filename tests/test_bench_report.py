"""Benchmark reporting helpers and the shared harness."""

import numpy as np
import pytest

from repro.bench.harness import ENGINE_FACTORIES, SequenceRunner, SystemSetup
from repro.bench.report import format_table, series_summary
from repro.cracking.bounds import Interval
from repro.engine.query import Predicate, Query


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 2.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [12345.6], [0.5], [0.0]])
        assert "0.000123" in text
        assert "1.23e+04" in text
        assert "0.500" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeriesSummary:
    def test_downsamples_evenly(self):
        series = list(range(100))
        points = series_summary(series, points=5)
        assert points[0] == 0
        assert points[-1] == 99
        assert len(points) == 5

    def test_short_series(self):
        assert series_summary([7.0], points=4) == [7.0, 7.0, 7.0, 7.0]

    def test_empty(self):
        assert series_summary([], points=3) == []


class TestSystemSetup:
    def test_every_factory_constructs(self, small_arrays):
        for system in ENGINE_FACTORIES:
            setup = SystemSetup(system, {"R": dict(small_arrays)})
            assert setup.engine.name in (system, setup.engine.name)
            assert len(setup.db.table("R")) == len(small_arrays["A"])

    def test_isolated_databases(self, small_arrays):
        a = SystemSetup("sideways", {"R": dict(small_arrays)})
        b = SystemSetup("sideways", {"R": dict(small_arrays)})
        assert a.db is not b.db

    def test_unknown_system(self, small_arrays):
        with pytest.raises(KeyError):
            SystemSetup("oracle", {"R": dict(small_arrays)})


class TestSequenceRunner:
    def test_collects_costs_and_storage(self, small_arrays):
        setup = SystemSetup("sideways", {"R": dict(small_arrays)})
        runner = SequenceRunner(setup)
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 50_000)),),
            projections=("B",),
        )
        runner.run_all([query, query, query])
        assert len(runner.costs) == 3
        assert len(runner.storage_samples) == 3
        assert runner.cumulative_seconds() > 0
        assert runner.cumulative_model_ms() > 0
        # Maps were created: storage grows from zero.
        assert runner.storage_samples[-1] > 0

    def test_phase_breakdown_recorded(self, small_arrays):
        setup = SystemSetup("monetdb", {"R": dict(small_arrays)})
        runner = SequenceRunner(setup)
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 50_000)),),
            projections=("B",),
        )
        runner.run(query)
        assert "select" in runner.costs[0].phase_seconds
