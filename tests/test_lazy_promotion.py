"""Lazy promotion of auxiliary cuts to partial-map area edges."""

import numpy as np
import pytest

from repro.core.partial.chunkmap import ChunkMap
from repro.cracking.bounds import Interval
from repro.cracking.stochastic import resolve_policy
from repro.storage.relation import Relation


@pytest.fixture
def rel(rng):
    return Relation.from_arrays(
        "R", {c: rng.integers(0, 10_000, size=4_000).astype(np.int64) for c in "AB"}
    )


def _stochastic_chunkmap(rel):
    return ChunkMap(
        rel, "A", snapshot_rows=len(rel),
        policy=resolve_policy("mdd1r", min_piece=64),
        rng=np.random.default_rng(5),
    )


def _interior_bounds(chunkmap, area):
    return [
        bound for bound, _ in chunkmap.index.inorder()
        if area.contains_strictly(bound)
    ]


class TestLazyPromotion:
    def test_aux_cuts_stay_interior_in_unfetched_areas(self, rel):
        chunkmap = _stochastic_chunkmap(rel)
        chunkmap.cover(Interval.open(4_000, 4_500))
        assert chunkmap.stochastic_cuts > 0
        unfetched = [a for a in chunkmap.areas if not a.fetched]
        assert unfetched
        # The stochastic cuts exist as H_A boundaries but did NOT split the
        # never-queried value ranges into areas of their own.
        assert sum(len(_interior_bounds(chunkmap, a)) for a in unfetched) > 0
        chunkmap.check_invariants()

    def test_fetched_areas_never_hold_interior_boundaries(self, rel):
        chunkmap = _stochastic_chunkmap(rel)
        for lo in (4_000, 1_000, 7_000, 2_500, 8_500):
            chunkmap.cover(Interval.open(lo, lo + 500))
            for area in chunkmap.areas:
                if area.fetched:
                    assert _interior_bounds(chunkmap, area) == []
            chunkmap.check_invariants()

    def test_fetch_promotes_interior_cuts_to_edges(self, rel):
        chunkmap = _stochastic_chunkmap(rel)
        chunkmap.cover(Interval.open(4_000, 4_500))
        victim = next(
            a for a in chunkmap.areas
            if not a.fetched and _interior_bounds(chunkmap, a)
        )
        interior = _interior_bounds(chunkmap, victim)
        # Fetch the whole chunk map: the promotion split must surface every
        # one of those cuts as an edge of some (now fetched) area.
        chunkmap.cover(Interval())
        edges = set()
        for area in chunkmap.areas:
            assert area.fetched
            assert _interior_bounds(chunkmap, area) == []
            edges.update(b for b in (area.lo_bound, area.hi_bound) if b is not None)
        for bound in interior:
            assert bound in edges
        chunkmap.check_invariants()

    def test_promotion_preserves_area_coverage(self, rel):
        chunkmap = _stochastic_chunkmap(rel)
        chunkmap.cover(Interval.open(3_000, 3_500))
        iv = Interval.open(6_000, 9_000)
        areas = chunkmap.cover(iv)
        covered = sum(chunkmap.area_size(a) for a in areas)
        # The fetched areas cover at least every qualifying tuple.
        assert covered >= int(iv.mask(rel.values("A")).sum())
        chunkmap.check_invariants()

    def test_query_driven_chunkmap_has_nothing_to_promote(self, rel):
        chunkmap = ChunkMap(rel, "A", snapshot_rows=len(rel))
        chunkmap.cover(Interval.open(2_000, 5_000))
        assert chunkmap.stochastic_cuts == 0
        for area in chunkmap.areas:
            assert _interior_bounds(chunkmap, area) == []
        chunkmap.check_invariants()
