"""The shared crack_into routine against a mask oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.cracking.crack import crack_bound, crack_into
from repro.cracking.bounds import Bound, Side


def check_area(values, head, tails, interval, area):
    lo, hi = area
    assert np.array_equal(np.sort(head[lo:hi]), np.sort(values[interval.mask(values)]))


class TestCrackInto:
    def test_two_sided_fresh(self, rng):
        values = rng.integers(0, 1000, size=500).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        iv = Interval.open(100, 600)
        area = crack_into(index, head, [], iv)
        check_area(values, head, [], iv, area)
        # crack-in-three: exactly two new boundaries
        assert len(index) == 2

    def test_one_sided(self, rng):
        values = rng.integers(0, 1000, size=300).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        iv = Interval.at_least(500)
        lo, hi = crack_into(index, head, [], iv)
        assert hi == len(head)
        check_area(values, head, [], iv, (lo, hi))

    def test_reuse_existing_bounds_no_new_cracks(self, rng):
        values = rng.integers(0, 1000, size=300).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        iv = Interval.open(200, 700)
        first = crack_into(index, head, [], iv)
        before = head.copy()
        second = crack_into(index, head, [], iv)
        assert first == second
        assert np.array_equal(before, head)

    def test_overlapping_intervals_accumulate_pieces(self, rng):
        values = rng.integers(0, 1000, size=400).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        for iv in (Interval.open(100, 500), Interval.open(300, 800), Interval.open(50, 350)):
            area = crack_into(index, head, [], iv)
            check_area(values, head, [], iv, area)
        index.validate(len(head))

    def test_crack_bound_returns_position(self, rng):
        values = rng.integers(0, 100, size=200).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        pos = crack_bound(index, head, [], Bound(50, Side.LT))
        assert pos == int((values < 50).sum())
        # Idempotent.
        assert crack_bound(index, head, [], Bound(50, Side.LT)) == pos


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    cuts=st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 60), st.booleans(), st.booleans()),
        min_size=1, max_size=12,
    ),
)
def test_random_interval_sequence_matches_oracle(seed, cuts):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 250, size=300).astype(np.int64)
    head = values.copy()
    tail = np.arange(300)
    index = CrackerIndex()
    for lo, width, lo_inc, hi_inc in cuts:
        iv = Interval(lo, lo + width, lo_inclusive=lo_inc, hi_inclusive=hi_inc)
        area = crack_into(index, head, [tail], iv)
        check_area(values, head, [tail], iv, area)
        # Tail stays consistent with head (same permutation).
        assert np.array_equal(values[tail], head)
    index.validate(len(head))
