"""Edge cases across the engine layer."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import (
    Database,
    JoinQuery,
    JoinSide,
    PlainEngine,
    Predicate,
    Query,
    SidewaysEngine,
)
from repro.errors import PlanError


class TestSidewaysJoinEdges:
    def test_join_side_requires_predicates(self, db):
        engine = SidewaysEngine(db)
        query = JoinQuery(
            left=JoinSide("R", "A", post_join_columns=("B",)),
            right=JoinSide("R", "A",
                           predicates=(Predicate("B", Interval.open(1, 2)),)),
        )
        with pytest.raises(PlanError):
            engine.run_join(query)

    def test_single_predicate_join_side(self, db):
        engine = SidewaysEngine(db)
        query = JoinQuery(
            left=JoinSide(
                "R", "A",
                predicates=(Predicate("B", Interval.open(1, 60_000)),),
                post_join_columns=("C",),
            ),
            right=JoinSide(
                "R", "A",
                predicates=(Predicate("C", Interval.open(1, 60_000)),),
                post_join_columns=("D",),
            ),
            aggregates=(("count", "C"),),
        )
        side = engine.run_join(query)
        plain = PlainEngine(db).run_join(query)
        assert side.row_count == plain.row_count


class TestQueryValidation:
    def test_duplicate_predicates_rejected(self):
        with pytest.raises(PlanError):
            Query(
                "R",
                predicates=(
                    Predicate("A", Interval.open(1, 2)),
                    Predicate("A", Interval.open(3, 4)),
                ),
            )

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(PlanError):
            Query("R", aggregates=(("median", "A"),))

    def test_aggregates_over_empty_result_are_nan(self, db):
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(10**9, 10**9 + 1)),),
            aggregates=(("max", "B"), ("sum", "B"), ("count", "B")),
        )
        result = PlainEngine(db).run(query)
        assert np.isnan(result.aggregates["max(B)"])
        assert np.isnan(result.aggregates["sum(B)"])
        assert result.aggregates["count(B)"] == 0.0


class TestRecorderIsolation:
    def test_databases_do_not_share_recorders(self, small_arrays):
        a = Database()
        a.create_table("R", dict(small_arrays))
        b = Database()
        b.create_table("R", dict(small_arrays))
        # Default recorder is global; SystemSetup-style isolation needs an
        # explicit recorder.  Verify that passing one isolates accounting.
        from repro.stats.counters import StatsRecorder

        rec = StatsRecorder()
        c = Database(recorder=rec)
        c.create_table("R", dict(small_arrays))
        engine = SidewaysEngine(c)
        engine.run(Query("R", predicates=(Predicate("A", Interval.open(1, 10)),),
                         projections=("B",)))
        assert rec.root.total_touches > 0


class TestDictColumnQueries:
    def test_crack_on_dictionary_codes(self, rng):
        db = Database()
        tags = np.array([["alpha", "beta", "gamma"][i % 3] for i in range(3_000)])
        db.create_table("T", {"tag": tags, "v": rng.integers(0, 100, 3_000)})
        code = db.table("T").column("tag").dictionary.code_of("beta")
        engine = SidewaysEngine(db)
        query = Query(
            "T",
            predicates=(Predicate("tag", Interval.point(code)),),
            projections=("v",),
            aggregates=(("count", "v"),),
        )
        result = engine.run(query)
        assert result.aggregates["count(v)"] == 1_000.0
