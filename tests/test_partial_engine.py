"""Partial sideways cracking end to end: oracle equivalence, full-map
equivalence, storage budgets, head dropping, partial alignment, updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial import PartialConfig, PartialSidewaysCracker
from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation


def make(rng, n=4_000, domain=50_000, **kwargs):
    arrays = {c: rng.integers(1, domain, size=n).astype(np.int64) for c in "ABCD"}
    rel = Relation.from_arrays("R", arrays)
    return arrays, rel, PartialSidewaysCracker(rel, **kwargs)


def oracle(arrays, preds, projs, conjunctive=True):
    masks = [iv.mask(arrays[a]) for a, iv in preds.items()]
    mask = np.logical_and.reduce(masks) if conjunctive else np.logical_or.reduce(masks)
    return {p: arrays[p][mask] for p in projs}


class TestOracleEquivalence:
    def test_select_project(self, rng):
        arrays, _, pw = make(rng)
        for _ in range(15):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + int(rng.integers(1_000, 10_000)))
            res = pw.select_project("A", iv, ["B", "C"])
            exp = oracle(arrays, {"A": iv}, ["B", "C"])
            got = sorted(zip(res["B"].tolist(), res["C"].tolist()))
            want = sorted(zip(exp["B"].tolist(), exp["C"].tolist()))
            assert got == want

    def test_conjunctive(self, rng):
        arrays, _, pw = make(rng)
        for _ in range(10):
            preds = {
                "A": Interval.open(int(rng.integers(0, 20_000)), 45_000),
                "B": Interval.open(0, int(rng.integers(10_000, 40_000))),
            }
            res = pw.query(preds, ["D"])
            exp = oracle(arrays, preds, ["D"])
            assert np.array_equal(np.sort(res["D"]), np.sort(exp["D"]))

    def test_disjunctive(self, rng):
        arrays, _, pw = make(rng)
        for _ in range(6):
            preds = {
                "A": Interval.open(int(rng.integers(0, 30_000)), 49_000),
                "B": Interval.open(0, int(rng.integers(2_000, 10_000))),
            }
            res = pw.query(preds, ["C"], conjunctive=False)
            exp = oracle(arrays, preds, ["C"], conjunctive=False)
            assert np.array_equal(np.sort(res["C"]), np.sort(exp["C"]))


class TestFullMapEquivalence:
    def test_same_results_as_full_maps(self, rng):
        arrays, rel, pw = make(rng)
        sw = SidewaysCracker(rel)
        for _ in range(12):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + 5_000)
            res_p = pw.select_project("A", iv, ["B", "C"])
            res_f = sw.select_project("A", iv, ["B", "C"])
            got = sorted(zip(res_p["B"].tolist(), res_p["C"].tolist()))
            want = sorted(zip(res_f["B"].tolist(), res_f["C"].tolist()))
            assert got == want

    def test_partial_materializes_less(self, rng):
        arrays, rel, pw = make(rng)
        sw = SidewaysCracker(rel)
        iv = Interval.open(10_000, 12_000)
        pw.select_project("A", iv, ["B"])
        sw.select_project("A", iv, ["B"])
        # Partial maps only materialized the needed chunk (plus H_A).
        pmap = pw.sets["A"].maps["B"]
        assert len(pmap) < len(rel)
        assert sw.sets["A"].maps["B"].storage_tuples == len(rel)


class TestStorageBudget:
    def test_budget_respected(self, rng):
        arrays, rel, pw = make(rng, budget_tuples=int(1.5 * 4_000))
        for i in range(30):
            lo = int(rng.integers(0, 45_000))
            proj = ["B", "C", "D"][i % 3]
            iv = Interval.open(lo, lo + 3_000)
            res = pw.select_project("A", iv, [proj])
            exp = oracle(arrays, {"A": iv}, [proj])
            assert np.array_equal(np.sort(res[proj]), np.sort(exp[proj]))
            assert pw.storage.used_tuples <= pw.storage.budget_tuples + 1
        assert pw.storage.used_tuples <= pw.storage.budget_tuples

    def test_eviction_recreates_on_demand(self, rng):
        arrays, rel, pw = make(rng, budget_tuples=2_500)
        iv1 = Interval.open(1_000, 9_000)
        iv2 = Interval.open(30_000, 38_000)
        pw.select_project("A", iv1, ["B"])
        pw.select_project("A", iv2, ["C"])  # may evict B chunks
        res = pw.select_project("A", iv1, ["B"])  # recreate if needed
        exp = oracle(arrays, {"A": iv1}, ["B"])
        assert np.array_equal(np.sort(res["B"]), np.sort(exp["B"]))


class TestHeadDropping:
    @pytest.mark.parametrize("mode", ["cold", "cache"])
    def test_results_correct_with_head_drops(self, rng, mode):
        config = PartialConfig(
            head_drop_mode=mode, cold_threshold=2, cache_piece_tuples=2_000
        )
        arrays, _, pw = make(rng, config=config)
        for _ in range(25):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + 6_000)
            res = pw.select_project("A", iv, ["B", "C"])
            exp = oracle(arrays, {"A": iv}, ["B", "C"])
            got = sorted(zip(res["B"].tolist(), res["C"].tolist()))
            want = sorted(zip(exp["B"].tolist(), exp["C"].tolist()))
            assert got == want

    def test_cold_mode_actually_drops(self, rng):
        config = PartialConfig(head_drop_mode="cold", cold_threshold=1)
        arrays, _, pw = make(rng, config=config)
        iv = Interval.open(10_000, 30_000)
        for _ in range(6):
            pw.select_project("A", iv, ["B"])
        dropped = sum(
            chunk.head_dropped
            for pset in pw.sets.values()
            for pmap in pset.maps.values()
            for chunk in pmap.chunks.values()
        )
        assert dropped >= 1


class TestPartialAlignmentFlag:
    def test_disabled_partial_alignment_same_results(self, rng):
        config = PartialConfig(partial_alignment=False)
        arrays, _, pw = make(rng, config=config)
        for _ in range(10):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + 4_000)
            res = pw.select_project("A", iv, ["B", "C"])
            exp = oracle(arrays, {"A": iv}, ["B", "C"])
            got = sorted(zip(res["B"].tolist(), res["C"].tolist()))
            assert got == sorted(zip(exp["B"].tolist(), exp["C"].tolist()))


class TestUpdatesPartial:
    def test_insert_and_delete_stream(self, rng):
        arrays, rel, pw = make(rng)
        live = {c: arrays[c].copy() for c in "ABCD"}
        deleted = np.zeros(len(rel), dtype=bool)

        def check(iv):
            res = pw.select_project("A", iv, ["B"])
            mask = iv.mask(live["A"]) & ~deleted
            assert np.array_equal(np.sort(res["B"]), np.sort(live["B"][mask]))

        check(Interval.open(5_000, 15_000))
        # Insert.
        new = {c: rng.integers(1, 50_000, size=100).astype(np.int64) for c in "ABCD"}
        keys = np.arange(len(rel), len(rel) + 100, dtype=np.int64)
        rel.append_rows(new)
        pw.notify_insertions(new, keys)
        for c in "ABCD":
            live[c] = np.concatenate([live[c], new[c]])
        deleted = np.concatenate([deleted, np.zeros(100, dtype=bool)])
        check(Interval.open(1, 49_999))
        # Delete.
        victims = rng.choice(4_000, size=50, replace=False).astype(np.int64)
        pw.notify_deletions({a: arrays[a][victims] for a in pw.sets}, victims)
        deleted[victims] = True
        check(Interval.open(1, 49_999))
        check(Interval.open(20_000, 30_000))
        for pset in pw.sets.values():
            if pset.chunkmap is not None:
                pset.chunkmap.check_invariants()
            for pmap in pset.maps.values():
                for chunk in pmap.chunks.values():
                    chunk.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    plan=st.lists(
        st.tuples(
            st.integers(0, 90),
            st.integers(2, 30),
            st.sampled_from(["B", "C", "D"]),
        ),
        min_size=2, max_size=10,
    ),
)
def test_partial_random_plans_match_oracle(seed, plan):
    rng = np.random.default_rng(seed)
    arrays = {c: rng.integers(0, 100, size=300).astype(np.int64) for c in "ABCD"}
    rel = Relation.from_arrays("R", arrays)
    pw = PartialSidewaysCracker(rel)
    for lo, width, proj in plan:
        iv = Interval.open(lo, lo + width)
        res = pw.select_project("A", iv, [proj])
        mask = iv.mask(arrays["A"])
        assert np.array_equal(np.sort(res[proj]), np.sort(arrays[proj][mask]))
