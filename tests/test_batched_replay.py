"""Batched tape replay: gang_replay_cracks == entry-at-a-time replay.

Alignment replays whole *runs* of consecutive crack entries through one
batched call (:func:`gang_replay_cracks`); the result must stay
bit-identical to replaying each entry individually, in both the sideways
map-set tape and the partial sideways chunk tapes.
"""

import numpy as np
import pytest

from repro.core.map import CrackerMap
from repro.core.mapset import MapSet
from repro.cracking.bounds import Interval
from repro.cracking.crack import gang_replay_crack, gang_replay_cracks
from repro.engine.database import Database
from repro.engine.scan import PlainEngine
from repro.engine.query import Predicate, Query
from repro.engine.sideways_engine import SidewaysEngine
from repro.stats.counters import StatsRecorder
from repro.storage.relation import Relation


@pytest.fixture
def mapset(rng):
    arrays = {
        c: rng.integers(0, 5_000, size=1_500).astype(np.int64) for c in "ABC"
    }
    return MapSet(Relation.from_arrays("R", arrays), "A",
                  recorder=StatsRecorder())


def _fresh_members(mapset, count):
    head, tail = mapset._snapshot_arrays("C")
    return [
        CrackerMap("A", f"g{i}", head.copy(), tail.copy(),
                   lambda keys: np.asarray(keys), StatsRecorder())
        for i in range(count)
    ]


def test_batched_equals_entry_at_a_time(mapset, rng):
    for lo in (150, 2_800, 900, 4_100, 1_700, 3_300):
        mapset.select("B", Interval.half_open(lo, lo + 400))
    intervals = [entry.interval for entry in mapset.tape.entries]

    solo = _fresh_members(mapset, 2)
    for interval in intervals:
        gang_replay_crack(solo, interval)

    batched = _fresh_members(mapset, 2)
    gang_replay_cracks(batched, intervals)

    for a, b in zip(solo, batched):
        assert np.array_equal(a.head, b.head)
        assert np.array_equal(a.tail, b.tail)
        assert [x for x, _ in a.index.inorder()] == [
            x for x, _ in b.index.inorder()
        ]


def test_batched_replay_in_chunks_matches_whole_run(mapset, rng):
    # Splitting one run into arbitrary batches changes nothing: later cracks
    # subdivide earlier pieces the same way wherever the batch boundary sits.
    for lo in (500, 3_000, 1_200, 4_400, 2_100):
        mapset.select("B", Interval.half_open(lo, lo + 350))
    intervals = [entry.interval for entry in mapset.tape.entries]

    whole = _fresh_members(mapset, 1)
    gang_replay_cracks(whole, intervals)
    split = _fresh_members(mapset, 1)
    gang_replay_cracks(split, intervals[:2])
    gang_replay_cracks(split, intervals[2:])
    assert np.array_equal(whole[0].head, split[0].head)
    assert np.array_equal(whole[0].tail, split[0].tail)


def test_mapset_alignment_batches_crack_runs(mapset):
    for lo in (200, 1_400, 3_100, 4_200):
        mapset.select("B", Interval.half_open(lo, lo + 250))
    run_length = len(mapset.tape)
    stale = mapset.get_map("C")
    before = mapset._recorder.root.alignment_replays
    mapset.align(stale)
    replays = mapset._recorder.root.alignment_replays - before
    assert stale.cursor == run_length
    # The whole crack run is accounted per member in one batched pass
    # (C plus the same-cursor @key sibling it drags along).
    assert replays >= run_length
    assert np.array_equal(
        stale.head, mapset.get_map("B", align=True).head
    )
    mapset.check_invariants(deep=True)


@pytest.mark.parametrize("partial", [False, True])
def test_engine_results_unchanged_by_batched_replay(partial, rng):
    arrays = {
        c: rng.integers(0, 20_000, size=3_000).astype(np.int64) for c in "ABCD"
    }
    db = Database(sanitize="post-query")
    db.create_table("R", arrays)
    engine = SidewaysEngine(db, partial=partial)
    baseline = PlainEngine(db)
    for _ in range(10):
        lo = int(rng.integers(0, 15_000))
        query = Query(
            "R",
            (Predicate("A", Interval.half_open(lo, lo + 2_500)),),
            projections=("B", "C"),
        )
        got = engine.run(query)
        want = baseline.run(query)
        assert got.row_count == want.row_count
        for attr in ("B", "C"):
            assert np.array_equal(
                np.sort(got.columns[attr]), np.sort(want.columns[attr])
            )
    assert db.recorder.root.alignment_replays > 0
