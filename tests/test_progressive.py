"""Progressive cracking: budgets, pending cracks, resume equivalence."""

import numpy as np
import pytest

from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Interval, Side
from repro.cracking.column import CrackerColumn
from repro.cracking.progressive import (
    BudgetTracker,
    PendingCrack,
    ProgressiveBudget,
    parse_budget,
    progressive_step,
    resolve_area,
)
from repro.cracking.stochastic import resolve_policy
from repro.core.mapset import MapSet
from repro.errors import PlanError
from repro.stats.counters import StatsRecorder
from repro.storage.bat import BAT
from repro.storage.relation import Relation
from repro.workloads.synthetic import adversarial_intervals


class TestBudgetSpec:
    def test_parse_fraction_and_elements(self):
        assert parse_budget(0.05) == ProgressiveBudget(fraction=0.05)
        assert parse_budget(50_000) == ProgressiveBudget(elements=50_000)
        assert parse_budget("0.25") == ProgressiveBudget(fraction=0.25)
        assert parse_budget("512") == ProgressiveBudget(elements=512)

    def test_parse_passthrough(self):
        budget = ProgressiveBudget(elements=10)
        assert parse_budget(budget) is budget
        assert parse_budget(None) is None

    @pytest.mark.parametrize("bad", [0, -1, -0.5, "nonsense"])
    def test_parse_rejects(self, bad):
        with pytest.raises(PlanError):
            parse_budget(bad)

    def test_per_query_allowance(self):
        assert ProgressiveBudget(fraction=0.1).per_query(1_000) == 100
        assert ProgressiveBudget(elements=64).per_query(1_000_000) == 64
        # The allowance never rounds down to zero: every query progresses.
        assert ProgressiveBudget(fraction=0.001).per_query(10) == 1

    def test_tracker_accounting(self):
        tracker = BudgetTracker(ProgressiveBudget(elements=100))
        tracker.begin_query(1_000)
        assert tracker.remaining() == 100
        tracker.consume(30)
        tracker.consume(30)
        assert tracker.remaining() == 40
        assert tracker.spent_last_query == 60
        tracker.begin_query(1_000)
        assert tracker.remaining() == 100


class TestProgressiveStep:
    def test_step_narrows_and_classifies(self, rng):
        head = rng.integers(0, 10_000, size=2_000).astype(np.int64)
        keys = np.arange(2_000, dtype=np.int64)
        bound = Bound(5_000.0, Side.LE)
        p = PendingCrack(bound, 0, 2_000, 0, 2_000)
        total = 0
        while not p.done:
            touched = progressive_step(head, [keys], p, 64)
            assert touched <= 2 * 64
            total += touched
            assert 0 <= p.left <= p.right <= 2_000
            # The classified prefix/suffix are final the moment they form.
            assert np.all(head[: p.left] < 5_000)
            assert np.all(head[p.right:] >= 5_000)
        assert p.left == int((head < 5_000).sum())
        assert total <= 2 * 2_000

    def test_step_keeps_key_pairing(self, rng):
        values = rng.integers(0, 10_000, size=500).astype(np.int64)
        head = values.copy()
        keys = np.arange(500, dtype=np.int64)
        p = PendingCrack(Bound(4_000.0, Side.LE), 0, 500, 0, 500)
        while not p.done:
            progressive_step(head, [keys], p, 17)
        assert np.array_equal(values[keys], head)


class TestResolveArea:
    #: Both bounds of this interval are pre-registered boundaries.
    IV = Interval.open(100, 900)

    def _index(self, n=1_000):
        index = CrackerIndex()
        index.insert(self.IV.lower_bound(), 200)
        index.insert(self.IV.upper_bound(), 800)
        return index

    def test_no_pending_no_holes(self):
        index = self._index()
        lo, hi, holes = resolve_area(index, 1_000, self.IV, {})
        assert (lo, hi) == (200, 800)
        assert holes == []

    def test_in_flight_bound_holes_its_window(self):
        index = self._index()
        bound = Interval.open(100, 500).upper_bound()
        pending = {bound: PendingCrack(bound, 200, 800, 350, 600)}
        lo, hi, holes = resolve_area(
            index, 1_000, Interval.open(100, 500), pending
        )
        assert (lo, hi) == (200, 350)
        assert holes == [(350, 600)]

    def test_unstarted_bound_holes_whole_piece(self):
        index = self._index()
        _, _, holes = resolve_area(
            index, 1_000, Interval.open(100, 500), {}
        )
        assert holes == [(200, 800)]


def _oracle(values, interval):
    return np.flatnonzero(interval.mask(values))


class TestPartialPlusResumeEqualsFullCrack:
    """The tentpole property: budgeted cracking converges to the eager state."""

    @pytest.mark.parametrize("pattern", ["sequential", "zoom_in", "random"])
    @pytest.mark.parametrize("budget", [ProgressiveBudget(elements=150),
                                        ProgressiveBudget(fraction=0.05)])
    def test_boundaries_and_multisets_converge(self, rng, pattern, budget):
        values = rng.integers(1, 30_001, size=3_000).astype(np.int64)
        eager = CrackerColumn(BAT.from_values(values))
        budgeted = CrackerColumn(BAT.from_values(values), budget=budget)
        if pattern == "random":
            intervals = []
            for _ in range(25):
                lo = int(rng.integers(1, 28_000))
                intervals.append(Interval.open(lo, lo + 500))
        else:
            intervals = adversarial_intervals(pattern, 30_000, 25, 0.02, seed=7)
        for iv in intervals:
            expected = _oracle(values, iv)
            assert np.array_equal(np.sort(eager.select(iv)), expected)
            # Exactness during the transient: holes are filtered by value.
            assert np.array_equal(np.sort(budgeted.select(iv)), expected)
        # Resume everything still in flight.  A piece holds at most one
        # pending at a time, so under a tight budget many bounds are never
        # cracked at all (their queries were answered through holes) — the
        # budgeted boundary set is a *subset* of the eager one.  Every bound
        # that did complete must sit at the eager position, and the pieces it
        # delimits must hold the eager multisets.
        budgeted.finish_pending_cracks()
        assert not budgeted.pending_cracks
        budget_cuts = list(budgeted.index.inorder())
        assert budget_cuts  # the workload cracked something
        for bound, pos in budget_cuts:
            assert eager.index.position_of(bound) == pos
        edges = [0] + [pos for _, pos in budget_cuts] + [len(values)]
        for lo, hi in zip(edges, edges[1:]):
            assert np.array_equal(np.sort(eager.head[lo:hi]),
                                  np.sort(budgeted.head[lo:hi]))
            assert np.array_equal(np.sort(eager.keys[lo:hi]),
                                  np.sort(budgeted.keys[lo:hi]))
        eager.check_invariants(deep=True)
        budgeted.check_invariants(deep=True)

    def test_single_bound_resume_equals_one_full_crack(self, rng):
        """Partial crack + resumes land bit-for-bit where one eager crack does
        (same boundary positions and per-piece multisets)."""
        values = rng.integers(1, 30_001, size=3_000).astype(np.int64)
        iv = Interval.open(10_000, 18_000)
        eager = CrackerColumn(BAT.from_values(values))
        eager.select(iv)
        budgeted = CrackerColumn(
            BAT.from_values(values), budget=ProgressiveBudget(elements=100)
        )
        rounds = 0
        while True:
            assert np.array_equal(np.sort(budgeted.select(iv)), _oracle(values, iv))
            rounds += 1
            if not budgeted.pending_cracks and all(
                budgeted.index.position_of(b) is not None
                for b in (iv.lower_bound(), iv.upper_bound())
            ):
                break
            assert rounds < 200  # progress every round
        assert rounds > 1  # the budget actually forced a multi-query resume
        eager_cuts = list(eager.index.inorder())
        assert eager_cuts == list(budgeted.index.inorder())
        edges = [0] + [pos for _, pos in eager_cuts] + [len(values)]
        for lo, hi in zip(edges, edges[1:]):
            assert np.array_equal(np.sort(eager.head[lo:hi]),
                                  np.sort(budgeted.head[lo:hi]))
        eager.check_invariants(deep=True)
        budgeted.check_invariants(deep=True)

    def test_per_query_writes_stay_under_cap(self):
        rng = np.random.default_rng(99)
        values = rng.integers(1, 50_001, size=5_000).astype(np.int64)
        recorder = StatsRecorder()
        budget = ProgressiveBudget(elements=200)
        column = CrackerColumn(
            BAT.from_values(values), recorder=recorder, budget=budget
        )
        cap = 2 * budget.per_query(len(values)) * 2  # 2k per array, 2 arrays
        for iv in adversarial_intervals("sequential", 50_000, 30, 0.01, seed=3):
            with recorder.frame() as stats:
                column.select(iv)
            assert stats.writes <= cap
        column.check_invariants(deep=True)

    def test_select_area_force_finishes(self, rng):
        values = rng.integers(1, 30_001, size=3_000).astype(np.int64)
        column = CrackerColumn(
            BAT.from_values(values), budget=ProgressiveBudget(elements=50)
        )
        column.select(Interval.open(10_000, 11_000))
        assert column.pending_cracks  # the budget is far too small to finish
        lo, hi = column.select_area(Interval.open(10_000, 11_000))
        # The contiguous-area contract admits no holes for these bounds.
        assert hi - lo == int(Interval.open(10_000, 11_000).mask(values).sum())
        assert np.array_equal(
            np.sort(column.keys[lo:hi]),
            _oracle(values, Interval.open(10_000, 11_000)),
        )

    def test_updates_force_finish_in_flight_cracks(self, rng):
        values = rng.integers(1, 30_001, size=3_000).astype(np.int64)
        column = CrackerColumn(
            BAT.from_values(values), budget=ProgressiveBudget(elements=50)
        )
        column.select(Interval.open(10_000, 11_000))
        assert column.pending_cracks
        column.add_insertions(np.array([10_500]), np.array([len(values)]))
        keys = column.select(Interval.open(10_000, 11_000))
        assert len(values) in keys  # the insert is visible
        column.check_invariants(deep=True)

    def test_stochastic_budgeted_column_stays_exact(self, rng):
        values = rng.integers(1, 30_001, size=3_000).astype(np.int64)
        column = CrackerColumn(
            BAT.from_values(values),
            policy=resolve_policy("mdd1r"),
            rng=np.random.default_rng(11),
            budget=ProgressiveBudget(elements=120),
        )
        for iv in adversarial_intervals("sequential", 30_000, 30, 0.02, seed=5):
            assert np.array_equal(np.sort(column.select(iv)), _oracle(values, iv))
        # The follow-up cuts of completed pendings queue further pendings in
        # the large remnants — the mechanism that lets budgeted MDD1R
        # converge — and every one of them must satisfy the catalog.
        column.check_invariants(deep=True)
        column.finish_pending_cracks()
        column.check_invariants(deep=True)


class TestMapSetBudget:
    """Gang replay under a budget: one budget per query, identical siblings."""

    def _relation(self, rng, n=2_000):
        return Relation.from_arrays(
            "R",
            {c: rng.integers(0, 10_000, size=n).astype(np.int64) for c in "ABC"},
        )

    def test_leader_and_follower_agree_on_windows_and_holes(self, rng):
        rel = self._relation(rng)
        mapset = MapSet(rel, "A")
        mapset.set_budget(ProgressiveBudget(elements=100))
        for iv in adversarial_intervals("sequential", 10_000, 12, 0.05, seed=9):
            map_b, lo_b, hi_b, holes_b = mapset.select_window("B", iv)
            map_c, lo_c, hi_c, holes_c = mapset.window_of("C", iv)
            assert (lo_b, hi_b) == (lo_c, hi_c)
            assert holes_b == holes_c
            assert np.array_equal(map_b.head, map_c.head)
        mapset.check_invariants(deep=True)

    def test_late_map_replays_partial_tape(self, rng):
        rel = self._relation(rng)
        mapset = MapSet(rel, "A")
        mapset.set_budget(ProgressiveBudget(elements=100))
        for iv in adversarial_intervals("sequential", 10_000, 10, 0.05, seed=9):
            mapset.select_window("B", iv)
        # C's map is created now: it replays the whole tape — including the
        # ProgressiveCrackEntry records — and lands in B's exact state, with
        # the same cracks still open.
        map_b = mapset.get_map("B", align=True)
        map_c = mapset.get_map("C", align=True)
        assert np.array_equal(map_b.head, map_c.head)
        assert set(map_b.pending_cracks) == set(map_c.pending_cracks)
        for bound, p in map_b.pending_cracks.items():
            q = map_c.pending_cracks[bound]
            assert (p.lo, p.hi, p.left, p.right) == (q.lo, q.hi, q.left, q.right)
        mapset.check_invariants(deep=True)

    def test_budgeted_select_results_exact(self, rng):
        rel = self._relation(rng)
        mapset = MapSet(rel, "A")
        mapset.set_budget(ProgressiveBudget(fraction=0.05))
        a, b = rel.values("A"), rel.values("B")
        for iv in adversarial_intervals("zoom_in", 10_000, 12, 0.05, seed=13):
            cmap, lo, hi, holes = mapset.select_window("B", iv)
            got = list(cmap.tail[lo:hi])
            for h_lo, h_hi in holes:
                mask = iv.mask(cmap.head[h_lo:h_hi])
                got.extend(cmap.tail[h_lo:h_hi][mask])
            assert sorted(got) == sorted(b[iv.mask(a)].tolist())
        mapset.check_invariants(deep=True)
