"""Workload traces: record, serialize, replay."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import PlainEngine, Predicate, Query, SidewaysEngine
from repro.errors import PlanError
from repro.workloads.trace import (
    RecordingEngine,
    Trace,
    query_from_dict,
    query_to_dict,
)


def make_query(lo=100, hi=5_000, disjunctive=False):
    return Query(
        "R",
        predicates=(
            Predicate("A", Interval.open(lo, hi)),
            Predicate("B", Interval.closed(1, 50_000)),
        ),
        projections=("C",),
        aggregates=(("max", "C"), ("count", "C")),
        conjunctive=not disjunctive,
    )


class TestSerialization:
    def test_roundtrip_single_query(self):
        query = make_query()
        assert query_from_dict(query_to_dict(query)) == query

    def test_roundtrip_disjunctive(self):
        query = make_query(disjunctive=True)
        assert query_from_dict(query_to_dict(query)) == query

    def test_roundtrip_unbounded_interval(self):
        query = Query(
            "R", predicates=(Predicate("A", Interval.at_least(10)),),
            projections=("B",),
        )
        rebuilt = query_from_dict(query_to_dict(query))
        assert rebuilt.predicates[0].interval.hi is None
        assert rebuilt == query

    def test_trace_json_roundtrip(self, tmp_path):
        trace = Trace([make_query(i, i + 500) for i in range(0, 2_000, 500)])
        path = tmp_path / "workload.json"
        trace.save(path)
        restored = Trace.load(path)
        assert restored.queries == trace.queries

    def test_bad_version_rejected(self):
        with pytest.raises(PlanError):
            Trace.loads('{"version": 99, "queries": []}')


class TestReplay:
    def test_replay_matches_direct_execution(self, db):
        trace = Trace([make_query(i * 300, i * 300 + 4_000) for i in range(5)])
        direct = [PlainEngine(db).run(q).aggregates for q in trace]
        replayed = [r.aggregates for r in trace.replay(PlainEngine(db))]
        assert direct == replayed

    def test_replay_costs_summary(self, db):
        trace = Trace([make_query()])
        summary = trace.replay_costs(PlainEngine(db))
        assert summary["queries"] == 1
        assert summary["engine"] == "monetdb"
        assert len(summary["per_query_seconds"]) == 1

    def test_trace_reproduces_cracked_state(self, db, small_arrays):
        """Replaying the same trace twice yields identical cracked maps."""
        trace = Trace([make_query(i * 200, i * 200 + 3_000) for i in range(8)])
        from repro.engine import Database

        states = []
        for _ in range(2):
            fresh = Database()
            fresh.create_table("R", dict(small_arrays))
            engine = SidewaysEngine(fresh)
            trace.replay(engine)
            mapset = fresh.sideways("R").sets["A"]
            cmap = mapset.maps[next(iter(mapset.maps))]
            states.append(cmap.head.copy())
        assert np.array_equal(states[0], states[1])


class TestRecording:
    def test_recording_engine_captures(self, db):
        recorder = RecordingEngine(PlainEngine(db))
        recorder.run(make_query())
        recorder.run(make_query(500, 900))
        assert len(recorder.trace) == 2
        assert "recording" in recorder.name
        # The captured trace replays to the same answers.
        replayed = recorder.trace.replay(PlainEngine(db))
        assert replayed[0].aggregates == PlainEngine(db).run(make_query()).aggregates
