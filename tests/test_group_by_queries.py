"""GROUP BY through the Query API and the SQL front-end."""

import numpy as np
import pytest

from repro import sql
from repro.cracking.bounds import Interval
from repro.engine import (
    Database,
    PlainEngine,
    Predicate,
    PresortedEngine,
    Query,
    SelectionCrackingEngine,
    SidewaysEngine,
)
from repro.errors import PlanError


@pytest.fixture
def gdb(rng):
    db = Database()
    db.create_table(
        "T",
        {
            "g": rng.integers(0, 5, size=4_000),
            "h": rng.integers(0, 3, size=4_000),
            "v": rng.integers(0, 100, size=4_000),
            "f": rng.integers(0, 10_000, size=4_000),
        },
    )
    return db


def oracle_groups(db, interval, keys, func, attr):
    data = db.table("T")
    mask = interval.mask(data.values("f"))
    out = {}
    key_rows = list(zip(*(data.values(k)[mask].tolist() for k in keys)))
    values = data.values(attr)[mask]
    for row, value in zip(key_rows, values.tolist()):
        out.setdefault(row, []).append(value)
    reduce = {"sum": sum, "max": max, "min": min,
              "count": len, "avg": lambda xs: sum(xs) / len(xs)}[func]
    return {row: float(reduce(vals)) for row, vals in out.items()}


class TestQueryAPI:
    def test_single_key_sum(self, gdb):
        iv = Interval.open(100, 6_000)
        query = Query(
            "T",
            predicates=(Predicate("f", iv),),
            aggregates=(("sum", "v"),),
            group_by=("g",),
        )
        result = PlainEngine(gdb).run(query)
        expected = oracle_groups(gdb, iv, ["g"], "sum", "v")
        got = {
            (int(g),): float(s)
            for g, s in zip(result.columns["g"], result.columns["sum(v)"])
        }
        assert got == expected
        assert result.row_count == len(expected)

    def test_multi_key_and_funcs(self, gdb):
        iv = Interval.open(0, 9_000)
        for func in ("sum", "max", "min", "count", "avg"):
            query = Query(
                "T",
                predicates=(Predicate("f", iv),),
                aggregates=((func, "v"),),
                group_by=("g", "h"),
            )
            result = PlainEngine(gdb).run(query)
            expected = oracle_groups(gdb, iv, ["g", "h"], func, "v")
            got = {
                (int(g), int(h)): float(x)
                for g, h, x in zip(
                    result.columns["g"], result.columns["h"],
                    result.columns[f"{func}(v)"],
                )
            }
            assert got == pytest.approx(expected)

    def test_engines_agree(self, gdb):
        iv = Interval.open(2_000, 8_000)
        query = Query(
            "T",
            predicates=(Predicate("f", iv),),
            projections=("g",),
            aggregates=(("sum", "v"), ("count", "v")),
            group_by=("g",),
        )
        reference = None
        for engine in (PlainEngine(gdb), PresortedEngine(gdb),
                       SelectionCrackingEngine(gdb), SidewaysEngine(gdb),
                       SidewaysEngine(gdb, partial=True)):
            result = engine.run(query)
            rows = sorted(
                zip(result.columns["g"].tolist(),
                    result.columns["sum(v)"].tolist())
            )
            if reference is None:
                reference = rows
            assert rows == pytest.approx(reference), engine.name

    def test_projection_must_be_group_key(self):
        with pytest.raises(PlanError):
            Query("T", projections=("v",), group_by=("g",))

    def test_empty_group_result(self, gdb):
        query = Query(
            "T",
            predicates=(Predicate("f", Interval.open(50_000, 60_000)),),
            aggregates=(("sum", "v"),),
            group_by=("g",),
        )
        result = PlainEngine(gdb).run(query)
        assert result.row_count == 0


class TestSQLGroupBy:
    def test_parse(self, gdb):
        query = sql.parse(
            "SELECT g, h, sum(v) FROM T WHERE f < 100 GROUP BY g, h", gdb
        )
        assert query.group_by == ("g", "h")
        assert query.projections == ("g", "h")

    def test_execute_matches_api(self, gdb):
        stmt = "SELECT g, max(v) FROM T WHERE f < 5000 GROUP BY g"
        via_sql = sql.execute(stmt, PlainEngine(gdb))
        via_api = PlainEngine(gdb).run(
            Query(
                "T",
                predicates=(Predicate("f", Interval.at_most(5_000, inclusive=False)),),
                projections=("g",),
                aggregates=(("max", "v"),),
                group_by=("g",),
            )
        )
        assert np.array_equal(via_sql.columns["g"], via_api.columns["g"])
        assert np.array_equal(via_sql.columns["max(v)"], via_api.columns["max(v)"])

    def test_group_keyword_reserved(self, gdb):
        with pytest.raises(PlanError):
            sql.parse("SELECT group FROM T", gdb)

    def test_group_by_requires_by(self, gdb):
        with pytest.raises(PlanError):
            sql.parse("SELECT g FROM T GROUP g", gdb)
