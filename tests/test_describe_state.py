"""State introspection on the cracker facades."""

import numpy as np

from repro.core.partial import PartialSidewaysCracker
from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation


def make(rng):
    arrays = {c: rng.integers(0, 10_000, size=1_000).astype(np.int64) for c in "ABC"}
    return Relation.from_arrays("R", arrays)


class TestFullMaps:
    def test_empty_state(self, rng):
        text = SidewaysCracker(make(rng)).describe_state()
        assert "0 map set(s)" in text

    def test_after_queries(self, rng):
        cracker = SidewaysCracker(make(rng))
        cracker.select_project("A", Interval.open(100, 4_000), ["B", "C"])
        text = cracker.describe_state()
        assert "set S_A" in text
        assert "M_A,B" in text and "M_A,C" in text
        assert "pieces" in text

    def test_reports_pending_updates(self, rng):
        rel = make(rng)
        cracker = SidewaysCracker(rel)
        cracker.select_project("A", Interval.open(100, 4_000), ["B"])
        cracker.notify_insertions(
            {"A": np.array([5])}, np.array([len(rel)], dtype=np.int64)
        )
        assert "1 pending insert(s)" in cracker.describe_state()


class TestPartialMaps:
    def test_empty_state(self, rng):
        text = PartialSidewaysCracker(make(rng)).describe_state()
        assert "0 map set(s)" in text

    def test_after_queries(self, rng):
        cracker = PartialSidewaysCracker(make(rng))
        cracker.select_project("A", Interval.open(100, 4_000), ["B"])
        text = cracker.describe_state()
        assert "areas" in text and "fetched" in text
        assert "A->B" in text
        assert "chunk(s)" in text

    def test_reports_head_drops(self, rng):
        from repro.core.partial import PartialConfig

        cracker = PartialSidewaysCracker(
            make(rng), config=PartialConfig(head_drop_mode="cold", cold_threshold=1)
        )
        iv = Interval.open(100, 4_000)
        for _ in range(4):
            cracker.select_project("A", iv, ["B"])
        assert "head-dropped" in cracker.describe_state()
