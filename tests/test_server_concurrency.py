"""Concurrent-determinism stress: N clients, engines x policies, deep CrackSan.

The serving subsystem's central claim: whatever the interleaving, every
client's canonical result is bit-identical to a serial single-client run.
Each case here spins N client threads over one shared database — with the
deep invariant sanitizer watching every structure — and compares every
served digest against a serial baseline engine run on a private copy.
"""

import threading

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import SelectionCrackingEngine, SidewaysEngine
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.server.executor import ServerExecutor, canonicalize, digest_columns

CLIENTS = 4
ROWS = 4_000
DOMAIN = 40_000


def _arrays(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        attr: rng.integers(0, DOMAIN, size=ROWS).astype(np.int64)
        for attr in "ABCD"
    }


def _workload(seed: int, queries: int = 20) -> list[Query]:
    rng = np.random.default_rng((seed, 3))
    out = []
    for i in range(queries):
        lo = int(rng.integers(0, DOMAIN - 5_000))
        width = int(rng.integers(500, 15_000))
        first = Predicate("A", Interval.half_open(lo, lo + width))
        if i % 3 == 2:
            lo2 = int(rng.integers(0, DOMAIN - 5_000))
            preds = (
                Predicate("B", Interval.half_open(lo, lo + width)),
                Predicate("C", Interval.half_open(lo2, lo2 + 2 * width)),
            )
        else:
            preds = (first,)
        out.append(Query(
            "R", preds, projections=("A", "B"),
            aggregates=(("sum", "B"), ("count", "A")),
        ))
    return out


def _fresh(arrays: dict[str, np.ndarray], **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("R", {k: v.copy() for k, v in arrays.items()})
    return db


@pytest.mark.parametrize("make_engine", [
    pytest.param(lambda db: SelectionCrackingEngine(db), id="selection"),
    pytest.param(lambda db: SidewaysEngine(db), id="sideways"),
    pytest.param(lambda db: SidewaysEngine(db, partial=True), id="partial"),
])
@pytest.mark.parametrize("policy", ["query_driven", "mdd1r"])
def test_concurrent_clients_bit_identical_to_serial(make_engine, policy):
    arrays = _arrays(11)
    workload = _workload(11)

    serial_db = _fresh(arrays, crack_policy=policy)
    serial_engine = make_engine(serial_db)
    serial = [
        digest_columns(canonicalize(serial_engine.run(q).columns))
        for q in workload
    ]

    served_db = _fresh(arrays, crack_policy=policy, sanitize="deep")
    failures: list[str] = []
    with ServerExecutor(
        served_db, engine=make_engine(served_db), workers=CLIENTS, partitions=4
    ) as executor:
        executor.partition("R", "A")

        def client(ident: int) -> None:
            order = np.random.default_rng((11, ident)).permutation(len(workload))
            for at in order:
                got = executor.run(workload[at], timeout=60).digest()
                if got != serial[at]:
                    failures.append(f"client {ident} query {at}")

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        stats = executor.stats()

    assert failures == []
    assert stats["queries_served"] == CLIENTS * len(workload)


def test_concurrent_clients_with_progressive_budget():
    """Budgeted cracking bounds lock holds yet stays bit-identical."""
    arrays = _arrays(13)
    workload = _workload(13, queries=16)

    serial_db = _fresh(arrays, crack_budget=0.1)
    serial_engine = SelectionCrackingEngine(serial_db)
    serial = [
        digest_columns(canonicalize(serial_engine.run(q).columns))
        for q in workload
    ]

    served_db = _fresh(arrays, crack_budget=0.1, sanitize="deep")
    failures: list[str] = []
    with ServerExecutor(served_db, workers=CLIENTS, partitions=4) as executor:
        executor.partition("R", "A")

        def client(ident: int) -> None:
            order = np.random.default_rng((13, ident)).permutation(len(workload))
            for at in order:
                got = executor.run(workload[at], timeout=60).digest()
                if got != serial[at]:
                    failures.append(f"client {ident} query {at}")

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        holds = executor.stats()["budget_holds"]

    assert failures == []
    # The budget tracker saw bounded partitioning work inside lock holds.
    assert any(h.get("queries", 0) > 0 for h in holds)
