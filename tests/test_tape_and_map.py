"""Cracker tapes and single cracker maps."""

import numpy as np
import pytest

from repro.core.map import CrackerMap
from repro.core.tape import (
    CrackEntry,
    CrackerTape,
    DeleteEntry,
    InsertEntry,
    SortEntry,
)
from repro.cracking.bounds import Interval
from repro.errors import AlignmentError


class TestTape:
    def test_append_and_since(self):
        tape = CrackerTape()
        tape.append(CrackEntry(Interval.open(1, 5)))
        tape.append(CrackEntry(Interval.open(2, 6)))
        assert len(tape) == 2
        assert len(tape.since(1)) == 1

    def test_append_crack_dedups_immediate_repeat(self):
        tape = CrackerTape()
        iv = Interval.open(1, 5)
        a = tape.append_crack(iv)
        b = tape.append_crack(iv)
        assert a == b == 0
        assert len(tape) == 1

    def test_append_crack_no_dedup_when_interleaved(self):
        tape = CrackerTape()
        iv = Interval.open(1, 5)
        tape.append_crack(iv)
        tape.append_crack(Interval.open(2, 6))
        tape.append_crack(iv)
        assert len(tape) == 3

    def test_min_safe_cursor_tracks_updates(self):
        tape = CrackerTape()
        tape.append(CrackEntry(Interval.open(1, 5)))
        assert tape.min_safe_cursor == 0
        tape.append(InsertEntry(np.array([1]), np.array([9])))
        assert tape.min_safe_cursor == 2
        tape.append(CrackEntry(Interval.open(2, 6)))
        assert tape.min_safe_cursor == 2
        tape.append(DeleteEntry(np.array([1]), np.array([9])))
        assert tape.min_safe_cursor == 4


def make_map(values, tail_values):
    return CrackerMap(
        "A", "B", values.copy(), tail_values.copy(),
        fetch_tail=lambda keys: np.asarray(keys) * 10,
    )


class TestCrackerMap:
    def test_crack_clusters_qualifiers(self, rng):
        values = rng.integers(0, 1000, size=500).astype(np.int64)
        cmap = make_map(values, values * 2)
        iv = Interval.open(200, 600)
        lo, hi = cmap.crack(iv)
        assert np.array_equal(
            np.sort(cmap.tail[lo:hi]), np.sort(values[iv.mask(values)] * 2)
        )
        cmap.check_invariants()

    def test_area_of_requires_existing_bounds(self, rng):
        values = rng.integers(0, 1000, size=200).astype(np.int64)
        cmap = make_map(values, values)
        iv = Interval.open(100, 300)
        assert cmap.area_of(iv) is None
        area = cmap.crack(iv)
        assert cmap.area_of(iv) == area

    def test_replay_crack_entry(self, rng):
        values = rng.integers(0, 1000, size=300).astype(np.int64)
        cmap = make_map(values, values * 2)
        cmap.replay_entry(CrackEntry(Interval.open(100, 500)))
        assert cmap.cursor == 1
        cmap.check_invariants()

    def test_replay_insert_fetches_tail(self, rng):
        values = rng.integers(0, 1000, size=100).astype(np.int64)
        cmap = make_map(values, values * 10)
        entry = InsertEntry(np.array([555], dtype=np.int64), np.array([77], dtype=np.int64))
        cmap.replay_entry(entry)
        assert len(cmap) == 101
        pos = np.flatnonzero(cmap.head == 555)
        assert 770 in cmap.tail[pos]

    def test_replay_delete_requires_positions(self, rng):
        values = rng.integers(0, 1000, size=100).astype(np.int64)
        cmap = make_map(values, values)
        with pytest.raises(AlignmentError):
            cmap.replay_entry(DeleteEntry(np.array([values[0]]), np.array([0])))

    def test_replay_delete_with_positions(self, rng):
        values = rng.integers(0, 1000, size=100).astype(np.int64)
        cmap = make_map(values, values)
        entry = DeleteEntry(
            np.array([values[3]]), np.array([3]), positions=np.array([3])
        )
        cmap.replay_entry(entry)
        assert len(cmap) == 99

    def test_replay_sort_entry(self, rng):
        values = rng.integers(0, 1000, size=200).astype(np.int64)
        cmap = make_map(values, values * 2)
        cmap.replay_entry(CrackEntry(Interval.open(300, 700)))
        cmap.replay_entry(SortEntry(Interval.open(300, 700).lower_bound(),
                                    Interval.open(300, 700).upper_bound()))
        lo, hi = cmap.area_of(Interval.open(300, 700))
        seg = cmap.head[lo:hi]
        assert np.array_equal(seg, np.sort(seg))
        assert np.array_equal(cmap.tail[lo:hi], seg * 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AlignmentError):
            CrackerMap("A", "B", np.arange(3), np.arange(4), lambda k: k)
