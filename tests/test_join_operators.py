"""Join kernels and shared physical operators."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.join import hash_join, semi_join_mask
from repro.engine.operators import (
    group_by,
    ordered_gather,
    random_gather,
    scan_select,
    segmented_aggregate,
    sort_rows,
)

small_ints = st.lists(st.integers(0, 20), min_size=0, max_size=40).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestHashJoin:
    def test_basic(self):
        left = np.array([1, 2, 3])
        right = np.array([3, 1, 1])
        li, ri = hash_join(left, right)
        pairs = sorted(zip(left[li].tolist(), right[ri].tolist()))
        assert pairs == [(1, 1), (1, 1), (3, 3)]

    def test_empty_sides(self):
        li, ri = hash_join(np.array([1, 2]), np.array([], dtype=np.int64))
        assert len(li) == len(ri) == 0

    def test_duplicates_cross_product(self):
        left = np.array([7, 7])
        right = np.array([7, 7, 7])
        li, ri = hash_join(left, right)
        assert len(li) == 6

    @given(small_ints, small_ints)
    def test_matches_naive_oracle(self, left, right):
        li, ri = hash_join(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        )
        assert got == expected

    def test_semi_join_mask(self):
        probe = np.array([1, 2, 3, 4])
        build = np.array([2, 4, 9])
        assert semi_join_mask(probe, build).tolist() == [False, True, False, True]


class TestGroupBy:
    def test_single_key(self):
        keys = np.array([2, 1, 2, 1, 3])
        group_ids, order, group_keys = group_by([keys])
        assert group_keys[0].tolist() == [1, 2, 3]
        values = np.array([10, 20, 30, 40, 50])
        sums = segmented_aggregate(group_ids, values[order], "sum")
        assert sums.tolist() == [60.0, 40.0, 50.0]

    def test_multi_key(self):
        a = np.array([1, 1, 2, 2, 1])
        b = np.array([9, 8, 9, 9, 9])
        group_ids, order, group_keys = group_by([a, b])
        got = sorted(zip(group_keys[0].tolist(), group_keys[1].tolist()))
        assert got == [(1, 8), (1, 9), (2, 9)]
        counts = segmented_aggregate(group_ids, a[order].astype(float), "count")
        assert sorted(counts.tolist()) == [1.0, 2.0, 2.0]

    def test_aggregate_functions(self):
        group_ids = np.array([0, 0, 1])
        values = np.array([3.0, 5.0, 7.0])
        assert segmented_aggregate(group_ids, values, "max").tolist() == [5.0, 7.0]
        assert segmented_aggregate(group_ids, values, "min").tolist() == [3.0, 7.0]
        assert segmented_aggregate(group_ids, values, "avg").tolist() == [4.0, 7.0]

    @given(small_ints)
    def test_group_counts_match_numpy(self, keys):
        if len(keys) == 0:
            return
        group_ids, order, group_keys = group_by([keys])
        counts = segmented_aggregate(group_ids, keys[order].astype(float), "count")
        uniques, expected = np.unique(keys, return_counts=True)
        assert group_keys[0].tolist() == uniques.tolist()
        assert counts.astype(int).tolist() == expected.tolist()


class TestGatherAndSort:
    def test_scan_select(self):
        values = np.array([5, 1, 9])
        positions = scan_select(values, values > 4)
        assert positions.tolist() == [0, 2]

    def test_ordered_gather(self):
        values = np.array([10, 20, 30])
        assert ordered_gather(values, np.array([0, 2])).tolist() == [10, 30]

    def test_random_gather_region(self):
        from repro.stats.counters import StatsRecorder

        rec = StatsRecorder(cache_elements=10)
        random_gather(np.arange(100), np.array([5, 50]), rec)
        assert rec.root.scattered_random == 2
        random_gather(np.arange(100), np.array([5, 7]), rec, region=8)
        assert rec.root.clustered_random == 2

    def test_sort_rows(self):
        a = np.array([2, 1, 2])
        b = np.array([5, 9, 1])
        order = sort_rows([a, b])
        assert a[order].tolist() == [1, 2, 2]
        assert b[order].tolist() == [9, 1, 5]

    def test_sort_rows_descending(self):
        a = np.array([1, 3, 2])
        order = sort_rows([a], descending=[True])
        assert a[order].tolist() == [3, 2, 1]
