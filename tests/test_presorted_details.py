"""Presorted-engine internals: binary-search ranges, sub-sorted copies."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import Database, Predicate, PresortedEngine, Query
from repro.engine.presorted import sorted_range
from repro.workloads.tpch.dates import add_months, add_years, d, year_of


class TestSortedRange:
    values = np.array([1, 3, 3, 3, 7, 9], dtype=np.int64)

    def test_open(self):
        lo, hi = sorted_range(self.values, Interval.open(1, 7))
        assert (lo, hi) == (1, 4)

    def test_closed(self):
        lo, hi = sorted_range(self.values, Interval.closed(3, 7))
        assert (lo, hi) == (1, 5)

    def test_point(self):
        lo, hi = sorted_range(self.values, Interval.point(3))
        assert (lo, hi) == (1, 4)

    def test_unbounded_sides(self):
        assert sorted_range(self.values, Interval.at_least(7)) == (4, 6)
        assert sorted_range(self.values, Interval.at_most(3)) == (0, 4)
        assert sorted_range(self.values, Interval()) == (0, 6)

    def test_empty_range(self):
        lo, hi = sorted_range(self.values, Interval.open(4, 6))
        assert lo == hi

    def test_below_and_above_domain(self):
        assert sorted_range(self.values, Interval.open(-10, 0)) == (0, 0)
        lo, hi = sorted_range(self.values, Interval.open(100, 200))
        assert lo == hi == 6


class TestSubSortedCopies:
    def test_then_by_orders_groups(self, rng):
        db = Database()
        db.create_table(
            "T",
            {
                "sel": rng.integers(0, 100, size=500),
                "grp": rng.integers(0, 5, size=500),
                "val": rng.integers(0, 1_000, size=500),
            },
        )
        engine = PresortedEngine(db, then_by={"T.sel": ("grp",)})
        query = Query(
            "T",
            predicates=(Predicate("sel", Interval.open(10, 90)),),
            projections=("grp",),
        )
        result = engine.run(query)
        copy, _ = db.sorted_copy("T", "sel", ("grp",))
        # Within equal sel values, grp is sorted (minor key).
        sel = copy.values("sel")
        grp = copy.values("grp")
        for value in np.unique(sel):
            segment = grp[sel == value]
            assert np.array_equal(segment, np.sort(segment))
        assert result.row_count > 0

    def test_presort_seconds_accumulates(self, rng):
        db = Database()
        db.create_table("T", {"a": rng.integers(0, 100, size=10_000),
                              "b": rng.integers(0, 100, size=10_000)})
        engine = PresortedEngine(db)
        assert engine.prepare("T", ["a", "b"]) > 0
        # Cached copies cost nothing the second time.
        assert engine.prepare("T", ["a", "b"]) == 0.0


class TestDates:
    def test_year_of(self):
        assert year_of(d(1994, 6, 15)) == 1994
        assert year_of(d(1992, 1, 1)) == 1992

    def test_add_months_year_carry(self):
        assert add_months(d(1993, 11, 15), 3) == d(1994, 2, 15)

    def test_add_years_leap_clamp(self):
        assert add_years(d(1996, 2, 29), 1) == d(1997, 2, 28)

    @pytest.mark.parametrize("year,month,days", [
        (1993, 2, 28), (1996, 2, 29), (1995, 4, 30), (1997, 12, 31),
    ])
    def test_month_lengths(self, year, month, days):
        from repro.workloads.tpch.dates import _days_in_month

        assert _days_in_month(year, month) == days
