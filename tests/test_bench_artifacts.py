"""Artifact store: content-addressed IDs, refs, run history, resolution."""

import json

import pytest

from repro.bench.registry.artifacts import (
    ArtifactError,
    ArtifactStore,
    canonical_json,
    content_id,
    import_baseline,
    run_metadata,
)

PAYLOAD = {"summary": {"speedup": 2.0, "ok": True}, "cases": [1, 2, 3]}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestContentAddressing:
    def test_id_is_stable_across_key_order(self):
        a = {"x": 1, "y": {"b": 2, "a": 3}}
        b = {"y": {"a": 3, "b": 2}, "x": 1}
        assert content_id(a) == content_id(b)
        assert len(content_id(a)) == 20

    def test_id_changes_with_content(self):
        assert content_id({"x": 1}) != content_id({"x": 2})

    def test_canonical_json_has_no_whitespace(self):
        text = canonical_json({"a": 1, "b": [2, 3]})
        assert " " not in text and "\n" not in text


class TestStoreRoundTrip:
    def test_put_get_round_trip(self, store):
        record = store.put(PAYLOAD, run_metadata("exp99", scale=0.5, seed=7))
        assert store.get(record.artifact_id) == PAYLOAD
        assert store.has(record.artifact_id)
        assert record.meta["experiment"] == "exp99"
        assert record.meta["scale"] == 0.5
        assert record.meta["seed"] == 7

    def test_put_dedups_identical_payloads(self, store):
        r1 = store.put(PAYLOAD, run_metadata("exp99"))
        r2 = store.put(dict(PAYLOAD), run_metadata("exp99"))
        assert r1.artifact_id == r2.artifact_id
        objects = list((store.root / "objects").rglob("*.json"))
        assert len(objects) == 1
        # ...but both runs are recorded.
        assert len(store.runs("exp99")) == 2

    def test_get_unknown_id_raises(self, store):
        with pytest.raises(ArtifactError, match="unknown artifact"):
            store.get("0" * 20)

    def test_metadata_echoes_repro_scale_env(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        meta = run_metadata("exp99", scale=0.25)
        assert meta["repro_scale_env"] == "0.25"
        monkeypatch.delenv("REPRO_SCALE")
        assert run_metadata("exp99")["repro_scale_env"] is None

    def test_metadata_provenance_fields(self, store):
        meta = run_metadata("exp99", params={"queries": 10})
        for key in ("created", "git_sha", "host", "platform", "python",
                    "sanitize", "faults"):
            assert key in meta
        assert meta["params"] == {"queries": 10}


class TestRefs:
    def test_set_and_get_ref(self, store):
        record = store.put(PAYLOAD, run_metadata("exp99"))
        store.set_ref("current/exp99", record.artifact_id)
        assert store.get_ref("current/exp99") == record.artifact_id
        assert store.refs() == {"current/exp99": record.artifact_id}

    def test_ref_to_missing_artifact_refused(self, store):
        with pytest.raises(ArtifactError, match="missing artifact"):
            store.set_ref("current/exp99", "f" * 20)

    def test_ref_repoint(self, store):
        r1 = store.put({"v": 1}, run_metadata("exp99"))
        r2 = store.put({"v": 2}, run_metadata("exp99"))
        store.set_ref("current/exp99", r1.artifact_id)
        store.set_ref("current/exp99", r2.artifact_id)
        assert store.get_ref("current/exp99") == r2.artifact_id


class TestResolve:
    def test_resolve_ref(self, store):
        record = store.put(PAYLOAD, run_metadata("exp99"))
        store.set_ref("baseline/exp99", record.artifact_id)
        assert store.resolve("ref:baseline/exp99") == PAYLOAD

    def test_resolve_artifact_id(self, store):
        record = store.put(PAYLOAD, run_metadata("exp99"))
        assert store.resolve(record.artifact_id) == PAYLOAD

    def test_resolve_file_path(self, store, tmp_path):
        path = tmp_path / "result.json"
        path.write_text(json.dumps(PAYLOAD))
        assert store.resolve(str(path)) == PAYLOAD

    def test_resolve_unknown_ref_lists_known(self, store):
        record = store.put(PAYLOAD, run_metadata("exp99"))
        store.set_ref("baseline/exp99", record.artifact_id)
        with pytest.raises(ArtifactError, match="baseline/exp99"):
            store.resolve("ref:current/exp99")

    def test_resolve_garbage_raises(self, store):
        with pytest.raises(ArtifactError, match="cannot resolve"):
            store.resolve("nonsense")


class TestRunHistory:
    def test_runs_sorted_by_created(self, store):
        for i in range(3):
            meta = run_metadata("exp99")
            meta["created"] = 1000.0 + i
            store.put({"v": i}, meta)
        created = [m["created"] for m in store.runs("exp99")]
        assert created == sorted(created)

    def test_runs_filtered_by_experiment(self, store):
        store.put({"v": 1}, run_metadata("expA"))
        store.put({"v": 2}, run_metadata("expB"))
        assert len(store.runs("expA")) == 1
        assert len(store.runs()) == 2


class TestImportBaseline:
    def test_import_sets_baseline_ref(self, store, tmp_path):
        path = tmp_path / "BENCH_exp99.json"
        path.write_text(json.dumps(PAYLOAD))
        record = import_baseline(store, "exp99", path)
        assert store.get_ref("baseline/exp99") == record.artifact_id
        assert store.resolve("ref:baseline/exp99") == PAYLOAD
        assert record.meta["imported_from"] == str(path)

    def test_import_id_matches_direct_content_id(self, store, tmp_path):
        path = tmp_path / "BENCH_exp99.json"
        path.write_text(json.dumps(PAYLOAD, indent=2, sort_keys=True))
        record = import_baseline(store, "exp99", path)
        # Formatting of the legacy file must not affect the stored ID.
        assert record.artifact_id == content_id(PAYLOAD)
