"""Process shard workers: correctness, crash recovery, deadlines, lifecycle."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.errors import QueryTimeout, ServerError
from repro.faults.plan import FaultPlan, install_plan, uninstall_plan
from repro.server.executor import ServerExecutor
from repro.server.procpool import ProcessShardPool
from repro.storage.bat import BAT
from repro.storage.shared import leaked_system_segments, live_segment_names
from repro.storage.types import ColumnType


@pytest.fixture
def base_bat(rng):
    values = rng.integers(0, 10_000, size=20_000).astype(np.int64)
    return BAT(values, ColumnType.INT, None, None)


@pytest.fixture
def pool(base_bat):
    p = ProcessShardPool(base_bat, 4, "t", "A")
    yield p
    p.close()


def _expected(values, interval):
    return np.sort(np.flatnonzero(interval.mask(values)))


def _span(lo, hi, attr="A", **kwargs):
    return Query("R", (Predicate(attr, Interval.half_open(lo, hi)),), **kwargs)


# -- pool correctness --------------------------------------------------------


def test_select_matches_ground_truth(pool, base_bat):
    for interval in (
        Interval(1_000, 5_000),
        Interval.closed(0, 9_999),
        Interval.at_most(100),
        Interval.at_least(9_000),
    ):
        got = pool.select(interval)
        assert not got.recovered and not got.degraded
        assert np.array_equal(
            np.sort(got.keys), _expected(base_bat.values, interval)
        )


def test_pruning_skips_irrelevant_workers(pool, base_bat):
    narrow = Interval(0, 50)
    assert len(pool.relevant_workers(narrow)) < len(pool.workers)
    keys = pool.select(narrow).keys
    assert np.array_equal(np.sort(keys), _expected(base_bat.values, narrow))


def test_updates_route_and_apply(pool, base_bat):
    interval = Interval(1_000, 5_000)
    pool.select(interval)
    n = len(base_bat)
    pool.add_insertions(
        np.array([2_000, 9_999, 1_500], dtype=np.int64),
        np.arange(n, n + 3, dtype=np.int64),
    )
    pool.add_deletions(
        np.array([2_000], dtype=np.int64), np.array([n], dtype=np.int64)
    )
    keys = pool.select(interval).keys
    expected = np.sort(np.concatenate([
        _expected(base_bat.values, interval), [n + 2]
    ]))
    assert np.array_equal(np.sort(keys), expected)


def test_result_buffer_grows_for_bulk_inserts(pool, base_bat):
    """Inserting more rows than any shard's initial capacity must remap."""
    n = len(base_bat)
    bulk = np.full(30_000, 42, dtype=np.int64)  # all route to one shard
    pool.add_insertions(bulk, np.arange(n, n + len(bulk), dtype=np.int64))
    interval = Interval.closed(42, 42)
    keys = pool.select(interval).keys
    expected = np.sort(np.concatenate([
        _expected(base_bat.values, interval),
        np.arange(n, n + len(bulk)),
    ]))
    assert np.array_equal(np.sort(keys), expected)


# -- crash recovery ----------------------------------------------------------


def test_worker_crash_respawns_and_replays(pool, base_bat):
    interval = Interval(2_000, 8_000)
    before = pool.select(interval).keys
    snap_before = pool.snapshot()
    for worker in pool.workers:
        worker.process.kill()
        worker.process.join()
    after = pool.select(interval)
    assert after.recovered and not after.degraded
    assert np.array_equal(np.sort(after.keys), np.sort(before))
    # Replay is deterministic: the rebuilt shards reach the same cracked
    # state (piece counts, payload CRCs, RNG-driven cut counts).
    assert pool.snapshot() == snap_before
    assert all(w.respawns == 1 for w in pool.workers)


def test_failpoint_kills_worker_mid_command(pool, base_bat):
    interval = Interval(1_000, 9_000)
    install_plan(FaultPlan.parse("procpool.worker@1=error", seed=7))
    try:
        got = pool.select(interval)
    finally:
        uninstall_plan()
    assert got.recovered and not got.degraded
    assert np.array_equal(np.sort(got.keys), _expected(base_bat.values, interval))
    assert sum(w.respawns for w in pool.workers) == 1
    assert pool.stats()["recoveries"] == 1


def test_deadline_expiry_raises_query_timeout(base_bat):
    pool = ProcessShardPool(base_bat, 2, "t", "A")
    try:
        with pytest.raises(QueryTimeout):
            pool.select(Interval(1_000, 9_000), deadline=1e-7)
        # The straggler was killed and replayed; the pool still answers.
        keys = pool.select(Interval(1_000, 9_000)).keys
        assert np.array_equal(
            np.sort(keys), _expected(base_bat.values, Interval(1_000, 9_000))
        )
    finally:
        pool.close()


def test_closed_pool_refuses_work(base_bat):
    pool = ProcessShardPool(base_bat, 2, "t", "A")
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ServerError):
        pool.select(Interval(0, 100))
    assert not leaked_system_segments()


# -- executor integration ----------------------------------------------------


def _digests(executor, queries):
    return [executor.run(q).digest() for q in queries]


def test_process_engine_digests_match_serial_and_threads(small_arrays):
    queries = [
        _span(1_000, 30_000),
        _span(1_000, 30_000, projections=("A", "B")),
        _span(50_000, 90_000, aggregates=(("sum", "A"), ("count", "A"))),
        _span(90_000, 100_001),
    ]
    results = {}
    for mode, kwargs in (
        ("serial", dict(workers=1)),
        ("thread", dict(workers=4, partitions=4)),
        ("process", dict(workers=4, processes=4)),
    ):
        db = Database()
        db.create_table("R", {k: v.copy() for k, v in small_arrays.items()})
        with db, ServerExecutor(db, cache=False, **kwargs) as executor:
            if kwargs.get("partitions") or kwargs.get("processes"):
                executor.partition("R", "A")
            results[mode] = _digests(executor, queries)
    assert results["serial"] == results["thread"] == results["process"]


def test_process_engine_updates_stay_bit_identical(small_arrays):
    query = _span(10_000, 60_000)
    digests = {}
    for mode, kwargs in (
        ("serial", dict(workers=1)),
        ("process", dict(workers=2, processes=2)),
    ):
        db = Database()
        db.create_table("R", {k: v.copy() for k, v in small_arrays.items()})
        with db, ServerExecutor(db, cache=False, **kwargs) as executor:
            if kwargs.get("processes"):
                executor.partition("R", "A")
            seen = [executor.run(query).digest()]
            keys = executor.insert(
                "R", {c: [15_000 + i for i in range(3)] for c in "ABCD"}
            )
            seen.append(executor.run(query).digest())
            executor.delete("R", keys[:1])
            seen.append(executor.run(query).digest())
            digests[mode] = seen
    assert digests["serial"] == digests["process"]


def test_executor_marks_fault_recovered_and_skips_cache(db):
    with ServerExecutor(db, workers=2, processes=2) as executor:
        executor.partition("R", "A")
        query = _span(1_000, 50_000)
        clean = executor.run(query)
        assert clean.path == "process" and not clean.fault_recovered
        executor.insert("R", {c: [1] for c in "ABCD"})  # invalidate cache
        install_plan(FaultPlan.parse("procpool.worker@1=error", seed=3))
        try:
            recovered = executor.run(query)
        finally:
            uninstall_plan()
        assert recovered.fault_recovered
        # A recovered result must not be admitted to the result cache.
        replay = executor.run(query)
        assert not replay.cached
        assert replay.digest() == recovered.digest()


def test_run_batch_translates_worker_deadline_to_query_timeout(db):
    """Process-mode regression: a shard worker missing its per-command
    deadline surfaces as the wire-level QueryTimeout, same as threads."""
    from repro.server.executor import ServedQuery

    with ServerExecutor(db, workers=2, processes=2, cache=False) as executor:
        executor.partition("R", "A")
        doomed = ServedQuery(_span(1_000, 99_000), timeout=1e-7)
        with pytest.raises(QueryTimeout):
            executor.run_batch([doomed])
        # The executor (and its pool) survive: a sane deadline still works.
        result = executor.run(_span(1_000, 99_000))
        assert result.path == "process"


def test_executor_close_unlinks_segments(db):
    executor = ServerExecutor(db, workers=2, processes=2)
    executor.partition("R", "A")
    executor.run(_span(1_000, 50_000))
    assert live_segment_names()
    executor.close()
    assert not live_segment_names()
    assert not leaked_system_segments()


def test_database_close_cascades_to_executor(small_arrays):
    db = Database()
    db.create_table("R", dict(small_arrays))
    executor = ServerExecutor(db, workers=2, processes=2)
    executor.partition("R", "A")
    executor.run(_span(1_000, 50_000))
    assert live_segment_names()
    db.close()
    assert executor._closed
    assert not live_segment_names()
    assert not leaked_system_segments()


def test_segments_survive_worker_crash_until_close(db):
    """A crashed worker must not take the parent's segments with it."""
    with ServerExecutor(db, workers=2, processes=2) as executor:
        column = executor.partition("R", "A")
        executor.run(_span(1_000, 50_000))
        for worker in column.workers:
            worker.process.kill()
            worker.process.join()
        result = executor.run(_span(60_000, 90_000))
        assert result.path == "process"
    assert not live_segment_names()
    assert not leaked_system_segments()


def test_serve_cli_sigterm_unlinks_segments(tmp_path):
    """``python -m repro serve --processes N`` must unlink every shared
    segment on SIGTERM — the kernel never reclaims ``/dev/shm`` entries on
    process death, so a service manager's stop signal is a leak unless the
    server shuts its executor down on the way out."""
    import os
    import re
    import signal
    import subprocess
    import sys

    from repro.storage.shared import SEGMENT_PREFIX

    import repro

    # The server runs from tmp_path, so every PYTHONPATH entry must be
    # absolute (a relative "src" would resolve against tmp_path).
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root]
        + [os.path.abspath(p)
           for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--rows", "5000", "--workers", "2", "--processes", "2",
         "--partition-attr", "R.A"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(tmp_path),
    )

    def segments():
        prefix = f"{SEGMENT_PREFIX}_{proc.pid}_"
        try:
            return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
        except OSError:  # no /dev/shm on this platform: vacuous pass
            return []

    try:
        for line in proc.stdout:
            if re.search(r"listening on ", line):
                break
        else:
            pytest.fail("server exited before reporting its port")
        assert segments(), "expected live shard segments while serving"
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    assert not segments(), "SIGTERM leaked /dev/shm segments"


def test_process_mode_stats_shape(db):
    with ServerExecutor(db, workers=2, processes=2) as executor:
        executor.partition("R", "A")
        executor.run(_span(1_000, 50_000))
        stats = executor.stats()
        assert stats["engine_mode"] == "process"
        assert stats["processes"] == 2
        column = stats["partitioned"]["R.A"]
        assert column["engine"] == "process"
        assert column["selects"] >= 1
        assert len(column["respawns"]) == len(column["shard_rows"])
        assert {"dispatch_seconds", "worker_seconds", "gather_seconds"} \
            <= set(column)


# -- resilience: retries, breakers, degraded fallback ------------------------


def _aggressive_resilience(**overrides):
    """Open the breaker on the very first failed dispatch."""
    from repro.server.resilience import ResilienceConfig

    kwargs = dict(
        retry_attempts=0, backoff_base=1e-4, backoff_cap=1e-3,
        breaker_window=1, breaker_min_calls=1, breaker_threshold=1.0,
        breaker_cooldown=0.2,
    )
    kwargs.update(overrides)
    return ResilienceConfig(**kwargs)


def test_spawn_start_method_respawn_replays(monkeypatch, base_bat):
    """Respawn-and-replay must also work under the portable ``spawn``
    start method, where the replacement worker imports from scratch."""
    monkeypatch.setenv("REPRO_PROCPOOL_START", "spawn")
    pool = ProcessShardPool(base_bat, 2, "t", "A")
    try:
        interval = Interval(1_000, 9_000)
        warm = pool.select(interval, deadline=60.0)
        assert not warm.recovered
        install_plan(FaultPlan.parse("procpool.worker@1=error", seed=11))
        try:
            got = pool.select(interval, deadline=60.0)
        finally:
            uninstall_plan()
        assert got.recovered and not got.degraded
        assert np.array_equal(
            np.sort(got.keys), _expected(base_bat.values, interval)
        )
        assert sum(w.respawns for w in pool.workers) == 1
    finally:
        pool.close()


def test_breaker_opens_and_scan_fallback_is_exact(base_bat):
    """A shard whose worker keeps dying is served by the parent-side scan
    fallback: breaker open, result degraded, keys exact — including
    updates mirrored before the chaos — and the breaker's half-open probe
    recovers the shard once the faults stop."""
    import time

    config = _aggressive_resilience()
    pool = ProcessShardPool(base_bat, 4, "t", "A", resilience=config)
    try:
        # Confine the query to shard 0 so exactly one breaker is exercised.
        edge = max(2, int(pool.workers[0].hi // 2))
        interval = Interval.half_open(0, edge)
        n = len(base_bat)
        pool.add_insertions(
            np.array([1, edge - 1, edge + 1], dtype=np.int64),
            np.arange(n, n + 3, dtype=np.int64),
        )
        pool.add_deletions(
            np.array([1], dtype=np.int64), np.array([n], dtype=np.int64)
        )
        expected = np.sort(np.concatenate([
            _expected(base_bat.values, interval), [n + 1]
        ]))
        # One failed resilient dispatch burns two shots: the initial kill
        # plus the kill of the respawn-and-replay retry.
        install_plan(FaultPlan.parse("procpool.worker@1..2=error", seed=5))
        try:
            got = pool.select(interval, deadline=60.0)
        finally:
            uninstall_plan()
        assert got.degraded
        assert np.array_equal(np.sort(got.keys), expected)
        stats = pool.stats()
        assert stats["degraded_serves"][0] == 1
        assert stats["breakers"]["t.A#0"]["state"] == "open"
        assert stats["breakers"]["t.A#0"]["opens"] == 1
        # Faults are gone: after the cooldown the half-open probe finds a
        # healthy (revived) worker and the breaker recloses.
        time.sleep(config.breaker_cooldown + 0.05)
        after = pool.select(interval, deadline=60.0)
        assert not after.degraded
        assert np.array_equal(np.sort(after.keys), expected)
        assert pool.stats()["breakers"]["t.A#0"]["state"] == "closed"
    finally:
        pool.close()


def test_executor_degraded_result_is_honest_and_never_cached(db):
    import time

    config = _aggressive_resilience(breaker_cooldown=0.5)
    with ServerExecutor(db, workers=2, processes=2, resilience=config) as executor:
        executor.partition("R", "A")
        query = _span(1_000, 50_000)
        assert not executor.run(query).degraded
        executor.insert("R", {c: [1] for c in "ABCD"})  # invalidate cache
        install_plan(FaultPlan.parse("procpool.worker@1..2=error", seed=9))
        try:
            degraded = executor.run(query)
        finally:
            uninstall_plan()
        assert degraded.degraded
        assert degraded.as_payload()["degraded"] is True
        assert executor.health()["degraded"] is True
        # Still inside the cooldown: the fallback serves again, and the
        # earlier degraded answer was never admitted to the cache (a hit
        # here would replay it with cached=True).
        again = executor.run(query)
        assert not again.cached and again.degraded
        # Past the cooldown the half-open probe recovers the shard; the
        # clean answer must match what the fallback served: degraded
        # means slower, never wrong.
        time.sleep(config.breaker_cooldown + 0.1)
        truth = executor.run(query)
        assert not truth.degraded
        assert truth.digest() == degraded.digest() == again.digest()
        stats = executor.stats()
        assert stats["degraded"] >= 2
        assert executor.health()["degraded"] is False


# -- concurrent shutdown -----------------------------------------------------


def _hammer_close(close, threads=4):
    import threading

    errors = []

    def closer():
        try:
            close()
        except Exception as exc:  # noqa: BLE001 - the test asserts none
            errors.append(exc)

    workers = [threading.Thread(target=closer) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=60)
    return errors


def test_executor_close_is_concurrent_safe(db):
    executor = ServerExecutor(db, workers=2, processes=2)
    executor.partition("R", "A")
    executor.run(_span(1_000, 50_000))
    assert _hammer_close(executor.close) == []
    assert executor._closed
    assert not live_segment_names()
    assert not leaked_system_segments()


def test_database_close_is_concurrent_safe(small_arrays):
    db = Database()
    db.create_table("R", dict(small_arrays))
    executor = ServerExecutor(db, workers=2, processes=2)
    executor.partition("R", "A")
    executor.run(_span(1_000, 50_000))
    assert _hammer_close(db.close) == []
    assert executor._closed
    assert not live_segment_names()
    assert not leaked_system_segments()
