"""Cracker indices as self-organizing histograms."""

import numpy as np

from repro.core.histogram import estimate_result_size
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.cracking.crack import crack_into


def build(rng, n=2_000, domain=10_000, cracks=6):
    values = rng.integers(0, domain, size=n).astype(np.int64)
    head = values.copy()
    index = CrackerIndex()
    for _ in range(cracks):
        lo = int(rng.integers(0, domain - 1_000))
        crack_into(index, head, [], Interval.open(lo, lo + 1_000))
    return values, head, index


class TestEstimates:
    def test_exact_when_bounds_exist(self, rng):
        values, head, index = build(rng)
        iv = Interval.open(3_000, 4_000)
        crack_into(index, head, [], iv)
        est = estimate_result_size(index, len(head), iv, 0, 10_000)
        assert est.exact
        assert est.value == est.low == est.high == int(iv.mask(values).sum())

    def test_bounds_bracket_truth(self, rng):
        values, head, index = build(rng)
        for _ in range(20):
            lo = int(rng.integers(0, 9_000))
            iv = Interval.open(lo, lo + 800)
            est = estimate_result_size(index, len(head), iv, 0, 10_000)
            truth = int(iv.mask(values).sum())
            assert est.low <= truth <= est.high
            assert est.low <= est.value <= est.high

    def test_interpolation_beats_worst_case(self, rng):
        values, head, index = build(rng, cracks=2)
        iv = Interval.open(2_500, 2_600)
        est = estimate_result_size(index, len(head), iv, 0, 10_000)
        truth = int(iv.mask(values).sum())
        worst = max(abs(truth - est.low), abs(truth - est.high))
        assert abs(truth - est.value) <= worst

    def test_empty_index_uses_domain_interpolation(self):
        index = CrackerIndex()
        est = estimate_result_size(index, 1_000, Interval.open(0, 5_000), 0, 10_000)
        assert 0 <= est.value <= 1_000
        assert est.low == 0
        assert est.high == 1_000

    def test_unbounded_interval(self, rng):
        values, head, index = build(rng)
        est = estimate_result_size(index, len(head), Interval(), 0, 10_000)
        assert est.exact
        assert est.value == len(head)

    def test_estimates_sharpen_with_more_cracks(self, rng):
        values = rng.integers(0, 10_000, size=2_000).astype(np.int64)
        head = values.copy()
        index = CrackerIndex()
        iv = Interval.open(4_200, 4_700)
        errors = []
        for step in range(6):
            est = estimate_result_size(index, len(head), iv, 0, 10_000)
            truth = int(iv.mask(values).sum())
            errors.append(est.high - est.low)
            lo = 1_000 * step
            crack_into(index, head, [], Interval.open(lo, lo + 700))
        assert errors[-1] <= errors[0]
