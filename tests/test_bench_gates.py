"""Gate checkers, gates.toml parsing, and the gate runner / CLI exit codes."""

import json

import pytest

from repro.bench.registry.artifacts import ArtifactStore, run_metadata
from repro.bench.registry.core import GATES
from repro.bench.registry.gates import (
    GateConfigError,
    format_gate_results,
    load_gate_config,
    run_gates,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def _put_ref(store, ref, payload):
    record = store.put(payload, run_metadata(ref.split("/")[-1]))
    store.set_ref(ref, record.artifact_id)
    return record.artifact_id


GOOD_EXP19 = {
    "summary": {"p99_ok": True, "shed_ok": True, "chaos_absorbed": True,
                "bit_identical_ok": True, "breaker_lifecycle_ok": True,
                "all_ok": True},
    "overload_clean": {"shed": 4},
}


class TestGateCheckers:
    def test_exp18_pass_and_fail(self):
        gate = GATES.get("exp18")
        ok = gate({"summary": {"all_digests_match_serial": True}}, None, {})
        assert all(c.ok for c in ok)
        bad = gate({"summary": {"all_digests_match_serial": False}}, None, {})
        assert not all(c.ok for c in bad)

    def test_exp18_require_speedup_option(self):
        gate = GATES.get("exp18")
        payload = {"summary": {"all_digests_match_serial": True,
                               "speedup_ok": False}}
        assert all(c.ok for c in gate(payload, None, {}))
        assert not all(c.ok for c in gate(payload, None,
                                          {"require_speedup": True}))

    def test_exp19_pass(self):
        checks = GATES.get("exp19")(GOOD_EXP19, None, {})
        assert all(c.ok for c in checks)

    def test_exp19_fails_without_shedding(self):
        payload = {"summary": dict(GOOD_EXP19["summary"]),
                   "overload_clean": {"shed": 0}}
        checks = GATES.get("exp19")(payload, None, {})
        failed = [c for c in checks if not c.ok]
        assert [c.name for c in failed] == ["overload_actually_shed"]

    def test_exp19_fails_on_any_summary_flag(self):
        summary = dict(GOOD_EXP19["summary"], breaker_lifecycle_ok=False)
        checks = GATES.get("exp19")({
            "summary": summary, "overload_clean": {"shed": 4}}, None, {})
        assert not all(c.ok for c in checks)

    def test_exp16_gates_scan_identity_always(self):
        gate = GATES.get("exp16")
        ok = gate({"all_match_scan": True, "mismatches": [],
                   "summary": {"pmdd1r_drag_ok": False}}, None, {})
        assert all(c.ok for c in ok)
        bad = gate({"all_match_scan": False, "mismatches": ["x"]}, None, {})
        assert not all(c.ok for c in bad)

    def test_exp16_strict_adds_timing_flags(self):
        payload = {"all_match_scan": True, "mismatches": [],
                   "summary": {"progressive_within_2x_budget": True,
                               "pmdd1r_drag_ok": False, "auto_ok": True}}
        checks = GATES.get("exp16")(payload, None, {"strict": True})
        failed = [c.name for c in checks if not c.ok]
        assert failed == ["pmdd1r_drag_ok"]

    def test_exp14_scan_identity(self):
        gate = GATES.get("exp14")
        ok = gate({"engines_match_scan": True, "engine_failures": []}, None, {})
        assert all(c.ok for c in ok)
        bad = gate({"engines_match_scan": False,
                    "engine_failures": ["boom"]}, None, {})
        assert not all(c.ok for c in bad)

    def test_kernels_requires_baseline(self):
        checks = GATES.get("kernels")({"all_identical": True}, None, {})
        failed = [c.name for c in checks if not c.ok]
        assert failed == ["baseline_present"]

    def test_kernels_regression_detected(self):
        current = {"all_identical": True, "cases": [
            {"case": "crack_two", "rows": 1000, "speedup": 1.0}]}
        baseline = {"cases": [
            {"case": "crack_two", "rows": 1000, "speedup": 4.0}]}
        checks = GATES.get("kernels")(current, baseline, {"tolerance": 50.0})
        assert not all(c.ok for c in checks)
        # Within tolerance passes.
        current["cases"][0]["speedup"] = 3.0
        checks = GATES.get("kernels")(current, baseline, {"tolerance": 50.0})
        assert all(c.ok for c in checks)


class TestGateConfig:
    def _write(self, tmp_path, text):
        path = tmp_path / "gates.toml"
        path.write_text(text)
        return path

    def test_defaults_resolved_from_spec(self, tmp_path):
        path = self._write(tmp_path, "[gate.exp18]\n")
        (entry,) = load_gate_config(path)
        assert entry.experiment == "exp18"
        assert entry.current == "ref:current/exp18"
        assert entry.baseline == "ref:baseline/exp18"
        assert entry.options["checker"] == "exp18"

    def test_explicit_sources_and_options(self, tmp_path):
        path = self._write(tmp_path, (
            '[gate.perf]\nexperiment = "kernels"\n'
            'current = "BENCH_current.json"\ntolerance = 25.0\n'))
        (entry,) = load_gate_config(path)
        assert entry.name == "perf"
        assert entry.current == "BENCH_current.json"
        assert entry.options["tolerance"] == 25.0

    def test_unknown_experiment_rejected(self, tmp_path):
        path = self._write(tmp_path, "[gate.exp404]\n")
        with pytest.raises(Exception, match="unknown name"):
            load_gate_config(path)

    def test_unknown_checker_rejected(self, tmp_path):
        path = self._write(
            tmp_path, '[gate.exp18]\nchecker = "no_such_gate"\n')
        with pytest.raises(Exception, match="unknown name"):
            load_gate_config(path)

    def test_empty_or_malformed_config_rejected(self, tmp_path):
        with pytest.raises(GateConfigError):
            load_gate_config(self._write(tmp_path, ""))
        with pytest.raises(GateConfigError):
            load_gate_config(self._write(tmp_path, "[other]\nx = 1\n"))

    def test_checked_in_ci_gates_config_parses(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "ci" / "gates.toml"
        entries = load_gate_config(path)
        names = {entry.name for entry in entries}
        assert {"kernels", "exp14", "exp16", "exp17", "exp18",
                "exp19"} <= names


class TestRunGates:
    def test_pass_and_fail_against_store(self, store, tmp_path):
        _put_ref(store, "current/exp19", GOOD_EXP19)
        path = tmp_path / "gates.toml"
        path.write_text("[gate.exp19]\n")
        (result,) = run_gates(load_gate_config(path), store)
        assert result.ok
        bad = {"summary": dict(GOOD_EXP19["summary"], all_ok=False),
               "overload_clean": {"shed": 4}}
        _put_ref(store, "current/exp19", bad)
        (result,) = run_gates(load_gate_config(path), store)
        assert not result.ok

    def test_missing_current_is_captured_error(self, store, tmp_path):
        path = tmp_path / "gates.toml"
        path.write_text("[gate.exp19]\n")
        (result,) = run_gates(load_gate_config(path), store)
        assert not result.ok
        assert "cannot load current" in result.error

    def test_only_filter(self, store, tmp_path):
        _put_ref(store, "current/exp19", GOOD_EXP19)
        path = tmp_path / "gates.toml"
        path.write_text("[gate.exp19]\n[gate.exp18]\n")
        results = run_gates(load_gate_config(path), store, only={"exp19"})
        assert [r.gate for r in results] == ["exp19"]

    def test_format_output(self, store, tmp_path):
        _put_ref(store, "current/exp19", GOOD_EXP19)
        path = tmp_path / "gates.toml"
        path.write_text("[gate.exp19]\n")
        text = format_gate_results(run_gates(load_gate_config(path), store))
        assert "[PASS] gate exp19 (exp19)" in text
        assert "1/1 gates passed" in text


class TestGateCli:
    def _setup(self, tmp_path, payload):
        store = ArtifactStore(tmp_path / "artifacts")
        _put_ref(store, "current/exp19", payload)
        gates = tmp_path / "gates.toml"
        gates.write_text("[gate.exp19]\n")
        return store, gates

    def test_exit_zero_on_pass_and_json_output(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        _, gates = self._setup(tmp_path, GOOD_EXP19)
        out = tmp_path / "gate-results.json"
        rc = main(["--store", str(tmp_path / "artifacts"), "gate",
                   "--config", str(gates), "--output", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["all_ok"] is True
        assert payload["gates"]["exp19"]["ok"] is True
        assert payload["gates"]["exp19"]["checks"]

    def test_exit_one_on_fail(self, tmp_path):
        from repro.bench.__main__ import main

        bad = {"summary": dict(GOOD_EXP19["summary"], p99_ok=False),
               "overload_clean": {"shed": 4}}
        _, gates = self._setup(tmp_path, bad)
        rc = main(["--store", str(tmp_path / "artifacts"), "gate",
                   "--config", str(gates)])
        assert rc == 1

    def test_exit_two_on_unknown_only(self, tmp_path):
        from repro.bench.__main__ import main

        _, gates = self._setup(tmp_path, GOOD_EXP19)
        rc = main(["--store", str(tmp_path / "artifacts"), "gate",
                   "--config", str(gates), "--only", "exp404"])
        assert rc == 2

    def test_exit_two_on_missing_config(self, tmp_path):
        from repro.bench.__main__ import main

        rc = main(["--store", str(tmp_path / "artifacts"), "gate",
                   "--config", str(tmp_path / "nope.toml")])
        assert rc == 2
