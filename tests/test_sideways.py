"""The sideways-cracking facade: multi-projection, conjunctive, disjunctive
plans vs. a scan oracle; histogram-driven map-set choice."""

import numpy as np
import pytest

from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Interval
from repro.errors import PlanError
from repro.storage.relation import Relation


@pytest.fixture
def setup(rng):
    arrays = {c: rng.integers(1, 50_001, size=4_000).astype(np.int64) for c in "ABCD"}
    rel = Relation.from_arrays("R", arrays)
    return arrays, rel, SidewaysCracker(rel)


def oracle(arrays, preds, projs, conjunctive=True):
    masks = [iv.mask(arrays[a]) for a, iv in preds.items()]
    mask = np.logical_and.reduce(masks) if conjunctive else np.logical_or.reduce(masks)
    return {p: arrays[p][mask] for p in projs}


class TestSelectProject:
    def test_matches_oracle_over_sequence(self, setup, rng):
        arrays, _, sw = setup
        for _ in range(15):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + 8_000)
            res = sw.select_project("A", iv, ["B", "C"])
            exp = oracle(arrays, {"A": iv}, ["B", "C"])
            for p in ("B", "C"):
                assert np.array_equal(np.sort(res[p]), np.sort(exp[p]))

    def test_projection_rows_stay_tuple_aligned(self, setup, rng):
        arrays, _, sw = setup
        iv = Interval.open(10_000, 30_000)
        res = sw.select_project("A", iv, ["B", "C", "D"])
        exp = oracle(arrays, {"A": iv}, ["B", "C", "D"])
        got = sorted(zip(res["B"].tolist(), res["C"].tolist(), res["D"].tolist()))
        want = sorted(zip(exp["B"].tolist(), exp["C"].tolist(), exp["D"].tolist()))
        assert got == want

    def test_projecting_head_attribute(self, setup):
        arrays, _, sw = setup
        iv = Interval.open(10_000, 20_000)
        res = sw.select_project("A", iv, ["A"])
        assert iv.mask(res["A"]).all()
        assert len(res["A"]) == int(iv.mask(arrays["A"]).sum())


class TestConjunctive:
    def test_two_predicates(self, setup, rng):
        arrays, _, sw = setup
        for _ in range(10):
            preds = {
                "A": Interval.open(0, int(rng.integers(10_000, 40_000))),
                "B": Interval.open(int(rng.integers(0, 20_000)), 50_001),
            }
            res = sw.query(preds, ["C"], conjunctive=True)
            exp = oracle(arrays, preds, ["C"])
            assert np.array_equal(np.sort(res["C"]), np.sort(exp["C"]))

    def test_three_predicates_forced_head(self, setup):
        arrays, _, sw = setup
        preds = {
            "A": Interval.open(5_000, 45_000),
            "B": Interval.open(10_000, 40_000),
            "C": Interval.open(1, 25_000),
        }
        res = sw.query(preds, ["D"], head_attr="B")
        exp = oracle(arrays, preds, ["D"])
        assert np.array_equal(np.sort(res["D"]), np.sort(exp["D"]))

    def test_head_must_have_predicate(self, setup):
        _, _, sw = setup
        with pytest.raises(PlanError):
            sw.query({"A": Interval.open(1, 2)}, ["B"], head_attr="D")

    def test_empty_result(self, setup):
        arrays, _, sw = setup
        preds = {"A": Interval.open(0, 2), "B": Interval.open(0, 2)}
        res = sw.query(preds, ["C"])
        exp = oracle(arrays, preds, ["C"])
        assert len(res["C"]) == len(exp["C"])


class TestDisjunctive:
    def test_matches_oracle(self, setup, rng):
        arrays, _, sw = setup
        for _ in range(8):
            preds = {
                "A": Interval.open(int(rng.integers(0, 30_000)), 50_001),
                "B": Interval.open(0, int(rng.integers(5_000, 20_000))),
            }
            res = sw.query(preds, ["D"], conjunctive=False)
            exp = oracle(arrays, preds, ["D"], conjunctive=False)
            assert np.array_equal(np.sort(res["D"]), np.sort(exp["D"]))

    def test_single_predicate_degenerate(self, setup):
        arrays, _, sw = setup
        preds = {"A": Interval.open(10_000, 20_000)}
        res = sw.query(preds, ["B"], conjunctive=False)
        exp = oracle(arrays, preds, ["B"])
        assert np.array_equal(np.sort(res["B"]), np.sort(exp["B"]))


class TestMapSetChoice:
    def test_choose_head_prefers_selective_for_conjunction(self, setup):
        _, _, sw = setup
        preds = {
            "A": Interval.open(0, 50_001),        # ~everything
            "B": Interval.open(100, 600),          # ~1%
        }
        assert sw.choose_head(preds, conjunctive=True) == "B"
        assert sw.choose_head(preds, conjunctive=False) == "A"

    def test_estimates_improve_with_cracking(self, setup):
        arrays, _, sw = setup
        iv = Interval.open(10_000, 20_000)
        uniform_estimate = sw.estimate_count("A", iv)
        sw.select_project("A", iv, ["B"])
        refined = sw.estimate_count("A", iv)
        exact = int(iv.mask(arrays["A"]).sum())
        assert refined == exact
        assert abs(refined - exact) <= abs(uniform_estimate - exact) + 1

    def test_choose_head_requires_predicates(self, setup):
        _, _, sw = setup
        with pytest.raises(PlanError):
            sw.choose_head({})


class TestBookkeeping:
    def test_storage_tuples_counts_maps(self, setup):
        _, rel, sw = setup
        sw.select_project("A", Interval.open(1, 100), ["B", "C"])
        assert sw.storage_tuples() == 2 * len(rel)

    def test_invariants_after_mixed_plan_sequence(self, setup, rng):
        arrays, _, sw = setup
        for i in range(12):
            lo = int(rng.integers(0, 40_000))
            if i % 3 == 0:
                sw.select_project("A", Interval.open(lo, lo + 5_000), ["B"])
            elif i % 3 == 1:
                sw.query(
                    {"A": Interval.open(lo, lo + 9_000),
                     "B": Interval.open(0, 25_000)},
                    ["C"],
                )
            else:
                sw.query(
                    {"B": Interval.open(lo, lo + 5_000),
                     "C": Interval.open(lo, lo + 20_000)},
                    ["D"], conjunctive=False,
                )
        for mapset in sw.sets.values():
            for cmap in mapset.maps.values():
                cmap.check_invariants()
