"""RWLock semantics and the LockRegistry's structure bindings."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ServerError
from repro.server.locks import LockRegistry, RWLock


def test_readers_share():
    lock = RWLock("t")
    entered = threading.Barrier(3, timeout=5)

    def reader():
        with lock.read():
            entered.wait()  # all three inside the read section at once

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert not any(t.is_alive() for t in threads)
    assert lock.read_acquires == 3


def test_write_excludes_readers_and_writers():
    lock = RWLock("t")
    order: list[str] = []
    ready = threading.Event()

    def writer():
        with lock.write():
            ready.set()
            time.sleep(0.05)
            order.append("writer-done")

    def reader():
        ready.wait(timeout=5)
        with lock.read():
            order.append("reader")

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start()
    r.start()
    w.join(timeout=5)
    r.join(timeout=5)
    assert order == ["writer-done", "reader"]


def test_write_reentrant_and_read_passthrough():
    lock = RWLock("t")
    with lock.write():
        with lock.write():  # re-entering our own write section is fine
            with lock.read():  # so is reading while owning the write side
                pass
    # Fully released: another thread can take the write side immediately.
    assert lock.acquire_write(timeout=1)
    lock.release_write()


def test_upgrade_rejected():
    lock = RWLock("t")
    with lock.read():
        with pytest.raises(ServerError, match="upgrade"):
            lock.acquire_write()


def test_writer_preference_queues_new_readers():
    lock = RWLock("t")
    first_reading = threading.Event()
    writer_waiting = threading.Event()
    release_first = threading.Event()
    late_reader_got = []

    def first_reader():
        with lock.read():
            first_reading.set()
            release_first.wait(timeout=5)

    def writer():
        writer_waiting.set()
        with lock.write():
            pass

    r1 = threading.Thread(target=first_reader)
    r1.start()
    first_reading.wait(timeout=5)
    w = threading.Thread(target=writer)
    w.start()
    writer_waiting.wait(timeout=5)
    time.sleep(0.05)  # let the writer reach its wait loop
    # A new reader must queue behind the waiting writer: its timed attempt
    # fails while the first reader still blocks the writer.
    late_reader_got.append(lock.acquire_read(timeout=0.05))
    release_first.set()
    r1.join(timeout=5)
    w.join(timeout=5)
    assert late_reader_got == [False]
    # Once the writer is through, readers proceed again.
    assert lock.acquire_read(timeout=1)
    lock.release_read()


def test_try_read_skips_busy_structure():
    lock = RWLock("t")
    holding = threading.Event()
    release = threading.Event()

    def writer():
        with lock.write():
            holding.set()
            release.wait(timeout=5)

    w = threading.Thread(target=writer)
    w.start()
    holding.wait(timeout=5)
    with lock.try_read(deadline=0.02) as got:
        assert got is False
    assert lock.read_skips == 1
    release.set()
    w.join(timeout=5)
    with lock.try_read(deadline=0.02) as got:
        assert got is True


def test_release_errors():
    lock = RWLock("t")
    with pytest.raises(ServerError, match="release_read"):
        lock.release_read()
    with pytest.raises(ServerError, match="non-owner"):
        lock.release_write()


def test_guard_timeout_raises():
    lock = RWLock("t")
    holding = threading.Event()
    release = threading.Event()

    def writer():
        with lock.write():
            holding.set()
            release.wait(timeout=5)

    w = threading.Thread(target=writer)
    w.start()
    holding.wait(timeout=5)
    with pytest.raises(ServerError, match="timed out"):
        with lock.read(timeout=0.02):
            pass
    release.set()
    w.join(timeout=5)


def test_registry_keys_and_bindings():
    registry = LockRegistry()
    assert registry.lock_for("R") is registry.lock_for("R")
    assert registry.lock_for("R") is not registry.lock_for("R", "A", 0)

    obj = np.arange(4)
    lock = registry.lock_for("R")
    assert registry.lock_of(obj) is None
    registry.bind(obj, lock)
    assert registry.lock_of(obj) is lock

    # Unbound structures always proceed under the sweep guard.
    with registry.structure_guard(object()) as proceed:
        assert proceed is True
    with registry.structure_guard(obj) as proceed:
        assert proceed is True


def test_registry_binding_is_weak():
    registry = LockRegistry()
    lock = registry.lock_for("R")

    class Structure:
        pass

    obj = Structure()
    registry.bind(obj, lock)
    assert registry.lock_of(obj) is lock
    del obj
    import gc

    gc.collect()
    assert registry._by_obj == {}


def test_registry_guard_honors_busy_lock():
    registry = LockRegistry()
    lock = registry.lock_for("R")

    class Structure:
        pass

    obj = Structure()
    registry.bind(obj, lock)
    holding = threading.Event()
    release = threading.Event()

    def writer():
        with lock.write():
            holding.set()
            release.wait(timeout=5)

    w = threading.Thread(target=writer)
    w.start()
    holding.wait(timeout=5)
    with registry.structure_guard(obj) as proceed:
        assert proceed is False  # busy under another thread's write lock
    release.set()
    w.join(timeout=5)
    stats = {s["name"]: s for s in registry.stats()}
    assert stats["R"]["read_skips"] == 1
    assert stats["R"]["write_acquires"] == 1


def test_writer_preference_bounds_starvation():
    """A writer arriving under a continuous reader stream gets through:
    once it queues, fresh read attempts wait rather than pile in."""
    lock = RWLock("t")
    stop = threading.Event()
    wrote = threading.Event()

    def reader_stream():
        while not stop.is_set():
            with lock.read():
                time.sleep(0.001)

    readers = [threading.Thread(target=reader_stream) for _ in range(4)]
    for t in readers:
        t.start()
    try:
        time.sleep(0.02)  # the stream is saturating the read side

        def writer():
            with lock.write():
                wrote.set()

        w = threading.Thread(target=writer)
        w.start()
        assert wrote.wait(timeout=5), "writer starved by the reader stream"
        w.join(timeout=5)
    finally:
        stop.set()
        for t in readers:
            t.join(timeout=5)
    assert not any(t.is_alive() for t in readers)
    assert lock.write_acquires == 1


def test_racesan_reports_rwlock_order_cycle(_racesan):
    """Opposite table-lock acquisition orders across threads show up in
    RaceSan's lock-order graph as a cycle with both acquisition stacks."""
    from repro.analysis.racesan import RaceSan

    if _racesan is not None:  # don't feed the deliberate cycle to the
        _racesan.deactivate()  # suite-wide --racesan detector
    registry = LockRegistry()
    r_lock = registry.lock_for("R")
    s_lock = registry.lock_for("S")
    with RaceSan(strict=False).activated() as rs:
        with r_lock.read():
            with s_lock.read():
                pass

        def inverted():
            with s_lock.write():
                with r_lock.write():
                    pass

        t = threading.Thread(target=inverted)
        t.start()
        t.join(timeout=5)
        assert not t.is_alive()
    cycles = [v for v in rs.violations if v.kind == "lock-order-cycle"]
    assert len(cycles) == 1
    assert "R" in cycles[0].subject and "S" in cycles[0].subject
    edges = rs.order_edges()
    assert ("R", "S") in edges and ("S", "R") in edges
