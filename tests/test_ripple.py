"""The vectorized Ripple merge."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.cracking.crack import crack_into
from repro.cracking.ripple import (
    _piece_ids,
    delete_positions,
    locate_deletions,
    merge_insertions,
)


def cracked_state(rng, n=400, cracks=4):
    values = rng.integers(0, 1000, size=n).astype(np.int64)
    head = values.copy()
    keys = np.arange(n, dtype=np.int64)
    index = CrackerIndex()
    for _ in range(cracks):
        lo = int(rng.integers(0, 800))
        crack_into(index, head, [keys], Interval.open(lo, lo + 150))
    return head, keys, index


class TestPieceIds:
    def test_empty_index_single_piece(self):
        index = CrackerIndex()
        ids = _piece_ids(index, np.array([1, 50, 999]))
        assert ids.tolist() == [0, 0, 0]

    def test_values_route_to_correct_piece(self, rng):
        head, keys, index = cracked_state(rng)
        probes = np.array([0, 100, 500, 999])
        ids = _piece_ids(index, probes)
        pieces = list(index.pieces(len(head)))
        for probe, pid in zip(probes, ids):
            piece = pieces[pid]
            if piece.lo_bound is not None:
                assert not piece.lo_bound.below_mask(np.array([probe]))[0]
            if piece.hi_bound is not None:
                assert piece.hi_bound.below_mask(np.array([probe]))[0]


class TestMergeInsertions:
    def test_preserves_piece_invariants(self, rng):
        head, keys, index = cracked_state(rng)
        ins_vals = rng.integers(0, 1000, size=40).astype(np.int64)
        ins_keys = np.arange(10_000, 10_040, dtype=np.int64)
        head, tails = merge_insertions(index, head, [keys], ins_vals, [ins_keys])
        keys = tails[0]
        assert len(head) == 440
        index.validate(len(head))
        for piece in index.pieces(len(head)):
            seg = head[piece.lo_pos:piece.hi_pos]
            if piece.lo_bound is not None and len(seg):
                assert not piece.lo_bound.below_mask(seg).any()
            if piece.hi_bound is not None and len(seg):
                assert piece.hi_bound.below_mask(seg).all()

    def test_deterministic_placement(self, rng):
        head1, keys1, index1 = cracked_state(rng)
        rng2 = np.random.default_rng(1234)
        head2, keys2, index2 = cracked_state(rng2)
        assert np.array_equal(head1, head2)
        ins_vals = np.array([5, 500, 995, 500], dtype=np.int64)
        ins_keys = np.array([1000, 1001, 1002, 1003], dtype=np.int64)
        h1, t1 = merge_insertions(index1, head1, [keys1], ins_vals, [ins_keys])
        h2, t2 = merge_insertions(index2, head2, [keys2], ins_vals, [ins_keys])
        assert np.array_equal(h1, h2)
        assert np.array_equal(t1[0], t2[0])

    def test_empty_batch_noop(self, rng):
        head, keys, index = cracked_state(rng)
        h, t = merge_insertions(index, head, [keys],
                                np.empty(0, np.int64), [np.empty(0, np.int64)])
        assert h is head and t[0] is keys


class TestDeletions:
    def test_locate_and_delete(self, rng):
        head, keys, index = cracked_state(rng)
        victims = rng.choice(len(head), size=20, replace=False).astype(np.int64)
        victim_keys = keys[victims].copy()
        victim_values = head[victims].copy()
        positions = locate_deletions(index, head, keys, victim_values, victim_keys)
        assert np.array_equal(np.sort(keys[positions]), np.sort(victim_keys))
        head, tails = delete_positions(index, head, [keys], positions)
        keys = tails[0]
        assert len(head) == 380
        assert not np.isin(victim_keys, keys).any()
        index.validate(len(head))

    def test_delete_keeps_piece_invariants(self, rng):
        head, keys, index = cracked_state(rng)
        positions = np.arange(0, len(head), 10, dtype=np.int64)
        head, tails = delete_positions(index, head, [keys], positions)
        for piece in index.pieces(len(head)):
            seg = head[piece.lo_pos:piece.hi_pos]
            if piece.lo_bound is not None and len(seg):
                assert not piece.lo_bound.below_mask(seg).any()
            if piece.hi_bound is not None and len(seg):
                assert piece.hi_bound.below_mask(seg).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 9999), batch=st.integers(1, 60))
def test_merge_then_select_matches_oracle(seed, batch):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 500, size=200).astype(np.int64)
    head = values.copy()
    keys = np.arange(200, dtype=np.int64)
    index = CrackerIndex()
    crack_into(index, head, [keys], Interval.open(100, 300))
    ins_vals = rng.integers(0, 500, size=batch).astype(np.int64)
    ins_keys = np.arange(1000, 1000 + batch, dtype=np.int64)
    head, tails = merge_insertions(index, head, [keys], ins_vals, [ins_keys])
    keys = tails[0]
    iv = Interval.open(100, 300)
    lo, hi = crack_into(index, head, [keys], iv)
    got = sorted(keys[lo:hi].tolist())
    all_vals = np.concatenate([values, ins_vals])
    all_keys = np.concatenate([np.arange(200), ins_keys])
    expected = sorted(all_keys[iv.mask(all_vals)].tolist())
    assert got == expected
