"""Counters, frames, memory model, phase timers."""

import time

import pytest

from repro.stats.counters import AccessStats, StatsRecorder
from repro.stats.memory_model import MemoryModel
from repro.stats.timing import PhaseTimer, Timer


class TestAccessStats:
    def test_random_classification_by_region(self):
        stats = AccessStats()
        stats.touch_random(10, region_size=100, cache_elements=1000)
        stats.touch_random(10, region_size=10_000, cache_elements=1000)
        assert stats.clustered_random == 10
        assert stats.scattered_random == 10

    def test_add(self):
        a = AccessStats(sequential=5, cracks=1)
        b = AccessStats(sequential=3, writes=2)
        c = a + b
        assert c.sequential == 8
        assert c.writes == 2
        assert c.cracks == 1

    def test_total(self):
        stats = AccessStats(sequential=1, clustered_random=2, scattered_random=3, writes=4)
        assert stats.total_touches == 10


class TestRecorderFrames:
    def test_nested_frames_both_accumulate(self):
        rec = StatsRecorder()
        with rec.frame() as outer:
            rec.sequential(5)
            with rec.frame() as inner:
                rec.sequential(3)
        assert inner.sequential == 3
        assert outer.sequential == 8
        assert rec.root.sequential == 8

    def test_event_counting(self):
        rec = StatsRecorder()
        rec.event("cracks", 2)
        assert rec.root.cracks == 2

    def test_ordered_is_bounded_by_region(self):
        rec = StatsRecorder()
        rec.ordered(1000, region_size=100)
        assert rec.root.sequential == 100
        rec.reset()
        rec.ordered(2, region_size=10_000)
        assert rec.root.sequential == 16  # one line (8 cells) per lookup

    def test_classification_uses_recorder_cache(self):
        rec = StatsRecorder(cache_elements=50)
        rec.random(5, region_size=60)
        assert rec.root.scattered_random == 5


class TestMemoryModel:
    def test_pricing_monotone(self):
        model = MemoryModel()
        cheap = AccessStats(sequential=100)
        pricey = AccessStats(scattered_random=100)
        assert model.cost_ns(pricey) > model.cost_ns(cheap)

    def test_scattered_much_pricier_than_clustered(self):
        model = MemoryModel()
        clustered = AccessStats(clustered_random=1000)
        scattered = AccessStats(scattered_random=1000)
        assert model.cost_ns(scattered) > 5 * model.cost_ns(clustered)

    def test_units(self):
        model = MemoryModel()
        stats = AccessStats(sequential=10**6)
        assert model.cost_ms(stats) == pytest.approx(model.cost_ns(stats) / 1e6)
        assert model.cost_seconds(stats) == pytest.approx(model.cost_ns(stats) / 1e9)

    def test_cache_elements(self):
        model = MemoryModel(cache_bytes=1024, element_bytes=8)
        assert model.cache_elements == 128


class TestTimers:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert t.seconds >= 0.002

    def test_phase_timer_no_double_count(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            time.sleep(0.002)
            with timer.phase("inner"):
                time.sleep(0.002)
        total_wall = timer.get("outer") + timer.get("inner")
        assert timer.total == pytest.approx(total_wall)
        assert timer.get("inner") >= 0.002
        # outer excludes inner's time
        assert timer.get("outer") < timer.total

    def test_phase_timer_merge(self):
        a = PhaseTimer()
        with a.phase("x"):
            pass
        b = PhaseTimer()
        with b.phase("x"):
            pass
        a.merge(b)
        assert a.get("x") >= b.get("x")
