"""Future-work extensions: piece-exploiting aggregates, cracker joins,
row-store cracking."""

import numpy as np
import pytest

from repro.core.aggregates import head_max, head_min, selection_max, selection_min
from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.engine.cracker_join import cracker_join, common_refinement, monolithic_join
from repro.errors import CrackError
from repro.extensions.row_cracking import RowCracker
from repro.storage.bat import BAT
from repro.storage.relation import Relation


class TestPieceAggregates:
    @pytest.fixture
    def cracker(self, rng):
        arrays = {"A": rng.integers(0, 100_000, size=5_000).astype(np.int64),
                  "B": rng.integers(0, 100_000, size=5_000).astype(np.int64)}
        self.arrays = arrays
        return SidewaysCracker(Relation.from_arrays("R", arrays))

    def test_selection_max_matches_oracle(self, cracker, rng):
        for _ in range(15):
            lo = int(rng.integers(0, 80_000))
            iv = Interval.open(lo, lo + 15_000)
            mask = iv.mask(self.arrays["A"])
            if not mask.any():
                continue
            assert selection_max(cracker, "A", iv) == float(self.arrays["A"][mask].max())
            assert selection_min(cracker, "A", iv) == float(self.arrays["A"][mask].min())

    def test_piece_read_is_smaller_than_area(self, cracker, rng):
        # After many cracks, the last piece inside w is much smaller than w.
        iv = Interval.open(10_000, 90_000)
        for _ in range(30):
            lo = int(rng.integers(0, 80_000))
            cracker.set_for("A").select("@key", Interval.open(lo, lo + 5_000))
        mapset = cracker.set_for("A")
        cmap, lo, hi = mapset.select("@key", iv)
        from repro.stats.counters import StatsRecorder

        rec = StatsRecorder()
        head_max(cmap, lo, hi, rec)
        assert rec.root.sequential < (hi - lo) / 2

    def test_empty_area_is_nan(self, cracker):
        iv = Interval.open(200_000, 300_000)
        assert np.isnan(selection_max(cracker, "A", iv))
        assert np.isnan(selection_min(cracker, "A", iv))

    def test_head_min_first_piece(self, rng):
        from repro.core.mapset import MapSet

        values = rng.integers(0, 1_000, size=500).astype(np.int64)
        rel = Relation.from_arrays("R", {"A": values})
        mapset = MapSet(rel, "A")
        iv = Interval.open(100, 900)
        cmap, lo, hi = mapset.select("@key", iv)
        mask = iv.mask(values)
        assert head_min(cmap, lo, hi) == float(values[mask].min())


class TestCrackerJoin:
    def _columns(self, rng, n=3_000, domain=2_000):
        left = CrackerColumn(BAT.from_values(
            rng.integers(0, domain, size=n).astype(np.int64)))
        right = CrackerColumn(BAT.from_values(
            rng.integers(0, domain, size=n).astype(np.int64)))
        return left, right

    def test_matches_monolithic(self, rng):
        left, right = self._columns(rng)
        for _ in range(10):
            lo = int(rng.integers(0, 1_800))
            left.select(Interval.open(lo, lo + 200))
            right.select(Interval.open(lo // 2, lo // 2 + 300))
        got = sorted(zip(*(k.tolist() for k in cracker_join(left, right))))
        want = sorted(zip(*(k.tolist() for k in monolithic_join(left, right))))
        assert got == want

    def test_common_refinement_aligns_indices(self, rng):
        left, right = self._columns(rng)
        left.select(Interval.open(100, 700))
        right.select(Interval.open(400, 1_500))
        common_refinement(left, right)
        assert left.index.bounds() == right.index.bounds()
        left.check_invariants()
        right.check_invariants()

    def test_uncracked_inputs(self, rng):
        left, right = self._columns(rng, n=500)
        got = sorted(zip(*(k.tolist() for k in cracker_join(left, right))))
        want = sorted(zip(*(k.tolist() for k in monolithic_join(left, right))))
        assert got == want

    def test_empty_result(self, rng):
        left = CrackerColumn(BAT.from_values(np.array([1, 2, 3], dtype=np.int64)))
        right = CrackerColumn(BAT.from_values(np.array([10, 11], dtype=np.int64)))
        lk, rk = cracker_join(left, right)
        assert len(lk) == len(rk) == 0


class TestRowCracking:
    @pytest.fixture
    def setup(self, rng):
        arrays = {c: rng.integers(0, 50_000, size=3_000).astype(np.int64)
                  for c in "ABC"}
        rel = Relation.from_arrays("R", arrays)
        return arrays, RowCracker(rel, "A")

    def test_select_matches_oracle(self, setup, rng):
        arrays, cracker = setup
        for _ in range(15):
            lo = int(rng.integers(0, 40_000))
            iv = Interval.open(lo, lo + 8_000)
            result = cracker.select(iv, ["B", "C"])
            mask = iv.mask(arrays["A"])
            got = sorted(zip(result["B"].tolist(), result["C"].tolist()))
            want = sorted(zip(arrays["B"][mask].tolist(), arrays["C"][mask].tolist()))
            assert got == want
        cracker.check_invariants()

    def test_rows_stay_intact(self, setup, rng):
        arrays, cracker = setup
        for _ in range(10):
            lo = int(rng.integers(0, 40_000))
            cracker.crack(Interval.open(lo, lo + 5_000))
        # Every row still pairs its original attributes (keys witness it).
        keys = cracker.rows["@key"]
        for attr in "ABC":
            assert np.array_equal(cracker.rows[attr], arrays[attr][keys])

    def test_select_keys(self, setup, rng):
        arrays, cracker = setup
        iv = Interval.open(10_000, 20_000)
        keys = cracker.select_keys(iv)
        assert np.array_equal(np.sort(keys), np.flatnonzero(iv.mask(arrays["A"])))

    def test_unknown_projection_rejected(self, setup):
        _, cracker = setup
        with pytest.raises(CrackError):
            cracker.select(Interval.open(1, 2), ["nope"])

    def test_point_and_one_sided(self, setup, rng):
        arrays, cracker = setup
        target = int(arrays["A"][0])
        result = cracker.select(Interval.point(target), ["B"])
        mask = arrays["A"] == target
        assert sorted(result["B"].tolist()) == sorted(arrays["B"][mask].tolist())
        result = cracker.select(Interval.at_least(45_000), ["C"])
        assert sorted(result["C"].tolist()) == sorted(
            arrays["C"][arrays["A"] >= 45_000].tolist()
        )
