"""Extra TPC-H coverage: the row-store mode, parameter generators, and the
exp12/exp13 driver plumbing."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.query import Predicate
from repro.cracking.bounds import Interval
from repro.workloads.tpch import ModeExecutor, ParamGen, QUERIES, generate
from repro.workloads.tpch.datagen import BRANDS, NATIONS, SEGMENTS, SHIPMODES, TYPES
from repro.workloads.tpch.dates import d
from repro.workloads.tpch.queries import results_equal


@pytest.fixture(scope="module")
def data():
    return generate(scale_factor=0.004, seed=21)


class TestRowstoreMode:
    def test_rowstore_presorted_agrees(self, data):
        executors = {}
        for mode in ("monetdb", "rowstore_presorted"):
            db = Database()
            data.load_into(db)
            executors[mode] = ModeExecutor(db, mode)
        params_gen = ParamGen(seed=44)
        for query_id in (1, 6, 12, 14):
            params = getattr(params_gen, f"q{query_id}")()
            a = QUERIES[query_id](executors["monetdb"], params)
            b = QUERIES[query_id](executors["rowstore_presorted"], params)
            assert results_equal(a, b), query_id

    def test_rowstore_pays_full_width(self, data):
        db = Database()
        data.load_into(db)
        narrow = ModeExecutor(db, "presorted")
        db2 = Database()
        data.load_into(db2)
        wide = ModeExecutor(db2, "rowstore_presorted")
        iv = Interval.half_open(d(1994, 1, 1), d(1995, 1, 1))
        preds = [Predicate("l_shipdate", iv)]
        with narrow.recorder.frame() as narrow_stats:
            narrow.select("lineitem", preds, ["l_quantity"])
        with wide.recorder.frame() as wide_stats:
            wide.select("lineitem", preds, ["l_quantity"])
        assert wide_stats.sequential > narrow_stats.sequential


class TestParamGen:
    def test_q1_delta_range(self):
        gen = ParamGen(seed=1)
        for _ in range(50):
            assert 60 <= gen.q1()["delta"] <= 120

    def test_q3_vocabulary(self):
        gen = ParamGen(seed=2)
        for _ in range(20):
            params = gen.q3()
            assert params["segment"] in SEGMENTS
            assert d(1995, 3, 1) <= params["date"] <= d(1995, 3, 31)

    def test_q6_ranges(self):
        gen = ParamGen(seed=3)
        for _ in range(30):
            params = gen.q6()
            assert 0.02 <= params["discount"] <= 0.09
            assert params["quantity"] in (24, 25)
            assert d(1993) <= params["date"] <= d(1997)

    def test_q7_distinct_nations(self):
        gen = ParamGen(seed=4)
        for _ in range(50):
            params = gen.q7()
            assert params["nation1"] != params["nation2"]
            assert 0 <= params["nation2"] < len(NATIONS)

    def test_q8_region_matches_nation(self):
        gen = ParamGen(seed=5)
        from repro.workloads.tpch.datagen import REGIONS

        for _ in range(20):
            params = gen.q8()
            nation_region = NATIONS[params["nation"]][1]
            assert params["region"] == REGIONS[nation_region]
            assert params["type"] in TYPES

    def test_q12_distinct_modes(self):
        gen = ParamGen(seed=6)
        for _ in range(50):
            params = gen.q12()
            assert params["mode1"] != params["mode2"]
            assert {params["mode1"], params["mode2"]} <= set(SHIPMODES)

    def test_q19_quantity_bands(self):
        gen = ParamGen(seed=7)
        for _ in range(30):
            params = gen.q19()
            assert 1 <= params["quantity1"] <= 10
            assert 10 <= params["quantity2"] <= 20
            assert 20 <= params["quantity3"] <= 30
            assert params["brand1"] in BRANDS

    def test_q20_color_from_vocab(self):
        from repro.workloads.tpch.datagen import COLORS

        gen = ParamGen(seed=8)
        for _ in range(20):
            assert gen.q20()["color"] in COLORS


class TestQueryContent:
    def test_q20_finds_suppliers_somewhere(self, data):
        """Across many parameter draws, Q20 must return results sometimes."""
        db = Database()
        data.load_into(db)
        ex = ModeExecutor(db, "monetdb")
        gen = ParamGen(seed=9)
        total = 0
        for _ in range(12):
            total += len(QUERIES[20](ex, gen.q20()))
        assert total > 0

    def test_q19_revenue_positive_somewhere(self, data):
        db = Database()
        data.load_into(db)
        ex = ModeExecutor(db, "monetdb")
        gen = ParamGen(seed=10)
        revenues = [QUERIES[19](ex, gen.q19())[0][0] for _ in range(10)]
        assert any(r > 0 for r in revenues)

    def test_q12_counts_sum_to_qualifiers(self, data):
        db = Database()
        data.load_into(db)
        ex = ModeExecutor(db, "monetdb")
        params = ParamGen(seed=11).q12()
        rows = QUERIES[12](ex, params)
        assert all(high >= 0 and low >= 0 for _, high, low in rows)
        assert len(rows) <= 2


class TestBenchDrivers:
    def test_exp12_driver_structure(self):
        from repro.bench import exp12_tpch

        result = exp12_tpch.run(scale=0.1, variations=2)
        assert set(result["series_ms"]) == set(QUERIES)
        for query_id, summary in result["summary_wallclock"].items():
            assert set(summary) == {"SiCr", "PrMo"}
        assert all(v >= 0 for v in result["presort_seconds"].values())
