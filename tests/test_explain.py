"""Plan introspection via Engine.explain."""

import pytest

from repro.cracking.bounds import Interval
from repro.engine import (
    PlainEngine,
    Predicate,
    PresortedEngine,
    Query,
    SelectionCrackingEngine,
    SidewaysEngine,
)


@pytest.fixture
def query():
    return Query(
        "R",
        predicates=(
            Predicate("A", Interval.open(100, 50_000)),
            Predicate("B", Interval.open(0, 1_000)),
        ),
        projections=("C",),
        aggregates=(("max", "C"),),
    )


def test_explain_mentions_structures(db, query):
    expectations = {
        PlainEngine(db): "full column scan",
        PresortedEngine(db): "binary search",
        SelectionCrackingEngine(db): "cracker column",
        SidewaysEngine(db): "cracker maps",
        SidewaysEngine(db, partial=True): "chunk map",
    }
    for engine, needle in expectations.items():
        plan = engine.explain(query)
        assert needle in plan, engine.name
        assert "reconstruct [C]" in plan
        assert "aggregate max(C)" in plan


def test_explain_orders_by_selectivity(db, query):
    plan = PlainEngine(db).explain(query)
    lines = plan.splitlines()
    # B (sel ~1%) must be evaluated before A (sel ~50%).
    assert "select B" in lines[1]
    assert "and-refine A" in lines[2]


def test_explain_disjunction(db):
    query = Query(
        "R",
        predicates=(
            Predicate("A", Interval.open(1, 10)),
            Predicate("B", Interval.open(1, 10)),
        ),
        projections=("C",),
        conjunctive=False,
    )
    plan = PlainEngine(db).explain(query)
    assert "or-refine" in plan


def test_explain_runs_before_any_query(db, query):
    # explain must not mutate engine state or require prior execution.
    engine = SidewaysEngine(db)
    before = engine.explain(query)
    engine.run(query)
    after = engine.explain(query)
    assert before.splitlines()[0] == after.splitlines()[0]
