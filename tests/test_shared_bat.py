"""SharedArray/SharedBAT: zero-copy views, ownership, unlink accounting."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import SchemaError, ServerError
from repro.storage.bat import BAT
from repro.storage.shared import (
    SEGMENT_PREFIX,
    SharedArray,
    SharedBAT,
    leaked_system_segments,
    live_segment_names,
)
from repro.storage.types import ColumnType


def test_shared_array_roundtrip(rng):
    values = rng.integers(0, 1000, size=500).astype(np.int64)
    arr = SharedArray.create(values)
    try:
        assert np.array_equal(arr.view, values)
        assert arr.owner
        assert len(arr) == 500
        assert arr.shm.name.startswith(f"{SEGMENT_PREFIX}_{os.getpid()}_")
    finally:
        arr.close()


def test_shared_array_attach_sees_owner_writes(rng):
    owner = SharedArray.zeros(64, np.int64)
    try:
        attached = SharedArray.attach(owner.meta)
        try:
            owner.view[:] = np.arange(64)
            assert np.array_equal(attached.view, np.arange(64))
            assert not attached.owner
        finally:
            attached.close()
        # The owner's segment survives an attachment close.
        assert np.array_equal(owner.view, np.arange(64))
    finally:
        owner.close()


def test_close_is_idempotent_and_unlinks():
    arr = SharedArray.zeros(8)
    name = arr.shm.name
    assert name in live_segment_names()
    arr.close()
    arr.close()
    assert name not in live_segment_names()
    assert not leaked_system_segments()


def test_registry_tracks_attachments():
    owner = SharedArray.zeros(8)
    attached = SharedArray.attach(owner.meta)
    assert owner.shm.name in live_segment_names()
    attached.close()
    owner.close()
    assert owner.shm.name not in live_segment_names()


def test_shared_bat_roundtrip(rng):
    values = rng.integers(0, 1000, size=300).astype(np.int64)
    bat = BAT(values, ColumnType.INT, None, None)
    shared = SharedBAT.from_bat(bat)
    try:
        view = shared.as_bat()
        assert np.array_equal(view.values, values)
        assert np.array_equal(view.materialized_keys(), np.arange(300))
        assert shared.nbytes == 2 * 300 * 8
    finally:
        shared.close()


def test_shared_bat_rejects_dict_columns():
    codes = np.array([0, 1, 0], dtype=np.int32)
    bat = BAT(codes, ColumnType.DICT, None, ["x", "y"])
    with pytest.raises(SchemaError):
        SharedBAT.from_bat(bat)


def test_shared_bat_refcount():
    values = np.arange(10, dtype=np.int64)
    shared = SharedBAT.from_bat(BAT(values, ColumnType.INT, None, None))
    shared.retain()
    shared.release()
    assert not shared.closed
    shared.release()  # last hold
    assert shared.closed
    with pytest.raises(ServerError):
        shared.as_bat()
    with pytest.raises(ServerError):
        shared.retain()
    shared.close()  # idempotent after release-to-zero
    assert not leaked_system_segments()


def test_shared_bat_unconditional_close_overrides_holds():
    values = np.arange(10, dtype=np.int64)
    shared = SharedBAT.from_bat(BAT(values, ColumnType.INT, None, None))
    shared.retain()
    shared.close()
    assert shared.closed
    assert not leaked_system_segments()


def _child_sum(meta, queue):
    attached = SharedBAT.attach(meta)
    try:
        queue.put(int(attached.as_bat().values.sum()))
    finally:
        attached.close()


def test_cross_process_attach_is_zero_copy_consistent(rng):
    values = rng.integers(0, 100, size=1000).astype(np.int64)
    shared = SharedBAT.from_bat(BAT(values, ColumnType.INT, None, None))
    try:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_sum, args=(shared.meta(), queue))
        proc.start()
        got = queue.get(timeout=30)
        proc.join(timeout=30)
        assert got == int(values.sum())
    finally:
        shared.close()
    assert not leaked_system_segments()


def test_owner_unlink_survives_killed_attacher(rng):
    """A SIGKILLed attaching process cannot leak the owner's segment."""
    shared = SharedArray.zeros(128, np.int64)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )

    proc = ctx.Process(target=_attach_and_hang, args=(shared.meta,))
    proc.start()
    proc.kill()
    proc.join(timeout=30)
    shared.close()
    assert not leaked_system_segments()


def _attach_and_hang(meta):
    import time

    attached = SharedArray.attach(meta)
    time.sleep(60)
    attached.close()
