"""Repo-contract AST lint: every rule fires, allowlists hold, tree is clean."""

from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_file, lint_paths, main

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def write(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def rules_in(path: Path) -> set[str]:
    return {violation.rule for violation in lint_file(path)}


# -- each rule fires -------------------------------------------------------------


def test_payload_mutation_detected(tmp_path):
    path = write(tmp_path, "core/thing.py", (
        "def f(head, tails, lo, hi):\n"
        "    head[lo:hi] = 0\n"
        "    tails[0][lo:hi] = 1\n"
        "    obj.keys[3] += 1\n"
    ))
    violations = lint_file(path)
    assert [v.rule for v in violations] == ["payload-mutation"] * 3
    assert violations[0].line == 2


def test_payload_mutation_allowed_in_kernels(tmp_path):
    source = "def f(head, lo, hi):\n    head[lo:hi] = 0\n"
    assert rules_in(write(tmp_path, "cracking/kernels.py", source)) == set()
    assert rules_in(write(tmp_path, "cracking/crack.py", source)) == set()
    assert rules_in(write(tmp_path, "cracking/other.py", source)) == {
        "payload-mutation"
    }


def test_payload_rebinding_is_fine(tmp_path):
    path = write(tmp_path, "core/ok.py", (
        "def f(index, head, keys, interval, recorder):\n"
        "    head, tails = crack(index, head, [keys], interval, recorder)\n"
        "    keys = tails[0]\n"
        "    return head, keys\n"
    ))
    assert rules_in(path) == set()


def test_unseeded_random_detected(tmp_path):
    path = write(tmp_path, "bench/bad_rng.py", (
        "import numpy as xp\n"
        "a = xp.random.rand(5)\n"
        "b = xp.random.default_rng()\n"
        "c = xp.random.default_rng(42)\n"       # seeded: fine
        "d = xp.random.default_rng(seed=42)\n"  # seeded: fine
    ))
    violations = lint_file(path)
    assert [v.rule for v in violations] == ["unseeded-random"] * 2
    assert {v.line for v in violations} == {2, 3}


def test_counter_mutation_detected(tmp_path):
    source = (
        "def f(stats):\n"
        "    stats.sequential += 5\n"
        "    stats.cracks = 1\n"
    )
    path = write(tmp_path, "engine/bad_counters.py", source)
    assert [v.rule for v in lint_file(path)] == ["counter-mutation"] * 2
    assert rules_in(write(tmp_path, "stats/counters.py", source)) == set()


def test_tape_append_detected(tmp_path):
    source = (
        "def f(tape, entry):\n"
        "    tape.entries.append(entry)\n"
        "    tape.entries[0] = entry\n"
    )
    path = write(tmp_path, "core/bad_tape.py", source)
    assert [v.rule for v in lint_file(path)] == ["tape-append"] * 2
    assert rules_in(write(tmp_path, "core/tape.py", source)) == set()


def test_mutable_default_detected(tmp_path):
    path = write(tmp_path, "core/bad_defaults.py", (
        "def f(a, items=[], *, lookup=dict()):\n"
        "    return a\n"
        "def g(a, items=None, n=3, name='x'):\n"  # all fine
        "    return a\n"
    ))
    assert [v.rule for v in lint_file(path)] == ["mutable-default"] * 2


def test_bare_except_detected(tmp_path):
    path = write(tmp_path, "core/bad_except.py", (
        "try:\n"
        "    pass\n"
        "except:\n"
        "    pass\n"
        "try:\n"
        "    pass\n"
        "except ValueError:\n"  # typed: fine
        "    pass\n"
    ))
    assert [v.rule for v in lint_file(path)] == ["bare-except"]


def test_broad_except_detected(tmp_path):
    path = write(tmp_path, "core/bad_broad.py", (
        "try:\n"
        "    pass\n"
        "except Exception:\n"
        "    pass\n"
        "try:\n"
        "    pass\n"
        "except (ValueError, BaseException) as exc:\n"
        "    pass\n"
        "try:\n"
        "    pass\n"
        "except (KeyError, OSError):\n"  # typed: fine
        "    pass\n"
    ))
    assert [v.rule for v in lint_file(path)] == ["broad-except"] * 2


def test_syntax_error_reported_not_raised(tmp_path):
    path = write(tmp_path, "broken.py", "def f(:\n")
    violations = lint_file(path)
    assert violations and violations[0].rule == "parse-error"


def test_raw_lock_construction_detected(tmp_path):
    source = (
        "import threading\n"
        "from threading import RLock as _R\n"
        "def f():\n"
        "    a = threading.Lock()\n"
        "    b = threading.Semaphore(2)\n"
        "    c = _R()\n"
        "    d = threading.current_thread()\n"  # not a lock ctor: fine
    )
    path = write(tmp_path, "server/bad_locks.py", source)
    violations = [v for v in lint_file(path) if v.rule == "raw-lock-construction"]
    assert {v.line for v in violations} == {4, 5, 6}
    # The lock module and the race detector construct the primitives.
    assert rules_in(write(tmp_path, "server/locks.py", source)) == set()
    assert rules_in(write(tmp_path, "analysis/racesan.py", source)) == set()


def test_sleep_under_lock_detected(tmp_path):
    path = write(tmp_path, "server/bad_sleep.py", (
        "import time\n"
        "def f(self, lock):\n"
        "    with lock.read():\n"
        "        time.sleep(0.1)\n"
        "    with self._cache_mutex:\n"
        "        time.sleep(0.1)\n"
        "    time.sleep(0.1)\n"  # outside any lock: fine
    ))
    violations = [v for v in lint_file(path) if v.rule == "sleep-under-lock"]
    assert {v.line for v in violations} == {4, 6}


def test_sleep_alias_under_lock_detected(tmp_path):
    path = write(tmp_path, "server/bad_sleep2.py", (
        "from time import sleep\n"
        "def f(self, lock):\n"
        "    with lock.write():\n"
        "        sleep(0.1)\n"
    ))
    assert [v.rule for v in lint_file(path)] == ["sleep-under-lock"]


def test_sleep_under_non_lock_context_is_fine(tmp_path):
    path = write(tmp_path, "server/ok_sleep.py", (
        "import time\n"
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        time.sleep(0.1)\n"
        "        return fh.read()\n"
    ))
    assert rules_in(path) == set()


# -- driver ---------------------------------------------------------------------


def test_lint_paths_walks_directories(tmp_path):
    write(tmp_path, "pkg/a.py", "def f(x=[]):\n    return x\n")
    write(tmp_path, "pkg/sub/b.py", "try:\n    pass\nexcept:\n    pass\n")
    write(tmp_path, "pkg/c.txt", "head[0] = 1 (not python, ignored)\n")
    rules = {v.rule for v in lint_paths([str(tmp_path)])}
    assert rules == {"mutable-default", "bare-except"}


def test_main_exit_status(tmp_path, capsys):
    bad = write(tmp_path, "bad.py", "def f(x=[]):\n    return x\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "mutable-default" in out and "1 violation(s)" in out
    good = write(tmp_path, "good.py", "def f(x=None):\n    return x\n")
    assert main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out


def test_main_usage_error_exit_status(tmp_path, capsys):
    assert main([str(tmp_path / "nowhere.py")]) == 2
    err = capsys.readouterr().err
    assert "repro-lint: error" in err and "nowhere.py" in err


def test_allowlist_matches_path_component_boundaries(tmp_path):
    source = "def f(head, lo, hi):\n    head[lo:hi] = 0\n"
    # `./`-style relative prefixes and absolute paths both match...
    import os

    here = Path(os.path.relpath(write(tmp_path, "cracking/kernels.py", source)))
    assert rules_in(Path("./" + str(here))) == set()
    assert rules_in(tmp_path / "cracking" / "kernels.py") == set()
    # ...but a suffix that only matches mid-component must not.
    assert rules_in(write(tmp_path, "mycracking/kernels.py", source)) == {
        "payload-mutation"
    }


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


@pytest.mark.slow
def test_shipped_tree_is_clean(capsys):
    """The repo's own src/ passes its lint — the CI contract."""
    assert main([REPO_SRC]) == 0
    assert "clean" in capsys.readouterr().out
