"""Map sets: adaptive alignment, late creation, deletions via M_Akey,
full-map storage management."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapset import KEY_TAIL, FullMapStorage, MapSet
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation


def make_relation(rng, n=1_000):
    return Relation.from_arrays(
        "R", {c: rng.integers(0, 10_000, size=n).astype(np.int64) for c in "ABC"}
    )


class TestAlignment:
    def test_maps_used_together_are_aligned(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        for _ in range(10):
            lo = int(rng.integers(0, 8_000))
            iv = Interval.open(lo, lo + 1_500)
            map_b, lo_b, hi_b = mapset.select("B", iv)
            map_c, lo_c, hi_c = mapset.select("C", iv)
            assert (lo_b, hi_b) == (lo_c, hi_c)
            assert np.array_equal(map_b.head, map_c.head)

    def test_late_map_creation_aligns_with_existing(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        for _ in range(8):
            lo = int(rng.integers(0, 8_000))
            mapset.select("B", Interval.open(lo, lo + 1_000))
        # C's map is created now and must replay the whole tape.
        iv = Interval.open(2_000, 4_000)
        map_b, lo_b, hi_b = mapset.select("B", iv)
        map_c, lo_c, hi_c = mapset.select("C", iv)
        assert (lo_b, hi_b) == (lo_c, hi_c)
        assert np.array_equal(map_b.head, map_c.head)
        # Tuple-level alignment: same (A -> B, A -> C) pairing as the base.
        a, b, c = rel.values("A"), rel.values("B"), rel.values("C")
        expected = sorted(zip(b[iv.mask(a)].tolist(), c[iv.mask(a)].tolist()))
        got = sorted(zip(map_b.tail[lo_b:hi_b].tolist(), map_c.tail[lo_c:hi_c].tolist()))
        assert got == expected

    def test_alignment_distance(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.select("B", Interval.open(100, 500))
        mapset.get_map("C")
        assert mapset.alignment_distance("C") == len(mapset.tape)
        assert mapset.alignment_distance("B") == 0
        assert mapset.alignment_distance("missing") is None

    def test_cursor_never_past_tape(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        for _ in range(5):
            lo = int(rng.integers(0, 8_000))
            mapset.select("B", Interval.open(lo, lo + 500))
        assert mapset.maps["B"].cursor == len(mapset.tape)


class TestUpdates:
    def test_insert_flow(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.select("B", Interval.open(0, 5_000))
        new = {c: rng.integers(0, 10_000, size=20).astype(np.int64) for c in "ABC"}
        keys = np.arange(len(rel), len(rel) + 20, dtype=np.int64)
        rel.append_rows(new)
        mapset.add_insertions(new["A"], keys)
        iv = Interval.closed(0, 10_001)
        map_b, lo, hi = mapset.select("B", iv)
        assert hi - lo == len(rel)
        map_b.check_invariants()

    def test_delete_flow_via_key_map(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.select("B", Interval.closed(0, 10_001))
        victims = np.array([3, 17, 99], dtype=np.int64)
        mapset.add_deletions(rel.values("A")[victims], victims)
        map_b, lo, hi = mapset.select("B", Interval.closed(0, 10_001))
        assert hi - lo == len(rel) - 3
        # The key map exists and has applied the same deletions.
        assert mapset.has_map(KEY_TAIL)
        key_map = mapset.maps[KEY_TAIL]
        mapset.align(key_map)
        assert not np.isin(victims, key_map.tail).any()

    def test_pending_outside_range_not_merged(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.select("B", Interval.open(0, 1_000))
        new_a = np.array([9_999], dtype=np.int64)
        rel.append_rows({c: np.array([9_999]) for c in "ABC"})
        mapset.add_insertions(new_a, np.array([len(rel) - 1], dtype=np.int64))
        mapset.select("B", Interval.open(0, 1_000))
        assert mapset.pending.insertion_count == 1


class TestSnapshot:
    def test_excluded_keys_absent_from_new_maps(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.exclude_from_snapshot(np.array([0, 1, 2], dtype=np.int64))
        cmap = mapset.get_map(KEY_TAIL)
        assert not np.isin([0, 1, 2], cmap.tail).any()
        assert len(cmap) == len(rel) - 3

    def test_cannot_change_snapshot_after_maps_exist(self, rng):
        rel = make_relation(rng)
        mapset = MapSet(rel, "A")
        mapset.get_map("B")
        from repro.errors import AlignmentError

        with pytest.raises(AlignmentError):
            mapset.exclude_from_snapshot(np.array([0]))


class TestFullMapStorage:
    def test_eviction_drops_lfu(self, rng):
        rel = make_relation(rng)
        storage = FullMapStorage(budget_tuples=2 * len(rel))
        mapset = MapSet(rel, "A", storage=storage)
        hot = mapset.get_map("B")
        for _ in range(5):
            mapset.select("B", Interval.open(0, 5_000))
        mapset.get_map("C")
        assert storage.used_tuples == 2 * len(rel)
        # Creating a key map must evict the LFU map (C, 0 accesses).
        mapset.get_map(KEY_TAIL)
        assert not mapset.has_map("C")
        assert mapset.has_map("B")

    def test_pinned_maps_survive(self, rng):
        rel = make_relation(rng)
        storage = FullMapStorage(budget_tuples=2 * len(rel))
        mapset = MapSet(rel, "A", storage=storage)
        mapset.get_map("B")
        mapset.get_map("C")
        storage.pin({("A", "B"), ("A", "C")})
        mapset.get_map(KEY_TAIL)  # nothing evictable -> overshoot allowed
        assert mapset.has_map("B") and mapset.has_map("C")
        storage.unpin()

    def test_unlimited_budget_never_evicts(self, rng):
        rel = make_relation(rng)
        storage = FullMapStorage(budget_tuples=None)
        mapset = MapSet(rel, "A", storage=storage)
        for attr in ("B", "C", KEY_TAIL):
            mapset.get_map(attr)
        assert len(mapset.maps) == 3

    def test_recreated_map_realigns(self, rng):
        rel = make_relation(rng)
        storage = FullMapStorage(budget_tuples=None)
        mapset = MapSet(rel, "A", storage=storage)
        for _ in range(5):
            lo = int(rng.integers(0, 8_000))
            mapset.select("B", Interval.open(lo, lo + 1_000))
        mapset.drop_map("B")
        iv = Interval.open(1_000, 3_000)
        map_b, lo, hi = mapset.select("B", iv)
        a = rel.values("A")
        assert hi - lo == int(iv.mask(a).sum())


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 9_999),
    plan=st.lists(
        st.tuples(st.sampled_from(["B", "C"]), st.integers(0, 80)),
        min_size=2, max_size=15,
    ),
)
def test_alignment_is_permutation_identical(seed, plan):
    """Whatever interleaving of per-map selections happens, any two maps
    brought to the same tape position hold identical head permutations."""
    rng = np.random.default_rng(seed)
    rel = Relation.from_arrays(
        "R", {c: rng.integers(0, 100, size=150).astype(np.int64) for c in "ABC"}
    )
    mapset = MapSet(rel, "A")
    for attr, lo in plan:
        mapset.select(attr, Interval.open(lo, lo + 15))
    map_b = mapset.get_map("B")
    map_c = mapset.get_map("C")
    mapset.align(map_b)
    mapset.align(map_c)
    assert np.array_equal(map_b.head, map_c.head)
    base_pairs = sorted(zip(rel.values("B").tolist(), rel.values("C").tolist()))
    assert sorted(zip(map_b.tail.tolist(), map_c.tail.tolist())) == base_pairs
