"""Database persistence."""

import json

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import Database, PlainEngine, Predicate, Query, SidewaysEngine
from repro.errors import InjectedFault, PersistError, SchemaError
from repro.faults.plan import (
    PAYLOAD_SITES,
    SITES,
    FaultPlan,
    install_plan,
    uninstall_plan,
)
from repro.storage.persist import (
    _MANIFEST_KEY,
    _crc32,
    dumps,
    load_database,
    loads,
    save_database,
)


@pytest.fixture
def populated(rng):
    db = Database()
    db.create_table(
        "R",
        {
            "A": rng.integers(1, 10_000, size=1_000),
            "price": rng.uniform(0, 100, size=1_000),
            "tag": np.array([["x", "y"][i % 2] for i in range(1_000)]),
        },
    )
    db.delete("R", np.array([3, 7]))
    return db


class TestRoundTrip:
    def test_values_survive(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        restored = load_database(path)
        original = populated.table("R")
        copy = restored.table("R")
        for attr in original.attributes:
            assert np.array_equal(original.values(attr), copy.values(attr))

    def test_dictionary_survives(self, populated):
        restored = loads(dumps(populated))
        dictionary = restored.table("R").column("tag").dictionary
        assert dictionary.values == ("x", "y")

    def test_float_dtype_survives(self, populated):
        restored = loads(dumps(populated))
        assert restored.table("R").values("price").dtype == np.float64

    def test_tombstones_survive(self, populated):
        restored = loads(dumps(populated))
        assert restored.tombstones("R")[3]
        assert restored.tombstones("R")[7]
        assert restored.live_count("R") == 998

    def test_queries_agree_after_reload(self, populated):
        restored = loads(dumps(populated))
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 5_000)),),
            projections=("price",),
            aggregates=(("count", "price"),),
        )
        a = PlainEngine(populated).run(query)
        b = PlainEngine(restored).run(query)
        assert a.aggregates == b.aggregates

    def test_cracking_restarts_cold_but_correct(self, populated):
        engine = SidewaysEngine(populated)
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 5_000)),),
            projections=("price",),
        )
        warm = engine.run(query)
        restored = loads(dumps(populated))
        # Cracked state is not persisted: the restored side starts fresh.
        assert not restored._sideways
        cold_engine = SidewaysEngine(restored)
        cold = cold_engine.run(query)
        assert np.array_equal(np.sort(warm.columns["price"]),
                              np.sort(cold.columns["price"]))

    def test_multiple_tables(self, rng, tmp_path):
        db = Database()
        db.create_table("a", {"x": np.arange(10)})
        db.create_table("b", {"y": np.arange(5)})
        path = tmp_path / "multi.npz"
        save_database(db, path)
        restored = load_database(path)
        assert len(restored.table("a")) == 10
        assert len(restored.table("b")) == 5


class TestErrors:
    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SchemaError):
            load_database(path)

    def test_unsupported_version(self, populated, tmp_path):
        path = _tampered(populated, tmp_path, _set_version(99))
        with pytest.raises(SchemaError, match="version"):
            load_database(path)


def _tampered(db, tmp_path, mutate):
    """Save ``db``, apply ``mutate(members, manifest)``, re-archive."""
    original = tmp_path / "db.npz"
    save_database(db, original)
    with np.load(original, allow_pickle=False) as archive:
        members = {key: archive[key] for key in archive.files}
    manifest = json.loads(bytes(members[_MANIFEST_KEY]).decode("utf-8"))
    mutate(members, manifest)
    members[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    tampered = tmp_path / "tampered.npz"
    np.savez_compressed(tampered, **members)
    return tampered


def _set_version(version):
    def mutate(_members, manifest):
        manifest["version"] = version

    return mutate


class TestCorruption:
    """Damaged snapshots raise structured PersistError, never load silently."""

    def test_truncated_file(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistError) as exc_info:
            load_database(path)
        assert exc_info.value.path == str(path)
        assert exc_info.value.offset == len(blob) // 2

    def test_bit_flipped_file(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # one byte, somewhere in member data
        path.write_bytes(bytes(blob))
        with pytest.raises(PersistError) as exc_info:
            load_database(path)
        assert exc_info.value.path == str(path)

    def test_bit_flipped_array_fails_checksum(self, populated, tmp_path):
        def flip(members, _manifest):
            members["R::A"] = members["R::A"].copy()
            members["R::A"][17] ^= 0x5A  # recorded CRC no longer matches

        path = _tampered(populated, tmp_path, flip)
        with pytest.raises(PersistError, match="checksum mismatch") as exc_info:
            load_database(path)
        assert exc_info.value.member == "R::A"
        assert exc_info.value.path == str(path)

    def test_missing_member(self, populated, tmp_path):
        def drop(members, _manifest):
            del members["R::price"]

        path = _tampered(populated, tmp_path, drop)
        with pytest.raises(PersistError, match="missing") as exc_info:
            load_database(path)
        assert exc_info.value.member == "R::price"

    def test_corrupt_manifest_json(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        with np.load(path, allow_pickle=False) as archive:
            members = {key: archive[key] for key in archive.files}
        members[_MANIFEST_KEY] = np.frombuffer(b'{"ver', dtype=np.uint8)
        np.savez_compressed(path, **members)
        with pytest.raises(PersistError, match="JSON") as exc_info:
            load_database(path)
        assert exc_info.value.member == _MANIFEST_KEY

    def test_tombstone_length_mismatch(self, populated, tmp_path):
        def shorten(members, manifest):
            short = members["R::@tombstones"][:-5].copy()
            members["R::@tombstones"] = short
            # Keep the CRC consistent so only the length check can object.
            manifest["tables"]["R"]["tombstones_crc32"] = _crc32(short)

        path = _tampered(populated, tmp_path, shorten)
        with pytest.raises(PersistError, match="tombstone"):
            load_database(path)

    def test_v1_archive_without_checksums_loads(self, populated, tmp_path):
        def downgrade(_members, manifest):
            manifest["version"] = 1
            for spec in manifest["tables"].values():
                spec.pop("tombstones_crc32", None)
                for column in spec["columns"].values():
                    column.pop("crc32", None)

        path = _tampered(populated, tmp_path, downgrade)
        restored = load_database(path)
        assert np.array_equal(
            restored.table("R").values("A"), populated.table("R").values("A")
        )


class TestFailpoints:
    """The ``persist.save`` / ``persist.load`` FaultSan sites."""

    def _armed(self, spec):
        install_plan(FaultPlan.parse(spec))

    def teardown_method(self):
        uninstall_plan()

    def test_sites_are_registered(self):
        assert {"persist.save", "persist.load"} <= set(SITES)
        assert {"persist.save", "persist.load"} <= PAYLOAD_SITES

    def test_save_error_leaves_no_archive(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        self._armed("persist.save=error")
        with pytest.raises(InjectedFault, match="persist.save"):
            save_database(populated, path)
        assert not path.exists()

    def test_save_corrupt_is_a_torn_write(self, populated, tmp_path):
        """A corrupt fault at save time flips archive bytes under a
        pristine checksum; the live columns stay untouched and the next
        load reports the damage instead of serving it."""
        path = tmp_path / "db.npz"
        pristine = populated.table("R").values("A").copy()
        self._armed("persist.save=corrupt")
        save_database(populated, path)
        uninstall_plan()
        assert np.array_equal(populated.table("R").values("A"), pristine)
        with pytest.raises(PersistError, match="checksum mismatch") as exc:
            load_database(path)
        assert exc.value.member == "R::A"

    def test_load_error_fires(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        self._armed("persist.load=error")
        with pytest.raises(InjectedFault, match="persist.load"):
            load_database(path)

    def test_load_corrupt_fails_the_checksum(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        self._armed("persist.load=corrupt")
        with pytest.raises(PersistError, match="checksum mismatch"):
            load_database(path)

    def test_unarmed_round_trip_avoids_staging_copies(self, populated):
        blob = dumps(populated)
        restored = loads(blob)
        assert np.array_equal(
            restored.table("R").values("A"), populated.table("R").values("A")
        )
