"""Database persistence."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import Database, PlainEngine, Predicate, Query, SidewaysEngine
from repro.errors import SchemaError
from repro.storage.persist import dumps, load_database, loads, save_database


@pytest.fixture
def populated(rng):
    db = Database()
    db.create_table(
        "R",
        {
            "A": rng.integers(1, 10_000, size=1_000),
            "price": rng.uniform(0, 100, size=1_000),
            "tag": np.array([["x", "y"][i % 2] for i in range(1_000)]),
        },
    )
    db.delete("R", np.array([3, 7]))
    return db


class TestRoundTrip:
    def test_values_survive(self, populated, tmp_path):
        path = tmp_path / "db.npz"
        save_database(populated, path)
        restored = load_database(path)
        original = populated.table("R")
        copy = restored.table("R")
        for attr in original.attributes:
            assert np.array_equal(original.values(attr), copy.values(attr))

    def test_dictionary_survives(self, populated):
        restored = loads(dumps(populated))
        dictionary = restored.table("R").column("tag").dictionary
        assert dictionary.values == ("x", "y")

    def test_float_dtype_survives(self, populated):
        restored = loads(dumps(populated))
        assert restored.table("R").values("price").dtype == np.float64

    def test_tombstones_survive(self, populated):
        restored = loads(dumps(populated))
        assert restored.tombstones("R")[3]
        assert restored.tombstones("R")[7]
        assert restored.live_count("R") == 998

    def test_queries_agree_after_reload(self, populated):
        restored = loads(dumps(populated))
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 5_000)),),
            projections=("price",),
            aggregates=(("count", "price"),),
        )
        a = PlainEngine(populated).run(query)
        b = PlainEngine(restored).run(query)
        assert a.aggregates == b.aggregates

    def test_cracking_restarts_cold_but_correct(self, populated):
        engine = SidewaysEngine(populated)
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(100, 5_000)),),
            projections=("price",),
        )
        warm = engine.run(query)
        restored = loads(dumps(populated))
        # Cracked state is not persisted: the restored side starts fresh.
        assert not restored._sideways
        cold_engine = SidewaysEngine(restored)
        cold = cold_engine.run(query)
        assert np.array_equal(np.sort(warm.columns["price"]),
                              np.sort(cold.columns["price"]))

    def test_multiple_tables(self, rng, tmp_path):
        db = Database()
        db.create_table("a", {"x": np.arange(10)})
        db.create_table("b", {"y": np.arange(5)})
        path = tmp_path / "multi.npz"
        save_database(db, path)
        restored = load_database(path)
        assert len(restored.table("a")) == 10
        assert len(restored.table("b")) == 5


class TestErrors:
    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SchemaError):
            load_database(path)
