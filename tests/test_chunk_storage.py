"""The chunk storage manager: budgets, LFU eviction, pinning."""

import numpy as np
import pytest

from repro.core.partial.chunkmap import ChunkMap
from repro.core.partial.partial_map import PartialMap
from repro.core.partial.storage import ChunkStorage
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation


@pytest.fixture
def parts(rng):
    rel = Relation.from_arrays(
        "R", {c: rng.integers(0, 10_000, size=1_000).astype(np.int64) for c in "AB"}
    )
    chunkmap = ChunkMap(rel, "A", len(rel))
    pmap = PartialMap(chunkmap, "B")
    return chunkmap, pmap


def make_chunk(chunkmap, pmap, lo, hi):
    area = chunkmap.cover(Interval.open(lo, hi))[0]
    return area, pmap.create_chunk(area)


class TestAccounting:
    def test_usage_counts_chunks(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        assert storage.used_tuples == 0
        _, chunk = make_chunk(chunkmap, pmap, 1_000, 4_000)
        assert storage.used_tuples == len(chunk)

    def test_chunkmap_counted_when_enabled(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None, count_chunkmaps=True)
        storage.register_chunkmap(chunkmap)
        assert storage.used_tuples == len(chunkmap)

    def test_head_drop_halves_footprint(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        _, chunk = make_chunk(chunkmap, pmap, 1_000, 4_000)
        full = storage.used_tuples
        chunk.drop_head()
        assert storage.used_tuples == pytest.approx(full / 2)


class TestEviction:
    def test_lfu_victim(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        area_hot, hot = make_chunk(chunkmap, pmap, 1_000, 4_000)
        area_cold, cold = make_chunk(chunkmap, pmap, 6_000, 9_000)
        hot.touch()
        hot.touch()
        cold.touch()
        storage.budget_tuples = int(storage.used_tuples)  # full
        storage.ensure_room(10)
        assert pmap.get_chunk(area_cold) is None
        assert pmap.get_chunk(area_hot) is hot

    def test_pinned_chunk_survives(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        area, chunk = make_chunk(chunkmap, pmap, 1_000, 4_000)
        storage.pin(pmap, area.area_id)
        storage.budget_tuples = 1
        storage.ensure_room(10)  # nothing evictable -> overshoot
        assert pmap.get_chunk(area) is chunk
        storage.unpin_all()
        storage.ensure_room(10)
        assert pmap.get_chunk(area) is None

    def test_unlimited_budget_no_eviction(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        make_chunk(chunkmap, pmap, 1_000, 4_000)
        storage.ensure_room(10**9)
        assert len(pmap.chunks) == 1

    def test_register_idempotent(self, parts):
        chunkmap, pmap = parts
        storage = ChunkStorage(budget_tuples=None)
        storage.register_map(pmap)
        storage.register_map(pmap)
        storage.register_chunkmap(chunkmap)
        storage.register_chunkmap(chunkmap)
        make_chunk(chunkmap, pmap, 1_000, 4_000)
        single = storage.used_tuples
        assert single == len(pmap.chunks[next(iter(pmap.chunks))])
