"""Cross-engine integration: all five systems answer identically."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine import (
    Database,
    JoinQuery,
    JoinSide,
    PlainEngine,
    Predicate,
    PresortedEngine,
    Query,
    RowStoreEngine,
    SelectionCrackingEngine,
    SidewaysEngine,
)
from repro.errors import PlanError


@pytest.fixture
def twodb(rng):
    db = Database()
    n = 3_000
    db.create_table("R", {c: rng.integers(1, 20_001, size=n) for c in "ABCDEFG"})
    s = {c: rng.integers(1, 20_001, size=n) for c in "ABCDEF"}
    s["G"] = rng.integers(1, n + 1, size=n)  # join attribute, denser domain
    db.create_table("S2", s)
    return db


def all_engines(db):
    return [
        PlainEngine(db),
        PresortedEngine(db),
        SelectionCrackingEngine(db),
        SidewaysEngine(db),
        SidewaysEngine(db, partial=True),
        RowStoreEngine(db),
        RowStoreEngine(db, presorted=True),
    ]


def assert_engines_agree(db, query):
    reference = None
    for engine in all_engines(db):
        result = engine.run(query)
        canonical = {a: np.sort(v) for a, v in result.columns.items()}
        if reference is None:
            reference = (engine.name, canonical, result.aggregates, result.row_count)
            continue
        name, ref_cols, ref_aggs, ref_count = reference
        assert result.row_count == ref_count, (engine.name, name)
        for attr in ref_cols:
            assert np.array_equal(canonical[attr], ref_cols[attr]), (engine.name, attr)
        for key, value in ref_aggs.items():
            got = result.aggregates[key]
            assert got == pytest.approx(value, rel=1e-9, nan_ok=True), (engine.name, key)


class TestSingleTable:
    def test_conjunctive_queries(self, twodb, rng):
        for _ in range(8):
            lo1 = int(rng.integers(0, 15_000))
            lo2 = int(rng.integers(0, 10_000))
            query = Query(
                "R",
                predicates=(
                    Predicate("A", Interval.open(lo1, lo1 + 6_000)),
                    Predicate("B", Interval.open(lo2, lo2 + 9_000)),
                ),
                projections=("C", "D"),
                aggregates=(("max", "C"), ("sum", "D"), ("count", "D")),
            )
            assert_engines_agree(twodb, query)

    def test_disjunctive_queries(self, twodb, rng):
        for _ in range(5):
            lo1 = int(rng.integers(0, 15_000))
            lo2 = int(rng.integers(0, 15_000))
            query = Query(
                "R",
                predicates=(
                    Predicate("A", Interval.open(lo1, lo1 + 2_000)),
                    Predicate("B", Interval.open(lo2, lo2 + 2_000)),
                ),
                projections=("C",),
                conjunctive=False,
            )
            assert_engines_agree(twodb, query)

    def test_single_predicate(self, twodb):
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(5_000, 10_000)),),
            projections=("B",),
            aggregates=(("min", "B"), ("avg", "B")),
        )
        assert_engines_agree(twodb, query)

    def test_point_predicate(self, twodb):
        value = int(twodb.table("R").values("A")[0])
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.point(value)),),
            projections=("B",),
        )
        assert_engines_agree(twodb, query)

    def test_empty_result(self, twodb):
        query = Query(
            "R",
            predicates=(Predicate("A", Interval.open(30_000, 40_000)),),
            projections=("B",),
            aggregates=(("max", "B"),),
        )
        assert_engines_agree(twodb, query)

    def test_no_predicates(self, twodb):
        query = Query("R", projections=("A",), aggregates=(("count", "A"),))
        assert_engines_agree(twodb, query)


class TestJoins:
    def test_join_queries_agree(self, twodb, rng):
        for _ in range(4):
            query = JoinQuery(
                left=JoinSide(
                    "R", join_attr="G",
                    predicates=(
                        Predicate("C", Interval.open(0, 12_000)),
                        Predicate("D", Interval.open(0, 8_000)),
                    ),
                    post_join_columns=("A", "B"),
                ),
                right=JoinSide(
                    "S2", join_attr="G",
                    predicates=(Predicate("C", Interval.open(0, 6_000)),),
                    post_join_columns=("E",),
                ),
                aggregates=(("max", "A"), ("count", "B"), ("sum", "E")),
            )
            rows = set()
            for engine in all_engines(twodb):
                result = engine.run_join(query)
                aggs = tuple(
                    (k, round(v, 4)) for k, v in sorted(result.aggregates.items())
                )
                rows.add((result.row_count, aggs))
            assert len(rows) == 1, rows

    def test_post_join_column_clash_rejected(self):
        with pytest.raises(PlanError):
            JoinQuery(
                left=JoinSide("R", "G", post_join_columns=("A",),
                              predicates=(Predicate("A", Interval.open(1, 2)),)),
                right=JoinSide("S2", "G", post_join_columns=("A",),
                               predicates=(Predicate("A", Interval.open(1, 2)),)),
            )


class TestUpdatesAcrossEngines:
    def test_engines_agree_after_updates(self, rng):
        db = Database()
        n = 2_000
        arrays = {c: rng.integers(1, 10_001, size=n) for c in "ABC"}
        db.create_table("T", arrays)
        # Warm the cracking structures before updating.
        engines = [
            PlainEngine(db),
            SelectionCrackingEngine(db),
            SidewaysEngine(db),
            SidewaysEngine(db, partial=True),
        ]
        warm = Query("T", predicates=(Predicate("A", Interval.open(1_000, 5_000)),),
                     projections=("B",))
        for engine in engines:
            engine.run(warm)
        db.insert("T", {c: rng.integers(1, 10_001, size=50) for c in "ABC"})
        victims = rng.choice(n, size=30, replace=False)
        db.delete("T", victims)
        query = Query(
            "T",
            predicates=(Predicate("A", Interval.open(1, 10_001)),),
            projections=("B", "C"),
            aggregates=(("count", "B"), ("sum", "C")),
        )
        reference = None
        for engine in engines:
            result = engine.run(query)
            key = (result.row_count, round(result.aggregates["sum(C)"], 2))
            if reference is None:
                reference = key
            assert key == reference, engine.name

    def test_double_delete_rejected(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(10)})
        db.delete("T", np.array([3]))
        from repro.errors import UpdateError

        with pytest.raises(UpdateError):
            db.delete("T", np.array([3]))


class TestResultShape:
    def test_phase_timings_present(self, twodb):
        engine = PlainEngine(twodb)
        query = Query(
            "R", predicates=(Predicate("A", Interval.open(1, 10_000)),),
            projections=("B",),
        )
        result = engine.run(query)
        assert result.phase_seconds("select") > 0
        assert result.total_seconds >= result.phase_seconds("select")
        assert result.stats.total_touches > 0

    def test_join_phases_present(self, twodb):
        engine = PlainEngine(twodb)
        query = JoinQuery(
            left=JoinSide("R", "G",
                          predicates=(Predicate("A", Interval.open(1, 10_000)),),
                          post_join_columns=("B",)),
            right=JoinSide("S2", "G",
                           predicates=(Predicate("A", Interval.open(1, 10_000)),),
                           post_join_columns=("C",)),
        )
        result = engine.run_join(query)
        for phase in ("select", "tr_before", "join", "tr_after"):
            assert phase in result.timer.totals
