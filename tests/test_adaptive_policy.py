"""The ``auto`` crack policy: workload monitoring and selection boundaries."""

import numpy as np
import pytest

from repro.cracking.adaptive import AdaptivePolicy
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.cracking.progressive import ProgressiveBudget
from repro.cracking.stochastic import POLICY_NAMES, resolve_policy
from repro.stats.counters import StatsRecorder
from repro.storage.bat import BAT
from repro.workloads.synthetic import ADVERSARIAL_PATTERNS, adversarial_intervals


class TestResolution:
    def test_auto_is_a_registered_policy_name(self):
        assert "auto" in POLICY_NAMES

    @pytest.mark.parametrize("name", ["auto", "adaptive"])
    def test_resolve_returns_adaptive(self, name):
        policy = resolve_policy(name)
        assert isinstance(policy, AdaptivePolicy)
        assert policy.name == "auto"

    def test_min_piece_passthrough(self):
        policy = resolve_policy("auto", min_piece=128)
        assert policy.min_piece == 128
        assert policy._mdd1r.min_piece == 128

    def test_describe_names_both_arms(self):
        text = resolve_policy("auto").describe()
        assert "mdd1r" in text and "query-driven" in text


def _observe_values(policy, index, values, n=10_000):
    for v in values:
        bound = Interval.open(v, v + 1).lower_bound()
        policy.observe(index, bound, 0, n, n)


class TestDecisionBoundaries:
    def test_warmup_defaults_to_adversarial(self):
        policy = AdaptivePolicy(warmup=4)
        index = CrackerIndex()
        _observe_values(policy, index, [100, 5_000, 9_000])
        # Three observations < warmup: the free random cut is insurance.
        assert policy._adversarial(index, 0, 10_000, n=10_000)

    def test_clustered_bounds_trigger_mdd1r(self):
        policy = AdaptivePolicy()
        index = CrackerIndex()
        # A sequential sweep: consecutive bounds a tiny step apart.
        _observe_values(policy, index, [1_000 + 10 * i for i in range(8)])
        assert policy._adversarial(index, 0, 200, n=10_000)

    def test_identical_bounds_trigger_mdd1r(self):
        policy = AdaptivePolicy()
        index = CrackerIndex()
        _observe_values(policy, index, [5_000] * 8)
        assert policy._adversarial(index, 0, 200, n=10_000)

    def test_spread_bounds_on_converged_piece_stay_query_driven(self):
        policy = AdaptivePolicy()
        index = CrackerIndex()
        # Bounds jump across the whole domain: median delta ~ the span.
        _observe_values(policy, index, [100, 9_000, 2_500, 7_000, 4_800,
                                        600, 8_200, 3_300])
        # A small enclosing piece (the steady state a spread workload of
        # this length produces) does not look adversarial.
        assert not policy._adversarial(index, 0, 200, n=10_000)

    def test_spread_bounds_on_bloated_piece_trigger_mdd1r(self):
        policy = AdaptivePolicy(min_piece=64)
        index = CrackerIndex()
        _observe_values(policy, index, [100, 9_000, 2_500, 7_000, 4_800,
                                        600, 8_200, 3_300], n=100_000)
        # Same healthy workload, but this crack hits a piece far larger
        # than the steady state (and the min-piece floor): the
        # non-convergence insurance kicks in.
        assert policy._adversarial(index, 0, 100_000, n=100_000)
        assert not policy._adversarial(index, 0, 200, n=100_000)

    def test_monitors_are_per_structure(self):
        policy = AdaptivePolicy()
        clustered, spread = CrackerIndex(), CrackerIndex()
        _observe_values(policy, clustered, [1_000 + 5 * i for i in range(8)])
        _observe_values(policy, spread, [100, 9_000, 2_500, 7_000, 4_800,
                                         600, 8_200, 3_300])
        assert policy._adversarial(clustered, 0, 200, n=10_000)
        assert not policy._adversarial(spread, 0, 200, n=10_000)


def _run_workload(policy, values, intervals):
    recorder = StatsRecorder()
    column = CrackerColumn(
        BAT.from_values(values), recorder=recorder,
        policy=policy, rng=np.random.default_rng(17),
    )
    for iv in intervals:
        keys = column.select(iv)
        assert np.array_equal(np.sort(keys), np.flatnonzero(iv.mask(values)))
    column.check_invariants(deep=True)
    return recorder.root.total_touches


class TestEndToEnd:
    """Selection behaviour on the exp14 adversarial generators."""

    @pytest.mark.parametrize("pattern", ADVERSARIAL_PATTERNS)
    def test_adversarial_patterns_engage_mdd1r_and_stay_competitive(
        self, rng, pattern
    ):
        values = rng.integers(1, 30_001, size=4_000).astype(np.int64)
        intervals = adversarial_intervals(pattern, 30_000, 40, 0.01, seed=21)
        policy = resolve_policy("auto", min_piece=256)
        auto_touches = _run_workload(policy, values, intervals)
        # The stochastic arm must have engaged on the big unconverged pieces
        # (cracks behind a sweep front land in small pieces and are cheap
        # query-driven cuts — a high mdd1r *ratio* is not the goal).
        assert policy.decisions["mdd1r"] > 0
        # The acceptance property at test scale: never meaningfully worse
        # than plain query-driven cracking on the pattern built to defeat it.
        qd_touches = _run_workload(None, values, intervals)
        assert auto_touches <= 1.1 * qd_touches

    def test_random_workload_routes_to_query_driven(self, rng):
        values = rng.integers(1, 30_001, size=4_000).astype(np.int64)
        policy = resolve_policy("auto", min_piece=256)
        intervals = []
        for _ in range(60):
            lo = int(rng.integers(1, 28_000))
            intervals.append(Interval.open(lo, lo + 300))
        _run_workload(policy, values, intervals)
        # Once the monitor warms up and pieces converge, the cheap arm wins.
        assert policy.decisions["query_driven"] > policy.decisions["mdd1r"]

    def test_auto_composes_with_a_budget(self, rng):
        values = rng.integers(1, 30_001, size=4_000).astype(np.int64)
        column = CrackerColumn(
            BAT.from_values(values),
            policy=resolve_policy("auto", min_piece=256),
            rng=np.random.default_rng(23),
            budget=ProgressiveBudget(elements=150),
        )
        for iv in adversarial_intervals("sequential", 30_000, 40, 0.01, seed=29):
            keys = column.select(iv)
            assert np.array_equal(np.sort(keys), np.flatnonzero(iv.mask(values)))
        column.check_invariants(deep=True)
        column.finish_pending_cracks()
        column.check_invariants(deep=True)
