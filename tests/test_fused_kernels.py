"""Golden-permutation equivalence of the fused kernels vs the reference
backend, arena reuse/resize behavior, and gang replay equivalence."""

import numpy as np
import pytest

from repro.core.map import CrackerMap
from repro.core.mapset import MapSet
from repro.cracking.arena import KernelArena, default_arena
from repro.cracking.bounds import Bound, Interval, Side
from repro.cracking.crack import gang_replay_crack, gang_replay_sort
from repro.cracking.kernels import (
    KERNEL_BACKENDS,
    crack_three,
    crack_two,
    fused_crack_three,
    fused_crack_two,
    get_backend,
    reference_crack_three,
    reference_crack_two,
    set_backend,
    sort_piece,
    use_backend,
)
from repro.errors import CrackError
from repro.stats.counters import StatsRecorder
from repro.storage.relation import Relation


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _arrays(rng, n, lo=0, hi=1000):
    head = rng.integers(lo, hi, size=n).astype(np.int64)
    keys = np.arange(n, dtype=np.int64)
    tail = rng.integers(0, 10**6, size=n).astype(np.int64)
    return head, keys, tail


# -- golden equivalence -----------------------------------------------------------


BOUNDS = [
    Bound(500, Side.LT),
    Bound(500, Side.LE),
    Bound(500.5, Side.LT),     # non-integral pivot exercises the int fast path
    Bound(-1, Side.LT),        # all-above
    Bound(10**9, Side.LE),     # all-below
    Bound(0, Side.LT),         # empty below side
]


@pytest.mark.parametrize("bound", BOUNDS, ids=repr)
@pytest.mark.parametrize("n", [0, 1, 2, 257, 5000])
def test_crack_two_matches_reference(rng, bound, n):
    head, keys, tail = _arrays(rng, n)
    h_ref, k_ref, t_ref = head.copy(), keys.copy(), tail.copy()
    split_ref = reference_crack_two(h_ref, [k_ref, t_ref], 0, n, bound)
    h_fus, k_fus, t_fus = head.copy(), keys.copy(), tail.copy()
    split_fus = fused_crack_two(h_fus, [k_fus, t_fus], 0, n, bound)
    assert split_ref == split_fus
    assert np.array_equal(h_ref, h_fus)
    assert np.array_equal(k_ref, k_fus)
    assert np.array_equal(t_ref, t_fus)


@pytest.mark.parametrize(
    "lower,upper",
    [
        (Bound(200, Side.LE), Bound(700, Side.LT)),
        (Bound(200, Side.LT), Bound(200, Side.LE)),   # point range
        (Bound(-5, Side.LT), Bound(-1, Side.LT)),     # fully below the data
        (Bound(10**8, Side.LE), Bound(10**9, Side.LE)),  # fully above
        (Bound(-1, Side.LT), Bound(10**9, Side.LE)),  # everything in the middle
        (Bound(250.5, Side.LT), Bound(749.5, Side.LE)),  # non-integral pivots
    ],
    ids=str,
)
@pytest.mark.parametrize("n", [0, 3, 1000])
def test_crack_three_matches_reference(rng, lower, upper, n):
    head, keys, tail = _arrays(rng, n)
    h_ref, k_ref, t_ref = head.copy(), keys.copy(), tail.copy()
    p_ref = reference_crack_three(h_ref, [k_ref, t_ref], 0, n, lower, upper)
    h_fus, k_fus, t_fus = head.copy(), keys.copy(), tail.copy()
    p_fus = fused_crack_three(h_fus, [k_fus, t_fus], 0, n, lower, upper)
    assert p_ref == p_fus
    assert np.array_equal(h_ref, h_fus)
    assert np.array_equal(k_ref, k_fus)
    assert np.array_equal(t_ref, t_fus)


def test_subrange_and_float_dtype_match(rng):
    n = 4000
    head = rng.normal(size=n)  # float payload skips the int fast path
    keys = np.arange(n, dtype=np.int64)
    bound = Bound(0.25, Side.LE)
    h_ref, k_ref = head.copy(), keys.copy()
    split_ref = reference_crack_two(h_ref, [k_ref], 1000, 3000, bound)
    h_fus, k_fus = head.copy(), keys.copy()
    split_fus = fused_crack_two(h_fus, [k_fus], 1000, 3000, bound)
    assert split_ref == split_fus
    assert np.array_equal(h_ref, h_fus)
    assert np.array_equal(k_ref, k_fus)
    # Outside the subrange nothing moved.
    assert np.array_equal(h_fus[:1000], head[:1000])
    assert np.array_equal(h_fus[3000:], head[3000:])


def test_multi_tail_gang_equivalence(rng):
    """One fused call over 2k arrays == k independent crack_twos."""
    n = 3000
    head, keys, _ = _arrays(rng, n)
    bound = Bound(500, Side.LT)
    pairs = [(head.copy(), keys.copy()) for _ in range(4)]
    for h, k in pairs:
        reference_crack_two(h, [k], 0, n, bound)
    gang_head, gang_keys = head.copy(), keys.copy()
    extra = [arr for _ in range(3) for arr in (head.copy(), keys.copy())]
    fused_crack_two(gang_head, [gang_keys, *extra], 0, n, bound)
    assert np.array_equal(gang_head, pairs[0][0])
    assert np.array_equal(gang_keys, pairs[0][1])
    for i in range(3):
        assert np.array_equal(extra[2 * i], pairs[i + 1][0])
        assert np.array_equal(extra[2 * i + 1], pairs[i + 1][1])


def test_fused_raises_like_reference(rng):
    head, keys, _ = _arrays(rng, 10)
    with pytest.raises(CrackError):
        fused_crack_two(head, [keys], 5, 20, Bound(1, Side.LT))
    with pytest.raises(CrackError):
        fused_crack_three(
            head, [keys], 0, 10, Bound(9, Side.LT), Bound(1, Side.LT)
        )


# -- backend registry -------------------------------------------------------------


def test_backend_registry_dispatch(rng):
    assert get_backend() == "fused"
    assert set(KERNEL_BACKENDS) == {"reference", "fused"}
    with use_backend("reference"):
        assert get_backend() == "reference"
        head, keys, _ = _arrays(rng, 100)
        crack_two(head, [keys], 0, 100, Bound(500, Side.LT))
    assert get_backend() == "fused"
    with pytest.raises(CrackError):
        set_backend("simd")


def test_backends_identical_through_dispatcher(rng):
    n = 2000
    head, keys, _ = _arrays(rng, n)
    results = {}
    for backend in KERNEL_BACKENDS:
        h, k = head.copy(), keys.copy()
        with use_backend(backend):
            crack_two(h, [k], 0, n, Bound(300, Side.LE))
            crack_three(h, [k], 0, n, Bound(300, Side.LE), Bound(800, Side.LT))
            sort_piece(h, [k], 100, 900)
        results[backend] = (h, k)
    assert np.array_equal(results["reference"][0], results["fused"][0])
    assert np.array_equal(results["reference"][1], results["fused"][1])


# -- arena ------------------------------------------------------------------------


def test_arena_reuse_and_resize():
    arena = KernelArena()
    m1 = arena.mask(100)
    assert len(m1) == 100 and arena.resizes == 1
    m2 = arena.mask(50)
    assert len(m2) == 50 and arena.resizes == 1  # shrink reuses the buffer
    assert m2.base is m1.base or m2.base is m1  # same backing storage
    arena.mask(150)  # grow: doubles from 100
    assert arena.resizes == 2
    assert arena.capacity()["mask"] == 200
    arena.mask(190)
    assert arena.resizes == 2  # within doubled capacity

    s1 = arena.scratch(np.int64, 64)
    s2 = arena.scratch(np.float64, 64)
    assert s1.dtype == np.int64 and s2.dtype == np.float64
    before = arena.resizes
    arena.scratch(np.int64, 32)
    assert arena.resizes == before  # per-dtype buffers are independent
    assert arena.peak_request == 190

    arena.clear()
    assert arena.capacity()["mask"] == 0


def test_arena_isolation_from_default(rng):
    head, keys, _ = _arrays(rng, 500)
    arena = KernelArena()
    before = default_arena().resizes
    fused_crack_two(head, [keys], 0, 500, Bound(500, Side.LT), arena)
    assert arena.resizes > 0
    assert default_arena().resizes == before


# -- gang replay over real structures ---------------------------------------------


def _make_mapset(rng, n=1200):
    arrays = {
        c: rng.integers(0, 5000, size=n).astype(np.int64) for c in "ABC"
    }
    relation = Relation.from_arrays("R", arrays)
    return MapSet(relation, "A", recorder=StatsRecorder())


def test_gang_replay_crack_matches_individual_replay(rng):
    mapset = _make_mapset(rng)
    for lo in (100, 900, 2500, 1700):
        mapset.select("B", Interval.half_open(lo, lo + 300))
    # Two fresh maps at cursor 0: replay one individually, gang the other
    # against a third, and compare.
    solo = mapset.get_map("C")
    mapset.align(solo)

    fresh = mapset._snapshot_arrays("C")
    gang_members = [
        CrackerMap("A", f"g{i}", fresh[0].copy(), fresh[1].copy(),
                   lambda keys: np.asarray(keys), StatsRecorder())
        for i in range(3)
    ]
    for entry in mapset.tape.entries:
        gang_replay_crack(gang_members, entry.interval)
        for member in gang_members:
            member.cursor += 1
    for member in gang_members:
        assert np.array_equal(member.head, solo.head)
        assert np.array_equal(member.tail, solo.tail)
        assert [b for b, _ in member.index.inorder()] == [
            b for b, _ in solo.index.inorder()
        ]


def test_mapset_align_gangs_same_cursor_maps(rng):
    mapset = _make_mapset(rng)
    for lo in (200, 1400, 3100):
        mapset.select("B", Interval.half_open(lo, lo + 250))
    # Create two stale maps; both sit at cursor 0.
    c_map = mapset.get_map("C")
    key_map = mapset.get_map("@key")
    assert c_map.cursor == 0 and key_map.cursor == 0
    mapset.align(c_map)  # drags the same-cursor sibling along
    assert c_map.cursor == len(mapset.tape)
    assert key_map.cursor == len(mapset.tape)
    assert np.array_equal(c_map.head, mapset.get_map("B", align=True).head)
    assert np.array_equal(c_map.head, key_map.head)
    mapset.check_invariants(deep=True)


def test_gang_replay_sort_matches_individual(rng):
    n = 800
    head, keys, _ = _arrays(rng, n)
    solo_h, solo_k = head.copy(), keys.copy()
    sort_piece(solo_h, [solo_k], 100, 700)

    members = [
        CrackerMap("A", f"s{i}", head.copy(), keys.copy(),
                   lambda k: np.asarray(k), StatsRecorder())
        for i in range(3)
    ]
    gang_replay_sort(members, 100, 700, StatsRecorder())
    for member in members:
        assert np.array_equal(member.head, solo_h)
        assert np.array_equal(member.tail, solo_k)
