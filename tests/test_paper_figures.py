"""The paper's worked examples (Figures 1, 2, 3) on their exact data.

These pin the reproduction to the paper at the level of individual tuples.
One deliberate deviation: the paper's in-place crack kernel produces a
different *within-piece* order than our stable kernel (e.g. Figure 1 shows
``4,3,5,9,2,7`` in the first piece where stability yields ``3,5,9,7,4,2``),
so assertions compare piece *sets* and boundary *positions* — which the
kernels must agree on — plus the query results themselves.
"""

import numpy as np
import pytest

from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Bound, Interval, Side
from repro.cracking.column import CrackerColumn
from repro.storage.bat import BAT
from repro.storage.relation import Relation


class TestFigure1:
    """R(A, B), 13 tuples; two successive range selections on A."""

    A = np.array([12, 3, 5, 9, 15, 22, 7, 26, 4, 2, 24, 11, 16], dtype=np.int64)

    def b(self, index: int) -> str:
        return f"b{index + 1}"

    @pytest.fixture
    def cracker(self):
        rel = Relation.from_arrays("R", {"A": self.A, "B": np.arange(1, 14)})
        return SidewaysCracker(rel)

    def test_first_query_pieces_and_result(self, cracker):
        # select B from R where 10 < A < 15
        result = cracker.select_project("A", Interval.open(10, 15), ["B"])
        # Paper: result is {b1, b12} (A values 12 and 11).
        assert sorted(result["B"].tolist()) == [1, 12]
        cmap = cracker.sets["A"].maps["B"]
        # Paper's cracker index: "Position 7, value > 10" and "Position 9,
        # value >= 15" — the paper's positions are 1-based, ours 0-based.
        assert cmap.index.position_of(Bound(10, Side.LE)) == 6
        assert cmap.index.position_of(Bound(15, Side.LT)) == 8
        # Piece contents as sets match the figure.
        assert sorted(cmap.head[:6].tolist()) == [2, 3, 4, 5, 7, 9]
        assert sorted(cmap.head[6:8].tolist()) == [11, 12]
        assert sorted(cmap.head[8:].tolist()) == [15, 16, 22, 24, 26]

    def test_second_query_refines_only_outer_pieces(self, cracker):
        cracker.select_project("A", Interval.open(10, 15), ["B"])
        cmap = cracker.sets["A"].maps["B"]
        middle_before = cmap.head[6:8].copy()
        # select B from R where 5 <= A < 17
        result = cracker.select_project(
            "A", Interval.half_open(5, 17), ["B"]
        )
        # Paper: the entire middle piece belongs to the result; only pieces
        # 1 and 3 are analyzed further.  New bounds at the paper's 1-based
        # positions 4 and 11 (0-based: 3 and 10).
        assert np.array_equal(cmap.head[6:8], middle_before)
        assert cmap.index.position_of(Bound(5, Side.LT)) == 3
        assert cmap.index.position_of(Bound(17, Side.LT)) == 10
        # Qualifying A values 5,9,7,12,11,15,16 -> b3,b4,b7,b1,b12,b5,b13.
        assert sorted(result["B"].tolist()) == [1, 3, 4, 5, 7, 12, 13]


class TestFigure2:
    """Multi-projection alignment: the wrong-vs-right demonstration."""

    A = np.array([7, 4, 1, 2, 8, 3, 6], dtype=np.int64)
    B = np.arange(1, 8)  # b1..b7 as 1..7
    C = np.arange(11, 18)  # c1..c7 as 11..17

    @pytest.fixture
    def cracker(self):
        rel = Relation.from_arrays("R", {"A": self.A, "B": self.B, "C": self.C})
        return SidewaysCracker(rel)

    def test_three_query_sequence_stays_aligned(self, cracker):
        # Query 1: select B from R where A < 3  -> {b3, b4}
        r1 = cracker.select_project("A", Interval.at_most(3, inclusive=False), ["B"])
        assert sorted(r1["B"].tolist()) == [3, 4]
        # Query 2: select C from R where A < 5  -> {c2, c3, c4, c6}
        r2 = cracker.select_project("A", Interval.at_most(5, inclusive=False), ["C"])
        assert sorted(r2["C"].tolist()) == [12, 13, 14, 16]
        # Query 3: select B, C from R where A < 4 -> tuples with A in {1,2,3}
        r3 = cracker.select_project("A", Interval.at_most(4, inclusive=False),
                                    ["B", "C"])
        pairs = sorted(zip(r3["B"].tolist(), r3["C"].tolist()))
        # b3/c3 (A=1), b4/c4 (A=2), b6/c6 (A=3): alignment is per tuple.
        assert pairs == [(3, 13), (4, 14), (6, 16)]

    def test_maps_physically_identical_after_alignment(self, cracker):
        cracker.select_project("A", Interval.at_most(3, inclusive=False), ["B"])
        cracker.select_project("A", Interval.at_most(5, inclusive=False), ["C"])
        cracker.select_project("A", Interval.at_most(4, inclusive=False), ["B", "C"])
        mapset = cracker.sets["A"]
        map_b, map_c = mapset.maps["B"], mapset.maps["C"]
        assert np.array_equal(map_b.head, map_c.head)
        # And both reflect the original tuple pairing.
        assert np.array_equal(map_b.tail + 10, map_c.tail)


class TestFigure3:
    """Multi-selection with bit vectors: the conjunctive example."""

    A = np.array([12, 3, 5, 9, 8, 22, 7, 26, 4, 2, 7, 9], dtype=np.int64)
    B = np.array([2, 6, 10, 7, 11, 16, 2, 5, 8, 3, 1, 9], dtype=np.int64)
    C = np.array([3, 6, 2, 1, 6, 9, 12, 2, 11, 17, 3, 7], dtype=np.int64)
    D = np.array([9, 4, 2, 10, 12, 19, 3, 6, 5, 8, 1, 14], dtype=np.int64)

    def test_conjunctive_query_result(self):
        # The paper's data listing is partially cut in the figure; we use a
        # 12-tuple variant where the middle area (3 < A < 10) contains the
        # same candidate structure.  The invariant tested is the plan: bit
        # vector sized to the most selective area, refined per selection,
        # reconstruction via the aligned map.
        rel = Relation.from_arrays(
            "R", {"A": self.A, "B": self.B, "C": self.C, "D": self.D}
        )
        cracker = SidewaysCracker(rel)
        predicates = {
            "A": Interval.open(3, 10),
            "B": Interval.open(4, 8),
            "C": Interval.open(1, 7),
        }
        result = cracker.query(predicates, ["D"], conjunctive=True,
                               head_attr="A")
        mask = (
            predicates["A"].mask(self.A)
            & predicates["B"].mask(self.B)
            & predicates["C"].mask(self.C)
        )
        assert sorted(result["D"].tolist()) == sorted(self.D[mask].tolist())

    def test_bit_vector_sized_to_candidate_area(self):
        rel = Relation.from_arrays(
            "R", {"A": self.A, "B": self.B, "C": self.C, "D": self.D}
        )
        cracker = SidewaysCracker(rel)
        iv = Interval.open(3, 10)
        mapset = cracker.set_for("A")
        _, lo, hi = mapset.select("B", iv)
        # The candidate area holds exactly the tuples with 3 < A < 10.
        assert hi - lo == int(iv.mask(self.A).sum())


class TestSelectionCrackingExample:
    """Section 2.2's behavior: results unordered, base column untouched."""

    def test_base_column_left_in_insertion_order(self):
        values = np.array([30, 10, 20], dtype=np.int64)
        bat = BAT.from_values(values)
        column = CrackerColumn(bat)
        column.select(Interval.open(5, 25))
        assert bat.values.tolist() == [30, 10, 20]
        assert sorted(column.head.tolist()) == [10, 20, 30]
