"""Cache-conscious chunk-size enforcement (paper §7 future work)."""

import numpy as np
import pytest

from repro.core.partial import PartialConfig, PartialSidewaysCracker
from repro.core.partial.chunkmap import ChunkMap
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation


@pytest.fixture
def rel(rng):
    return Relation.from_arrays(
        "R",
        {c: rng.integers(0, 10**6, size=20_000).astype(np.int64) for c in "AB"},
    )


class TestMedianSplit:
    def test_cover_respects_budget(self, rel):
        chunkmap = ChunkMap(rel, "A", len(rel))
        areas = chunkmap.cover(Interval.open(10**5, 9 * 10**5), max_area_tuples=2_000)
        assert all(chunkmap.area_size(a) <= 2_000 for a in areas)
        chunkmap.check_invariants()

    def test_without_budget_single_area(self, rel):
        chunkmap = ChunkMap(rel, "A", len(rel))
        areas = chunkmap.cover(Interval.open(10**5, 9 * 10**5))
        assert len(areas) == 1

    def test_degenerate_constant_values_no_infinite_loop(self):
        rel = Relation.from_arrays("R", {"A": np.full(5_000, 7, dtype=np.int64),
                                         "B": np.arange(5_000)})
        chunkmap = ChunkMap(rel, "A", len(rel))
        areas = chunkmap.cover(Interval.closed(0, 10), max_area_tuples=100)
        # Cannot split identical values: one oversized area is allowed.
        assert len(areas) >= 1
        assert sum(chunkmap.area_size(a) for a in areas) == 5_000


class TestEndToEnd:
    def test_results_correct_with_enforcement(self, rel, rng):
        arrays = {attr: rel.values(attr) for attr in rel.attributes}
        cracker = PartialSidewaysCracker(
            rel, config=PartialConfig(max_chunk_tuples=1_500)
        )
        for _ in range(15):
            lo = int(rng.integers(0, 8 * 10**5))
            iv = Interval.open(lo, lo + 10**5)
            res = cracker.select_project("A", iv, ["B"])
            expected = arrays["B"][iv.mask(arrays["A"])]
            assert np.array_equal(np.sort(res["B"]), np.sort(expected))
        sizes = [
            len(chunk)
            for pmap in cracker.sets["A"].maps.values()
            for chunk in pmap.chunks.values()
        ]
        assert max(sizes) <= 1_500 * 1.2  # median split is approximate

    def test_enforcement_bounds_worst_case_chunk_creation(self, rel, rng):
        """With enforcement, the costliest single query (chunk creation on a
        fresh range) touches less data than one giant chunk would."""
        from repro.stats.counters import StatsRecorder

        def first_query_cost(config):
            recorder = StatsRecorder()
            cracker = PartialSidewaysCracker(rel, config=config,
                                             recorder=recorder)
            cracker.select_project("A", Interval.open(0, 9 * 10**5), ["B"])
            return recorder.root.chunk_creations

        bounded = first_query_cost(PartialConfig(max_chunk_tuples=1_000))
        unbounded = first_query_cost(PartialConfig())
        assert bounded > unbounded  # many small chunks vs one big one
