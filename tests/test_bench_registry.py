"""Registry core: registration, lookup, duplicates, and built-in entries."""

import numpy as np
import pytest

from repro.bench.registry import (
    DATASETS,
    ENGINES,
    EXPERIMENTS,
    GATES,
    METRICS,
    WORKLOADS,
    ExperimentSpec,
    Registry,
    RegistryError,
)
from repro.bench.registry.components import make_engine, uniform_table
from repro.bench.registry.config import ConfigError, parse_config


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.add("alpha", 1)
        assert reg.get("alpha") == 1
        assert "alpha" in reg
        assert len(reg) == 1

    def test_decorator_registration(self):
        reg = Registry("thing")

        @reg.register("named")
        def fn():
            return "x"

        @reg.register()
        def implicit():
            return "y"

        assert reg.get("named") is fn
        assert reg.get("implicit") is implicit

    def test_duplicate_name_rejected(self):
        reg = Registry("thing")
        reg.add("alpha", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.add("alpha", 2)
        # The original registration survives the failed re-registration.
        assert reg.get("alpha") == 1

    def test_unknown_name_suggests_close_match(self):
        reg = Registry("thing")
        reg.add("exp16", 1)
        with pytest.raises(RegistryError, match="did you mean exp16"):
            reg.get("exp61")

    def test_unknown_name_lists_registered(self):
        reg = Registry("thing")
        reg.add("alpha", 1)
        with pytest.raises(RegistryError, match="alpha"):
            reg.get("zzz")

    def test_nameless_registration_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError, match="string name"):
            reg.add(None, 1)

    def test_names_and_items_sorted(self):
        reg = Registry("thing")
        reg.add("b", 2)
        reg.add("a", 1)
        assert reg.names() == ["a", "b"]
        assert list(reg.items()) == [("a", 1), ("b", 2)]


class TestBuiltinRegistrations:
    def test_experiments_registered(self):
        for name in ("kernels", "exp14", "exp15", "exp16", "exp17",
                     "exp18", "exp19"):
            spec = EXPERIMENTS.get(name)
            assert isinstance(spec, ExperimentSpec)
            assert spec.name == name

    def test_gated_experiments_have_registered_gates(self):
        for name, spec in EXPERIMENTS.items():
            if spec.gate is not None:
                assert spec.gate in GATES, name
            if spec.metrics is not None:
                assert spec.metrics in METRICS, name

    def test_engines_cover_harness_factories(self):
        from repro.bench.harness import ENGINE_FACTORIES

        for name in ENGINE_FACTORIES:
            assert name in ENGINES

    def test_datasets_and_workloads(self):
        assert "uniform_table" in DATASETS
        assert len(WORKLOADS) >= 1


class TestComponents:
    def test_uniform_table_bit_compatible_with_inline_builder(self):
        # The ported drivers must draw the exact RNG stream the legacy
        # inline builders drew, or BENCH outputs silently change.
        rows, domain, seed = 1000, 500, 42
        table = uniform_table(rows, domain, seed)
        rng = np.random.default_rng(seed)
        for attr in ("A", "B"):
            expected = rng.integers(1, domain + 1, size=rows).astype(np.int64)
            np.testing.assert_array_equal(table[attr], expected)

    def test_uniform_table_zero_based_variant(self):
        rows, domain, seed = 512, 100, 7
        table = uniform_table(rows, domain, seed, attrs=("A", "B", "C"),
                              low=0, high=domain)
        rng = np.random.default_rng(seed)
        for attr in ("A", "B", "C"):
            expected = rng.integers(0, domain, size=rows).astype(np.int64)
            np.testing.assert_array_equal(table[attr], expected)

    def test_make_engine_resolves_registry(self):
        from repro.engine.database import Database

        db = Database()
        db.create_table("R", uniform_table(256, 64, 3))
        engine = make_engine("selection_cracking", db)
        assert engine is not None
        with pytest.raises(RegistryError):
            make_engine("no_such_engine", db)


class TestConfigParsing:
    def test_minimal_config(self):
        cfg = parse_config({"experiment": {"name": "exp16"}})
        assert cfg.name == "exp16"
        assert cfg.scale is None
        assert cfg.cells() == [{}]

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError, match="unknown section"):
            parse_config({"experiment": {"name": "x"}, "exxperiment": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown key"):
            parse_config({"experiment": {"name": "x", "scal": 0.1}})
        with pytest.raises(ConfigError, match="unknown key"):
            parse_config({"experiment": {"name": "x"},
                          "artifact": {"compat": "y.json"}})

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError, match="needs a string 'name'"):
            parse_config({"experiment": {"scale": 0.1}})

    def test_type_validation(self):
        with pytest.raises(ConfigError, match="scale must be a number"):
            parse_config({"experiment": {"name": "x", "scale": "big"}})
        with pytest.raises(ConfigError, match="seed must be an integer"):
            parse_config({"experiment": {"name": "x", "seed": 1.5}})

    def test_params_sweep_overlap_rejected(self):
        with pytest.raises(ConfigError, match="both"):
            parse_config({
                "experiment": {"name": "x"},
                "params": {"queries": 10},
                "sweep": {"queries": [10, 20]},
            })

    def test_empty_sweep_list_rejected(self):
        with pytest.raises(ConfigError, match="non-empty list"):
            parse_config({"experiment": {"name": "x"}, "sweep": {"q": []}})

    def test_sweep_expansion_is_deterministic_cartesian(self):
        cfg = parse_config({
            "experiment": {"name": "x"},
            "params": {"fixed": 1},
            "sweep": {"a": [1, 2], "b": ["u", "v"]},
        })
        assert cfg.cells() == [
            {"fixed": 1, "a": 1, "b": "u"},
            {"fixed": 1, "a": 1, "b": "v"},
            {"fixed": 1, "a": 2, "b": "u"},
            {"fixed": 1, "a": 2, "b": "v"},
        ]

    def test_compat_json_true_means_spec_default(self):
        cfg = parse_config({"experiment": {"name": "x"},
                            "artifact": {"compat_json": True}})
        assert cfg.compat_json is None
        cfg = parse_config({"experiment": {"name": "x"},
                            "artifact": {"compat_json": False}})
        assert cfg.compat_json is False

    def test_checked_in_ci_configs_parse(self):
        from pathlib import Path

        from repro.bench.registry.config import load_config

        ci_dir = Path(__file__).resolve().parent.parent / "ci"
        configs = sorted(p for p in ci_dir.glob("*.toml")
                         if p.name != "gates.toml")
        assert len(configs) >= 6
        for path in configs:
            cfg = load_config(path)
            assert cfg.name in EXPERIMENTS
