"""Deep property tests for alignment under interleaved queries and updates.

The correctness keystone of the whole design: however selections, inserts,
deletions, and map creations interleave, (a) any two maps brought to the
same tape position hold bit-identical head permutations, and (b) query
results always match a naive oracle over the live data.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial import PartialSidewaysCracker
from repro.core.sideways import SidewaysCracker
from repro.cracking.bounds import Interval
from repro.storage.relation import Relation

DOMAIN = 100

op = st.one_of(
    st.tuples(st.just("query"), st.sampled_from(["B", "C"]), st.integers(0, 90),
              st.integers(2, 40)),
    st.tuples(st.just("insert"), st.integers(1, 8)),
    st.tuples(st.just("delete"), st.integers(1, 5)),
)


class Oracle:
    """Mirror of the live data for cross-checking."""

    def __init__(self, arrays):
        self.data = {k: list(v) for k, v in arrays.items()}
        self.dead: set[int] = set()

    def insert(self, rows):
        for attr, values in rows.items():
            self.data[attr].extend(int(v) for v in values)

    def delete(self, keys):
        self.dead.update(int(k) for k in keys)

    def live_keys(self):
        return [k for k in range(len(self.data["A"])) if k not in self.dead]

    def select(self, interval, proj):
        return sorted(
            self.data[proj][k]
            for k in self.live_keys()
            if interval.contains(self.data["A"][k])
        )


def _drive(cracker_factory, seed, ops):
    rng = np.random.default_rng(seed)
    arrays = {c: rng.integers(0, DOMAIN, size=120).astype(np.int64) for c in "ABC"}
    rel = Relation.from_arrays("R", arrays)
    oracle = Oracle(arrays)
    # Like the Database facade: map sets created after deletions must
    # exclude the dead keys from their snapshots.
    cracker = cracker_factory(
        rel,
        tombstone_keys=lambda: np.array(sorted(oracle.dead), dtype=np.int64),
    )
    next_key = len(rel)
    for operation in ops:
        if operation[0] == "query":
            _, proj, lo, width = operation
            iv = Interval.open(lo, lo + width)
            got = sorted(cracker.select_project("A", iv, [proj])[proj].tolist())
            assert got == oracle.select(iv, proj)
        elif operation[0] == "insert":
            count = operation[1]
            rows = {c: rng.integers(0, DOMAIN, size=count).astype(np.int64)
                    for c in "ABC"}
            keys = np.arange(next_key, next_key + count, dtype=np.int64)
            next_key += count
            rel.append_rows(rows)
            cracker.notify_insertions(rows, keys)
            oracle.insert(rows)
        else:
            count = operation[1]
            live = oracle.live_keys()
            if not live:
                continue
            count = min(count, len(live))
            victims = rng.choice(live, size=count, replace=False).astype(np.int64)
            values = {
                attr: np.array([oracle.data[attr][int(k)] for k in victims],
                               dtype=np.int64)
                for attr in cracker.sets
            }
            cracker.notify_deletions(values, victims)
            oracle.delete(victims)
    return cracker


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), ops=st.lists(op, min_size=3, max_size=14))
def test_full_maps_interleaved_updates_match_oracle(seed, ops):
    cracker = _drive(SidewaysCracker, seed, ops)
    for mapset in cracker.sets.values():
        for cmap in mapset.maps.values():
            mapset.align(cmap)
            cmap.check_invariants()
        heads = [m.head for m in mapset.maps.values()]
        for other in heads[1:]:
            assert np.array_equal(heads[0], other)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), ops=st.lists(op, min_size=3, max_size=12))
def test_partial_maps_interleaved_updates_match_oracle(seed, ops):
    cracker = _drive(PartialSidewaysCracker, seed, ops)
    for pset in cracker.sets.values():
        if pset.chunkmap is not None:
            pset.chunkmap.check_invariants()
        for pmap in pset.maps.values():
            for chunk in pmap.chunks.values():
                chunk.check_invariants()
