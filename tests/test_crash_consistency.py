"""Crash consistency: SIGKILL the checkpointing worker, recover, compare.

The harness (:mod:`repro.server.crashkit`) checkpoints atomically after
every workload step, with progress recorded *inside* the snapshot.  Killing
the worker at an arbitrary step and resuming from its snapshot must land on
exactly the state an uninterrupted run produces.
"""

import os
import pathlib
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import PersistError
from repro.server import crashkit
from repro.storage.persist import load_database

STEPS = 24
SEED = 7
ROWS = 3_000


def _serial_signature(tmp_path: pathlib.Path) -> tuple:
    db = crashkit.run_worker(tmp_path / "serial.snap", STEPS, SEED, rows=ROWS)
    return crashkit.state_signature(db)


def test_sigkill_mid_run_then_resume_is_bit_identical(tmp_path):
    snapshot = tmp_path / "crash.snap"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(pathlib.Path("src").resolve()),
                      env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server.crashkit", str(snapshot),
         "--steps", str(STEPS), "--seed", str(SEED), "--rows", str(ROWS)],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        # Let a handful of checkpoints land, then pull the plug mid-flight.
        for _ in range(5):
            line = proc.stdout.readline()
            assert line.startswith("step "), line
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL

    # The surviving snapshot is complete and records partial progress.
    recovered = load_database(snapshot)
    done = crashkit.completed_steps(recovered)
    assert 0 < done < STEPS

    # Recovery is just running the worker again: it resumes after the
    # recorded step and must converge on the uninterrupted serial state.
    final = crashkit.run_worker(snapshot, STEPS, SEED, rows=ROWS)
    assert crashkit.completed_steps(final) == STEPS
    assert crashkit.state_signature(final) == _serial_signature(tmp_path)


def test_resume_is_idempotent(tmp_path):
    snapshot = tmp_path / "idem.snap"
    crashkit.run_worker(snapshot, 10, SEED, rows=ROWS)
    first = crashkit.state_signature(load_database(snapshot))
    # Re-running a finished workload replays nothing and changes nothing.
    again = crashkit.run_worker(snapshot, 10, SEED, rows=ROWS)
    assert crashkit.state_signature(again) == first


def test_partial_checkpoint_interval_still_recovers(tmp_path):
    # Checkpoint every 5 steps: a crash loses at most 4 steps of work, and
    # the replay of (seed, step)-keyed steps restores them exactly.
    sparse = tmp_path / "sparse.snap"
    db = crashkit.run_worker(sparse, 13, SEED, rows=ROWS, checkpoint_every=5)
    assert crashkit.completed_steps(load_database(sparse)) == 13  # final step
    assert crashkit.state_signature(db) == crashkit.state_signature(
        crashkit.run_worker(tmp_path / "dense.snap", 13, SEED, rows=ROWS)
    )


def test_torn_temp_file_never_shadows_snapshot(tmp_path):
    snapshot = tmp_path / "torn.snap"
    db = crashkit.run_worker(snapshot, 4, SEED, rows=ROWS)
    want = crashkit.state_signature(db)
    # A crash mid-write leaves a torn temporary; the real snapshot must be
    # untouched and the temporary must never be read.
    (tmp_path / "torn.snap.tmp").write_bytes(b"half-written garbage")
    assert crashkit.state_signature(load_database(snapshot)) == want
    crashkit.checkpoint(db, snapshot)  # the next checkpoint replaces cleanly
    assert not (tmp_path / "torn.snap.tmp").exists()


def test_damaged_snapshot_fails_loudly(tmp_path):
    snapshot = tmp_path / "damaged.snap"
    crashkit.run_worker(snapshot, 3, SEED, rows=ROWS)
    blob = bytearray(snapshot.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    snapshot.write_bytes(bytes(blob))
    with pytest.raises(PersistError):
        load_database(snapshot)


def test_per_step_rng_is_pure(tmp_path):
    # Same (seed, step) → same step, regardless of how the run was chunked.
    db = crashkit.seed_database(ROWS, SEED)
    from repro.engine.selection_cracking import SelectionCrackingEngine

    engine = SelectionCrackingEngine(db)
    counts = [crashkit.apply_step(db, engine, s, SEED) for s in (1, 2, 3)]

    db2 = crashkit.seed_database(ROWS, SEED)
    engine2 = SelectionCrackingEngine(db2)
    counts2 = [crashkit.apply_step(db2, engine2, s, SEED) for s in (1, 2, 3)]
    assert counts == counts2
    assert np.array_equal(
        db.table(crashkit.TABLE).values("A"),
        db2.table(crashkit.TABLE).values("A"),
    )
