"""Cracker columns: selection cracking with on-demand updates."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.storage.bat import BAT


@pytest.fixture
def values(rng):
    return rng.integers(1, 10_001, size=3_000).astype(np.int64)


@pytest.fixture
def column(values):
    return CrackerColumn(BAT.from_values(values))


class TestSelect:
    def test_select_matches_oracle(self, column, values, rng):
        for _ in range(20):
            lo = int(rng.integers(0, 9_000))
            iv = Interval.open(lo, lo + 1_000)
            keys = column.select(iv)
            expected = np.flatnonzero(iv.mask(values))
            assert np.array_equal(np.sort(keys), expected)
        column.check_invariants()

    def test_point_query(self, column, values):
        target = int(values[0])
        keys = column.select(Interval.point(target))
        assert np.array_equal(np.sort(keys), np.flatnonzero(values == target))

    def test_count(self, column, values):
        iv = Interval.open(100, 5_000)
        assert column.count(iv) == int(iv.mask(values).sum())

    def test_pieces_accumulate(self, column, rng):
        before = column.index.piece_count
        column.select(Interval.open(10, 20))
        assert column.index.piece_count > before


class TestUpdates:
    def test_insert_visible_after_merge(self, column, values):
        column.add_insertions(np.array([5_000]), np.array([99_999]))
        keys = column.select(Interval.open(4_999, 5_001))
        assert 99_999 in keys

    def test_insert_outside_range_stays_pending(self, column):
        column.add_insertions(np.array([5_000]), np.array([99_999]))
        column.select(Interval.open(8_000, 9_000))
        assert column.pending.insertion_count == 1

    def test_delete_removes_key(self, column, values):
        victim = 7
        column.add_deletions(np.array([values[victim]]), np.array([victim]))
        iv = Interval.closed(int(values[victim]), int(values[victim]))
        keys = column.select(iv)
        assert victim not in keys

    def test_mixed_update_stream_matches_oracle(self, values, rng):
        column = CrackerColumn(BAT.from_values(values))
        live = {int(k): int(v) for k, v in enumerate(values)}
        next_key = len(values)
        for step in range(15):
            # Insert a few rows.
            new_vals = rng.integers(1, 10_001, size=5).astype(np.int64)
            new_keys = np.arange(next_key, next_key + 5, dtype=np.int64)
            next_key += 5
            column.add_insertions(new_vals, new_keys)
            live.update(zip(new_keys.tolist(), new_vals.tolist()))
            # Delete a few live rows.
            victims = rng.choice(sorted(live), size=3, replace=False)
            column.add_deletions(
                np.array([live[int(k)] for k in victims]), victims.astype(np.int64)
            )
            for k in victims:
                del live[int(k)]
            # Query a random range.
            lo = int(rng.integers(0, 9_000))
            iv = Interval.open(lo, lo + 1_500)
            keys = column.select(iv)
            expected = sorted(k for k, v in live.items() if iv.contains(v))
            assert sorted(keys.tolist()) == expected
        column.check_invariants()

    def test_invariants_after_heavy_updates(self, column, rng, values):
        for _ in range(10):
            column.add_insertions(
                rng.integers(1, 10_001, size=50).astype(np.int64),
                rng.integers(10**6, 10**7, size=50).astype(np.int64),
            )
            lo = int(rng.integers(0, 8_000))
            column.select(Interval.open(lo, lo + 2_000))
        column.check_invariants()
