"""Adversarial workload generators and engine-vs-scan correctness."""

import numpy as np
import pytest

from repro.cracking.stochastic import POLICY_NAMES, resolve_policy
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.engine.scan import PlainEngine
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.engine.sideways_engine import SidewaysEngine
from repro.stats.counters import StatsRecorder
from repro.workloads.synthetic import ADVERSARIAL_PATTERNS, adversarial_intervals

ROWS = 1_200
DOMAIN = 8_000
QUERIES = 18
SELECTIVITY = 0.02


# -- generator sanity ----------------------------------------------------------


@pytest.mark.parametrize("pattern", ADVERSARIAL_PATTERNS)
def test_generator_shape(pattern):
    intervals = adversarial_intervals(pattern, DOMAIN, QUERIES, SELECTIVITY, seed=3)
    assert len(intervals) == QUERIES
    width = max(1, round(SELECTIVITY * DOMAIN))
    for iv in intervals:
        assert 0 <= iv.lo <= DOMAIN
        assert iv.hi - iv.lo == width
        assert iv.hi <= DOMAIN


def test_generator_determinism_and_direction():
    a = adversarial_intervals("skewed_jump", DOMAIN, QUERIES, SELECTIVITY, seed=5)
    b = adversarial_intervals("skewed_jump", DOMAIN, QUERIES, SELECTIVITY, seed=5)
    assert [(iv.lo, iv.hi) for iv in a] == [(iv.lo, iv.hi) for iv in b]
    seq = adversarial_intervals("sequential", DOMAIN, QUERIES, SELECTIVITY)
    assert [iv.lo for iv in seq] == sorted(iv.lo for iv in seq)
    rev = adversarial_intervals("reverse_sequential", DOMAIN, QUERIES, SELECTIVITY)
    assert [iv.lo for iv in rev] == sorted((iv.lo for iv in rev), reverse=True)


def test_generator_unknown_pattern():
    with pytest.raises(ValueError):
        adversarial_intervals("nope", DOMAIN, QUERIES, SELECTIVITY)


# -- engines return scan-identical results under every policy ------------------


def _arrays():
    rng = np.random.default_rng(17)
    return {
        "A": rng.integers(1, DOMAIN + 1, ROWS).astype(np.int64),
        "B": rng.integers(1, DOMAIN + 1, ROWS).astype(np.int64),
    }


def _run(engine_name, policy_name, intervals, arrays):
    db = Database(recorder=StatsRecorder(),
                  crack_policy=_small_policy(policy_name))
    db.create_table("R", {k: v.copy() for k, v in arrays.items()})
    engine = {
        "monetdb": lambda: PlainEngine(db),
        "selection_cracking": lambda: SelectionCrackingEngine(db),
        "sideways": lambda: SidewaysEngine(db, partial=False),
        "partial_sideways": lambda: SidewaysEngine(db, partial=True),
    }[engine_name]()
    out = []
    for iv in intervals:
        result = engine.run(
            Query(table="R", predicates=(Predicate("A", iv),), projections=("B",))
        )
        out.append(np.sort(result.columns["B"]))
    return out


def _small_policy(policy_name):
    policy = resolve_policy(policy_name)
    if policy is not None:
        policy.min_piece = 24  # actually exercise cuts at this tiny scale
    return policy


@pytest.mark.parametrize("policy_name", list(POLICY_NAMES))
@pytest.mark.parametrize("pattern", ["sequential", "zoom_in"])
@pytest.mark.parametrize(
    "engine_name", ["selection_cracking", "sideways", "partial_sideways"]
)
def test_engines_match_scan(engine_name, pattern, policy_name):
    arrays = _arrays()
    intervals = adversarial_intervals(pattern, DOMAIN, QUERIES, SELECTIVITY, seed=1)
    baseline = _run("monetdb", None, intervals, arrays)
    results = _run(engine_name, policy_name, intervals, arrays)
    for i, (want, got) in enumerate(zip(baseline, results)):
        assert np.array_equal(want, got), f"query {i} diverged"
