"""The serving wire protocol: ServerHandle and the asyncio TCP front."""

import asyncio
import contextlib
import json

import pytest

from repro.server.serve import (
    MAX_FRAME_BYTES,
    CrackServer,
    ServerHandle,
    client_request,
)


@pytest.fixture
def handle(db):
    with ServerHandle(db, workers=2, partitions=4,
                      partition_attrs=(("R", "A"),)) as h:
        yield h


def test_handle_ping_and_stats(handle):
    assert handle.request({"op": "ping"}) == {"ok": True, "result": "pong"}
    stats = handle.request({"op": "stats"})
    assert stats["ok"] and stats["result"]["workers"] == 2


def test_handle_query_payload(handle):
    response = handle.request(
        {"sql": "select A, B from R where A between 100 and 30000"}
    )
    assert response["ok"]
    result = response["result"]
    assert result["row_count"] == len(result["columns"]["A"])
    assert result["path"] == "partition"
    assert set(result["aggregates"]) == set()
    repeat = handle.request(
        {"sql": "select A, B from R where A between 100 and 30000"}
    )
    assert repeat["result"]["cached"]
    assert repeat["result"]["digest"] == result["digest"]


def test_handle_rejects_bad_requests(handle):
    assert not handle.request({"op": "flush"})["ok"]
    assert not handle.request({"op": "query"})["ok"]  # no sql
    assert not handle.request({"sql": 42})["ok"]
    assert not handle.request({"sql": "select A from R", "timeout": "x"})["ok"]
    bad_sql = handle.request({"sql": "selec A from R"})
    assert not bad_sql["ok"] and bad_sql["kind"] in ("SqlError", "PlanError")


def _with_server(db, scenario):
    """Run ``scenario(host, port)`` against a live TCP server."""

    async def main():
        with ServerHandle(db, workers=2, partitions=4,
                          partition_attrs=(("R", "A"),)) as handle:
            server = CrackServer(handle, port=0)
            host, port = await server.start()
            task = asyncio.create_task(server.serve_forever())
            try:
                return await scenario(host, port)
            finally:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                await server.stop()

    return asyncio.run(main())


def test_tcp_roundtrip(db):
    async def scenario(host, port):
        pong = await client_request(host, port, {"op": "ping"})
        assert pong == {"ok": True, "result": "pong"}
        reply = await client_request(
            host, port, {"sql": "select A from R where A < 20000"}
        )
        assert reply["ok"] and reply["result"]["row_count"] > 0
        stats = await client_request(host, port, {"op": "stats"})
        assert stats["result"]["queries_served"] == 1

    _with_server(db, scenario)


def test_tcp_pipelined_requests_one_connection(db):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        for lo in (100, 5_000, 20_000):
            frame = {"sql": f"select A from R where A between {lo} and {lo + 999}"}
            writer.write(json.dumps(frame).encode() + b"\n")
        await writer.drain()
        replies = [json.loads(await reader.readline()) for _ in range(3)]
        writer.close()
        await writer.wait_closed()
        assert all(r["ok"] for r in replies)

    _with_server(db, scenario)


def test_tcp_malformed_frames(db):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"this is not json\n")
        writer.write(b"[1, 2, 3]\n")
        writer.write(json.dumps({"op": "nope"}).encode() + b"\n")
        await writer.drain()
        replies = [json.loads(await reader.readline()) for _ in range(3)]
        writer.close()
        await writer.wait_closed()
        assert [r["ok"] for r in replies] == [False, False, False]
        assert "malformed" in replies[0]["error"]
        assert "JSON object" in replies[1]["error"]
        assert "unknown op" in replies[2]["error"]

    _with_server(db, scenario)


def test_tcp_oversized_frame_gets_error(db):
    # readline signals an over-limit line as ValueError; the server must
    # answer with an error frame, not die with an unhandled exception.
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"x" * (MAX_FRAME_BYTES + 4_096))
        writer.write(b"\n")
        await writer.drain()
        reply = json.loads(await reader.readline())
        assert not reply["ok"]
        assert "frame too large or connection broken" in reply["error"]
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()

    _with_server(db, scenario)


def test_tcp_concurrent_clients_agree(db):
    async def scenario(host, port):
        frame = {"sql": "select A, B from R where B between 1000 and 60000"}
        replies = await asyncio.gather(
            *(client_request(host, port, frame) for _ in range(12))
        )
        digests = {r["result"]["digest"] for r in replies}
        assert all(r["ok"] for r in replies)
        assert len(digests) == 1  # every client sees the same canonical bytes

    _with_server(db, scenario)


def test_handle_health_op(handle):
    reply = handle.request({"op": "health"})
    assert reply["ok"]
    health = reply["result"]
    assert health["ready"] is True
    assert health["draining"] is False
    assert {"degraded", "queue_depth", "inflight", "shed", "abandoned",
            "breakers", "workers_alive"} <= set(health)


def test_tcp_overload_sheds_with_typed_error(db):
    """A shed request answers a typed ``ServerOverloaded`` frame (clients
    back off) while the admitted request still completes."""
    import threading

    async def main():
        with ServerHandle(db, workers=1, max_inflight=1,
                          shed_policy="reject-newest") as handle:
            server = CrackServer(handle, port=0)
            host, port = await server.start()
            task = asyncio.create_task(server.serve_forever())
            lock = handle.executor.registry.lock_for("R")
            acquired = threading.Event()
            release = threading.Event()

            def holder():
                with lock.write():
                    acquired.set()
                    release.wait(timeout=30)

            t = threading.Thread(target=holder)
            t.start()
            acquired.wait(timeout=5)
            try:
                blocked = asyncio.create_task(client_request(
                    host, port, {"sql": "select A from R where A < 20000"}
                ))
                for _ in range(1_000):  # until the request is in flight
                    if handle.executor.stats()["inflight"] >= 1:
                        break
                    await asyncio.sleep(0.005)
                else:
                    pytest.fail("blocked query never started executing")
                shed = await client_request(
                    host, port, {"sql": "select B from R where B < 100"}
                )
                assert not shed["ok"]
                assert shed["kind"] == "ServerOverloaded"
                assert "reject-newest" in shed["error"]
            finally:
                release.set()
                t.join(timeout=10)
            first = await blocked
            assert first["ok"] and first["result"]["row_count"] > 0
            health = await client_request(host, port, {"op": "health"})
            assert health["result"]["shed"] == 1
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            await server.stop()

    asyncio.run(main())
