"""The command-line interface."""

import pytest

from repro.cli import ABLATIONS, EXPERIMENTS, EXTENSIONS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        for name in ABLATIONS:
            assert f"abl:{name}" in out
        for name in EXTENSIONS:
            assert f"ext:{name}" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "exp99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_experiment_small(self, capsys):
        assert main(["run", "exp03", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "exp03" in out
        assert "unordered" in out

    def test_run_ablation(self, capsys):
        assert main(["run", "abl:crack_kernels", "--scale", "0.2"]) == 0
        assert "crack_in_three" in capsys.readouterr().out

    def test_run_extension(self, capsys):
        assert main(["run", "ext:piece_max", "--scale", "0.2"]) == 0
        assert "piece_exploiting" in capsys.readouterr().out


class TestVerify:
    def test_verify_agrees(self, capsys):
        assert main(["verify", "--scale", "0.5", "--variations", "1"]) == 0
        assert "OK" in capsys.readouterr().out
