"""Chunk maps, areas, chunks: the partial-map building blocks."""

import numpy as np
import pytest

from repro.core.partial.chunk import Chunk
from repro.core.partial.chunkmap import ChunkMap
from repro.core.partial.partial_map import PartialMap
from repro.core.tape import CrackEntry, CrackerTape
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.errors import AlignmentError
from repro.storage.relation import Relation


@pytest.fixture
def rel(rng):
    return Relation.from_arrays(
        "R", {c: rng.integers(0, 10_000, size=2_000).astype(np.int64) for c in "AB"}
    )


@pytest.fixture
def chunkmap(rel):
    return ChunkMap(rel, "A", snapshot_rows=len(rel))


class TestCover:
    def test_initially_one_unfetched_area(self, chunkmap):
        assert len(chunkmap.areas) == 1
        assert not chunkmap.areas[0].fetched

    def test_cover_cracks_and_fetches_exact_range(self, chunkmap, rel):
        iv = Interval.open(2_000, 5_000)
        areas = chunkmap.cover(iv)
        assert len(areas) == 1
        area = areas[0]
        assert area.fetched
        lo, hi = chunkmap.area_positions(area)
        assert hi - lo == int(iv.mask(rel.values("A")).sum())
        chunkmap.check_invariants()

    def test_cover_reuses_fetched_areas(self, chunkmap):
        iv = Interval.open(2_000, 5_000)
        first = chunkmap.cover(iv)
        second = chunkmap.cover(iv)
        assert [a.area_id for a in first] == [a.area_id for a in second]

    def test_overlapping_covers_fetch_boundary_areas_whole(self, chunkmap, rel):
        chunkmap.cover(Interval.open(2_000, 5_000))
        areas = chunkmap.cover(Interval.open(4_000, 7_000))
        # The already-fetched [2k,5k) area is included whole (not re-cracked),
        # plus a freshly fetched [5k,7k) area.
        assert len(areas) == 2
        chunkmap.check_invariants()

    def test_unbounded_cover_fetches_everything(self, chunkmap):
        areas = chunkmap.cover(Interval())
        assert all(a.fetched for a in areas)
        total = sum(chunkmap.area_size(a) for a in areas)
        assert total == len(chunkmap)

    def test_area_clip(self, chunkmap):
        chunkmap.cover(Interval.open(2_000, 5_000))
        area = next(a for a in chunkmap.areas if a.fetched)
        # A predicate reaching beyond the area needs no clip bounds.
        lo, hi = area.clip(Interval.open(1_000, 6_000))
        assert lo is None and hi is None
        # A predicate cutting inside needs a chunk-level crack.
        lo, hi = area.clip(Interval.open(3_000, 6_000))
        assert lo is not None and hi is None


class TestRefsAndUnfetch:
    def test_last_ref_drop_unfetches(self, chunkmap):
        areas = chunkmap.cover(Interval.open(1_000, 2_000))
        area = areas[0]
        chunkmap.add_ref(area, "m1")
        chunkmap.add_ref(area, "m2")
        chunkmap.drop_ref(area, "m1")
        assert area.fetched
        chunkmap.drop_ref(area, "m2")
        assert not area.fetched
        assert area.tape is None

    def test_pinned_area_stays_fetched(self, chunkmap):
        areas = chunkmap.cover(Interval.open(1_000, 2_000))
        area = areas[0]
        area.pin_count = 1
        chunkmap.add_ref(area, "m1")
        chunkmap.drop_ref(area, "m1")
        assert area.fetched


class TestChunks:
    def _make_chunk(self, chunkmap, rel, interval) -> tuple[PartialMap, object, Chunk]:
        pmap = PartialMap(chunkmap, "B")
        area = chunkmap.cover(interval)[0]
        chunk = pmap.create_chunk(area)
        return pmap, area, chunk

    def test_create_chunk_fetches_tail(self, chunkmap, rel):
        iv = Interval.open(2_000, 5_000)
        pmap, area, chunk = self._make_chunk(chunkmap, rel, iv)
        a, b = rel.values("A"), rel.values("B")
        expected = sorted(b[iv.mask(a)].tolist())
        assert sorted(chunk.tail.tolist()) == expected
        assert np.array_equal(chunk.head, chunkmap.area_slice(area)[0])

    def test_chunk_crack_local_positions(self, chunkmap, rel):
        iv = Interval.open(0, 8_000)
        pmap, area, chunk = self._make_chunk(chunkmap, rel, iv)
        sub = Interval.open(3_000, 4_000)
        lo, hi = chunk.crack(sub)
        a, b = rel.values("A"), rel.values("B")
        assert sorted(chunk.tail[lo:hi].tolist()) == sorted(b[sub.mask(a)].tolist())
        chunk.check_invariants()

    def test_duplicate_chunk_rejected(self, chunkmap, rel):
        iv = Interval.open(2_000, 5_000)
        pmap, area, chunk = self._make_chunk(chunkmap, rel, iv)
        with pytest.raises(AlignmentError):
            pmap.create_chunk(area)

    def test_chunk_for_unfetched_area_rejected(self, chunkmap, rel):
        pmap = PartialMap(chunkmap, "B")
        with pytest.raises(AlignmentError):
            pmap.create_chunk(chunkmap.areas[0])


class TestHeadDropRecovery:
    def test_recover_from_chunkmap(self, chunkmap, rel, rng):
        iv = Interval.open(0, 9_000)
        pmap = PartialMap(chunkmap, "B")
        area = chunkmap.cover(iv)[0]
        chunk = pmap.create_chunk(area)
        # Crack a few times, logging to the area tape.
        for _ in range(4):
            lo = int(rng.integers(0, 8_000))
            sub = Interval.open(lo, lo + 500)
            chunk.crack(sub)
            area.tape.append_crack(sub)
            chunk.cursor = len(area.tape)
        before_head = chunk.head.copy()
        before_tail = chunk.tail.copy()
        chunk.drop_head()
        assert chunk.storage_cells == len(chunk)
        with pytest.raises(AlignmentError):
            chunk.crack(Interval.open(1, 2))
        head_slice, _ = chunkmap.area_slice(area)
        chunk.recover_head(area.tape, head_slice, CrackerIndex(), 0)
        assert np.array_equal(chunk.head, before_head)
        assert np.array_equal(chunk.tail, before_tail)

    def test_recover_from_less_aligned_sibling(self, chunkmap, rel, rng):
        iv = Interval.open(0, 9_000)
        pmap_b = PartialMap(chunkmap, "B")
        pmap_k = PartialMap(chunkmap, "@key")
        area = chunkmap.cover(iv)[0]
        chunk_b = pmap_b.create_chunk(area)
        chunk_k = pmap_k.create_chunk(area)
        subs = [Interval.open(int(l), int(l) + 700) for l in (1_000, 4_000, 6_500)]
        for sub in subs:
            chunk_b.crack(sub)
            area.tape.append_crack(sub)
            chunk_b.cursor = len(area.tape)
        # Sibling only partially aligned.
        pmap_k.align_chunk(chunk_k, area, upto=1)
        expected = chunk_b.head.copy()
        chunk_b.drop_head()
        chunk_b.recover_head(area.tape, chunk_k.head, chunk_k.index, chunk_k.cursor)
        assert np.array_equal(chunk_b.head, expected)

    def test_recovery_source_past_chunk_rejected(self, chunkmap, rel):
        iv = Interval.open(0, 9_000)
        pmap = PartialMap(chunkmap, "B")
        area = chunkmap.cover(iv)[0]
        chunk = pmap.create_chunk(area)
        chunk.drop_head()
        with pytest.raises(AlignmentError):
            chunk.recover_head(area.tape, np.arange(len(chunk)), CrackerIndex(), 5)

    def test_sort_all_pieces_logs_and_sorts(self, chunkmap, rel, rng):
        iv = Interval.open(0, 9_000)
        pmap = PartialMap(chunkmap, "B")
        area = chunkmap.cover(iv)[0]
        chunk = pmap.create_chunk(area)
        sub = Interval.open(3_000, 6_000)
        chunk.crack(sub)
        area.tape.append_crack(sub)
        chunk.cursor = len(area.tape)
        entries_before = len(area.tape)
        chunk.sort_all_pieces(area.tape)
        assert len(area.tape) > entries_before
        for piece in chunk.index.pieces(len(chunk)):
            seg = chunk.head[piece.lo_pos:piece.hi_pos]
            assert np.array_equal(seg, np.sort(seg))
        # A sibling replaying the tape ends up identical.
        sibling = PartialMap(chunkmap, "@key").create_chunk(area)
        while sibling.cursor < len(area.tape):
            sibling.replay_entry(area.tape[sibling.cursor])
        assert np.array_equal(sibling.head, chunk.head)
