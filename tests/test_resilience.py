"""Resilience primitives and executor admission control under overload."""

import threading
import time

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.query import Predicate, Query
from repro.errors import QueryTimeout, ServerError, ServerOverloaded
from repro.server.executor import SHED_POLICIES, ServedQuery, ServerExecutor
from repro.server.resilience import (
    CLOSED,
    DISPATCH,
    HALF_OPEN,
    OPEN,
    PROBE,
    SHED,
    CircuitBreaker,
    Deadline,
    DecorrelatedJitter,
    ResilienceConfig,
)


def _span(lo, hi, attr="A", **kwargs):
    return Query("R", (Predicate(attr, Interval.half_open(lo, hi)),), **kwargs)


def _blocked_query(lo=0, hi=1):
    """Multi-predicate: takes the classic engine path under the table
    write lock, so a lock holder makes it block for as long as we like."""
    return Query("R", (
        Predicate("C", Interval.half_open(lo, hi)),
        Predicate("D", Interval.half_open(lo, hi)),
    ))


# -- Deadline ----------------------------------------------------------------


class TestDeadline:
    def test_coerce_passthrough_float_and_none(self):
        deadline = Deadline(1.0)
        assert Deadline.coerce(deadline) is deadline
        assert Deadline.coerce(2.0).budget == 2.0
        assert Deadline.coerce(None).budget is None

    def test_budget_counts_from_the_enqueue_instant(self):
        enqueued = time.perf_counter() - 0.5
        deadline = Deadline(1.0, started=enqueued)
        remaining = deadline.remaining()
        assert 0.0 < remaining <= 0.5
        assert not deadline.expired()
        assert 0.5 <= deadline.consumed_fraction() <= 1.0

    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.consumed_fraction() is None

    def test_expired_and_zero_budget(self):
        assert Deadline(0.0).expired()
        assert Deadline(0.0).consumed_fraction() == 1.0
        assert Deadline(1e-9, started=time.perf_counter() - 1.0).expired()

    def test_cancel_is_one_way(self):
        deadline = Deadline(10.0)
        assert not deadline.cancelled
        deadline.cancel()
        deadline.cancel()  # idempotent
        assert deadline.cancelled
        assert not deadline.expired()  # cancellation is not expiry


# -- DecorrelatedJitter ------------------------------------------------------


class TestDecorrelatedJitter:
    def test_identical_seeds_replay_the_same_tape(self):
        a = DecorrelatedJitter(np.random.default_rng(7))
        b = DecorrelatedJitter(np.random.default_rng(7))
        assert [a.next_pause() for _ in range(10)] == \
            [b.next_pause() for _ in range(10)]
        assert a.tape == b.tape and len(a.tape) == 10

    def test_pauses_stay_within_bounds(self):
        jitter = DecorrelatedJitter(
            np.random.default_rng(3), base=0.001, cap=0.01
        )
        for _ in range(50):
            assert 0.001 <= jitter.next_pause() <= 0.01

    def test_reset_restarts_from_base(self):
        jitter = DecorrelatedJitter(
            np.random.default_rng(5), base=0.001, cap=1.0
        )
        for _ in range(20):
            jitter.next_pause()  # let it climb
        jitter.reset()
        # Decorrelated jitter: the first post-reset draw is U(base, 3*base).
        assert jitter.next_pause() <= 0.003

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ServerError, match="base"):
            DecorrelatedJitter(rng, base=0.0, cap=1.0)
        with pytest.raises(ServerError, match="base"):
            DecorrelatedJitter(rng, base=0.5, cap=0.1)


# -- CircuitBreaker ----------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _breaker(clock, **kwargs):
    defaults = dict(window=4, min_calls=2, threshold=0.5, cooldown=10.0)
    defaults.update(kwargs)
    return CircuitBreaker("t.A#0", clock=clock, **defaults)


class TestCircuitBreaker:
    def test_closed_below_min_calls_keeps_dispatching(self, clock):
        breaker = _breaker(clock)
        assert breaker.admit() == DISPATCH
        breaker.record_failure()  # one failure alone cannot open it
        assert breaker.state == CLOSED
        assert breaker.admit() == DISPATCH

    def test_opens_at_failure_rate_threshold(self, clock):
        breaker = _breaker(clock, min_calls=3)
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/2 failed but below min_calls
        breaker.record_failure()        # window [T,F,F]: 2/3 >= 0.5, open
        assert breaker.state == OPEN
        assert breaker.admit() == SHED
        assert breaker.stats()["opens"] == 1

    def test_successes_keep_a_sick_window_from_opening(self, clock):
        breaker = _breaker(clock, window=4)
        for _ in range(4):
            breaker.record_success()
        breaker.record_failure()  # window [T,T,T,F]: 1/4 < 0.5
        assert breaker.state == CLOSED

    def test_cooldown_admits_exactly_one_probe(self, clock):
        breaker = _breaker(clock, min_calls=1, threshold=1.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.admit() == SHED  # inside the cooldown
        clock.advance(10.0)
        assert breaker.admit() == PROBE
        assert breaker.state == HALF_OPEN
        assert breaker.admit() == SHED  # the probe owns the half-open slot
        assert breaker.stats()["probes"] == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = _breaker(clock, min_calls=1, threshold=1.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.admit() == PROBE
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.admit() == SHED  # cooldown restarted at the failure
        clock.advance(1.0)
        assert breaker.admit() == PROBE

    def test_probe_success_recloses_and_clears_history(self, clock):
        breaker = _breaker(clock, min_calls=1, threshold=1.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.admit() == PROBE
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["window"] == []  # the incident is over
        assert breaker.admit() == DISPATCH

    def test_from_config_and_stats_shape(self, clock):
        config = ResilienceConfig(
            breaker_window=6, breaker_min_calls=4,
            breaker_threshold=0.75, breaker_cooldown=2.5,
        )
        breaker = CircuitBreaker.from_config("t.A#1", config, clock=clock)
        assert breaker.min_calls == 4 and breaker.cooldown == 2.5
        stats = breaker.stats()
        assert set(stats) == {
            "state", "opens", "probes", "failures", "successes", "window"
        }
        assert stats["state"] == CLOSED

    def test_validation(self, clock):
        with pytest.raises(ServerError, match="window"):
            _breaker(clock, window=0)
        with pytest.raises(ServerError, match="threshold"):
            _breaker(clock, threshold=0.0)
        with pytest.raises(ServerError, match="threshold"):
            _breaker(clock, threshold=1.5)


# -- executor admission control ----------------------------------------------


class _LockHolder:
    """Hold a table's write lock from a helper thread so any query that
    needs it blocks until :meth:`release`."""

    def __init__(self, executor, table="R"):
        self._acquired = threading.Event()
        self._release = threading.Event()
        lock = executor.registry.lock_for(table)

        def holder():
            with lock.write():
                self._acquired.set()
                self._release.wait(timeout=30)

        self._thread = threading.Thread(target=holder)
        self._thread.start()
        assert self._acquired.wait(timeout=5)

    def release(self):
        self._release.set()
        self._thread.join(timeout=10)


def _wait_inflight(executor, count, timeout=10.0):
    """Block until ``count`` requests left the queue and started executing
    — admission decisions below must not race the worker pickup."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        with executor._admission_mutex:
            if executor._inflight >= count and not executor._queued:
                return
        time.sleep(0.005)
    raise AssertionError(f"never saw {count} in-flight requests")


def test_admission_knob_validation(db):
    with pytest.raises(ServerError, match="max_queue"):
        ServerExecutor(db, max_queue=-1)
    with pytest.raises(ServerError, match="max_inflight"):
        ServerExecutor(db, max_inflight=0)
    with pytest.raises(ServerError, match="shed policy"):
        ServerExecutor(db, shed_policy="coin-flip")
    assert set(SHED_POLICIES) == {
        "reject-newest", "reject-oldest", "deadline-aware"
    }


def test_reject_newest_sheds_the_incoming_request(db):
    with ServerExecutor(
        db, workers=1, max_inflight=1, shed_policy="reject-newest"
    ) as executor:
        holder = _LockHolder(executor)
        try:
            stuck = executor.submit(_blocked_query())
            _wait_inflight(executor, 1)
            with pytest.raises(ServerOverloaded) as caught:
                executor.run(_blocked_query(1, 2))
            assert caught.value.policy == "reject-newest"
        finally:
            holder.release()
        assert stuck.result(timeout=30) is not None
        stats = executor.stats()
        assert stats["shed"] == 1
        assert stats["queue_depth"] == 0


def test_reject_oldest_cancels_the_queued_victim(db):
    with ServerExecutor(
        db, workers=1, max_inflight=2, shed_policy="reject-oldest"
    ) as executor:
        holder = _LockHolder(executor)
        try:
            running = executor.submit(_blocked_query())      # occupies worker
            _wait_inflight(executor, 1)
            victim = executor.submit(_blocked_query(1, 2))   # waits in queue
            survivor = executor.submit(_blocked_query(2, 3))  # evicts victim
            assert victim.cancelled()
            assert not survivor.cancelled()
        finally:
            holder.release()
        assert running.result(timeout=30) is not None
        assert survivor.result(timeout=30) is not None
        assert executor.stats()["shed"] == 1


def test_deadline_aware_sheds_the_hopeless_victim(db):
    with ServerExecutor(
        db, workers=1, max_inflight=2, shed_policy="deadline-aware"
    ) as executor:
        executor.run(_span(0, 50_000))  # seed the p50 service-time estimate
        holder = _LockHolder(executor)
        try:
            running = executor.submit(_blocked_query())
            _wait_inflight(executor, 1)
            # Queued with (effectively) no budget left: by the time a slot
            # frees up this request cannot possibly finish in time.
            hopeless = executor.submit(ServedQuery(_blocked_query(1, 2), timeout=1e-6))
            healthy = executor.submit(_blocked_query(2, 3))
            assert hopeless.cancelled()
            assert not healthy.cancelled()
        finally:
            holder.release()
        assert running.result(timeout=30) is not None
        assert healthy.result(timeout=30) is not None
        assert executor.stats()["shed"] == 1


def test_deadline_aware_falls_back_to_reject_newest(db):
    # No queued victim is hopeless: the incoming request is shed instead.
    with ServerExecutor(
        db, workers=1, max_inflight=2, shed_policy="deadline-aware"
    ) as executor:
        executor.run(_span(0, 50_000))
        holder = _LockHolder(executor)
        try:
            executor.submit(_blocked_query())
            _wait_inflight(executor, 1)
            queued = executor.submit(ServedQuery(_blocked_query(1, 2), timeout=60))
            with pytest.raises(ServerOverloaded):
                executor.run(_blocked_query(2, 3))
            assert not queued.cancelled()
        finally:
            holder.release()


def test_queue_wait_counts_against_the_budget(db):
    """A request admitted with a budget that elapses while it is still
    queued must fail with QueryTimeout — not run anyway."""
    with ServerExecutor(db, workers=1, max_inflight=4) as executor:
        holder = _LockHolder(executor)
        try:
            executor.submit(_blocked_query())
            _wait_inflight(executor, 1)
            doomed = executor.submit(ServedQuery(_blocked_query(1, 2), timeout=0.05))
            time.sleep(0.2)  # budget expires in the queue
        finally:
            holder.release()
        with pytest.raises(QueryTimeout):
            doomed.result(timeout=30)


def test_health_reports_readiness_and_drain(db):
    executor = ServerExecutor(db, workers=2)
    health = executor.health()
    assert health["ready"] is True
    assert health["draining"] is False
    assert health["queue_depth"] == 0
    assert health["inflight"] == 0
    assert health["breakers"] == {}  # no process shards attached
    executor.close()
    assert executor.health()["ready"] is False
    assert executor.health()["draining"] is True


def test_close_sheds_the_queue_and_refuses_new_work(db):
    with ServerExecutor(db, workers=1) as executor:
        holder = _LockHolder(executor)
        try:
            executor.submit(_blocked_query())
            _wait_inflight(executor, 1)
            queued = executor.submit(_blocked_query(1, 2))
            closer = threading.Thread(target=executor.close)
            closer.start()
            time.sleep(0.1)  # close() is draining, waiting on the runner
        finally:
            holder.release()
        closer.join(timeout=30)
        assert queued.cancelled()
        assert executor.stats()["shed"] == 1
        with pytest.raises(ServerError, match="closed"):
            executor.run(_span(0, 10))
