"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.racesan import RaceSan, active_detectors
from repro.analysis.sanitizer import Sanitizer, active_sanitizers, resolve_level
from repro.engine.database import Database
from repro.faults.plan import FaultPlan, install_plan, uninstall_plan
from repro.storage.relation import Relation


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize", action="store", default="off",
        choices=("off", "post-crack", "post-query", "deep"),
        help="run the whole suite under the CrackSan invariant sanitizer "
             "at the given checkpoint level",
    )
    parser.addoption(
        "--faults", action="store", default=None, metavar="PLAN",
        help="run the whole suite under a FaultSan fault-injection plan "
             "(e.g. 'mapset.align=error'); every engine must still answer "
             "correctly or raise a structured FaultError",
    )
    parser.addoption(
        "--racesan", action="store_true", default=False,
        help="run the whole suite under the RaceSan lockset race detector; "
             "any data race or lock-order cycle observed during a test "
             "fails it with both stacks",
    )


@pytest.fixture(autouse=True)
def _cracksan(request: pytest.FixtureRequest):
    """Suite-wide CrackSan: watch every structure each test builds.

    At ``--sanitize off`` (the default) this is a no-op.  Otherwise every
    structure constructed during the test registers with this sanitizer and
    any invariant violation fails the test with structured diagnostics.
    """
    level = resolve_level(request.config.getoption("--sanitize"))
    if level == "off":
        yield None
    else:
        with Sanitizer(level).activated() as sanitizer:
            yield sanitizer
    # Isolation: a test that built a ``Database(sanitize=...)`` leaves that
    # sanitizer active for as long as the garbage collector keeps the
    # database alive.  Deactivate stragglers so they cannot watch (and fail
    # on) structures a later test builds — e.g. one that tampers with a map
    # on purpose.
    for stray in active_sanitizers():
        stray.deactivate()


@pytest.fixture(autouse=True)
def _racesan(request: pytest.FixtureRequest):
    """Suite-wide RaceSan (``--racesan``): fail tests on observed races.

    Collect-mode (non-strict) so a violation surfaces as a test failure
    with the full report at teardown rather than an exception at an
    arbitrary depth inside a worker thread.  Without the option this only
    provides isolation: detectors left active by a test's
    ``Database(racesan=...)`` are deactivated so they cannot observe (and
    fail on) a later test's accesses.
    """
    enabled = request.config.getoption("--racesan")
    detector = RaceSan("on", strict=False).activate() if enabled else None
    try:
        yield detector
    finally:
        if detector is not None:
            detector.deactivate()
        for stray in active_detectors():
            stray.deactivate()
    if detector is not None and detector.violations:
        pytest.fail(detector.report(), pytrace=False)


@pytest.fixture(autouse=True)
def _faultsan(request: pytest.FixtureRequest):
    """Suite-wide FaultSan: arm a fault plan for every test (``--faults``).

    With no ``--faults`` option this only provides isolation: any plan a
    test installed (directly or via ``Database(faults=...)``) is uninstalled
    afterwards so it cannot fire in a later test.
    """
    spec = request.config.getoption("--faults")
    if spec:
        install_plan(FaultPlan.parse(spec))
    try:
        yield
    finally:
        uninstall_plan()


@pytest.fixture(autouse=True)
def _shm_leak_check():
    """Suite-wide shared-memory leak check.

    Every test must balance its shared-memory lifecycle: any
    :class:`~repro.storage.shared.SharedArray` / ``SharedBAT`` created or
    attached during the test must be closed by the end of it, and no
    segment this process created may survive in ``/dev/shm``.  A leaked
    name here means an ownership bug (a pool that forgot a shard, an
    executor close path that skipped a buffer), not harmless garbage —
    ``/dev/shm`` is a finite, machine-wide resource.
    """
    from repro.storage.shared import leaked_system_segments, live_segment_names

    before = live_segment_names()
    yield
    after = live_segment_names()
    leaked_registry = sorted(after - before)
    leaked_system = leaked_system_segments()
    assert not leaked_registry, (
        f"test leaked shared-memory handles (never closed): {leaked_registry}"
    )
    assert not leaked_system, (
        f"test leaked /dev/shm segments (never unlinked): {leaked_system}"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_arrays(rng) -> dict[str, np.ndarray]:
    """Four aligned integer columns, 5k rows, values in [1, 100k]."""
    return {c: rng.integers(1, 100_001, size=5_000).astype(np.int64) for c in "ABCD"}


@pytest.fixture
def relation(small_arrays) -> Relation:
    return Relation.from_arrays("R", small_arrays)


@pytest.fixture
def db(small_arrays) -> Database:
    database = Database()
    database.create_table("R", dict(small_arrays))
    return database
