"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.database import Database
from repro.storage.relation import Relation


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_arrays(rng) -> dict[str, np.ndarray]:
    """Four aligned integer columns, 5k rows, values in [1, 100k]."""
    return {c: rng.integers(1, 100_001, size=5_000).astype(np.int64) for c in "ABCD"}


@pytest.fixture
def relation(small_arrays) -> Relation:
    return Relation.from_arrays("R", small_arrays)


@pytest.fixture
def db(small_arrays) -> Database:
    database = Database()
    database.create_table("R", dict(small_arrays))
    return database
