"""Pending-update buffers, bit vectors, and the error hierarchy."""

import numpy as np
import pytest

from repro.core.bitvector import BitVector
from repro.cracking.bounds import Interval
from repro.cracking.pending import PendingUpdates
from repro import errors


class TestPendingUpdates:
    def test_take_by_interval(self):
        pending = PendingUpdates(n_tails=1)
        pending.add_insertions(np.array([5, 50, 500]), [np.array([1, 2, 3])])
        values, tails = pending.take_insertions(Interval.open(10, 100))
        assert values.tolist() == [50]
        assert tails[0].tolist() == [2]
        assert pending.insertion_count == 2

    def test_take_all(self):
        pending = PendingUpdates(n_tails=1)
        pending.add_insertions(np.array([1, 2]), [np.array([10, 11])])
        values, _ = pending.take_insertions(None)
        assert len(values) == 2
        assert pending.insertion_count == 0

    def test_deletions_by_interval(self):
        pending = PendingUpdates()
        pending.add_deletions(np.array([5, 50]), np.array([1, 2]))
        values, keys = pending.take_deletions(Interval.open(0, 10))
        assert values.tolist() == [5]
        assert keys.tolist() == [1]
        assert pending.deletion_count == 1

    def test_has_pending(self):
        pending = PendingUpdates()
        assert not pending.has_pending()
        pending.add_insertions(np.array([7]), [np.array([0])])
        assert pending.has_pending()
        assert pending.has_pending(Interval.open(5, 10))
        assert not pending.has_pending(Interval.open(100, 200))

    def test_ragged_batch_rejected(self):
        pending = PendingUpdates(n_tails=1)
        with pytest.raises(errors.UpdateError):
            pending.add_insertions(np.array([1, 2]), [np.array([1])])
        with pytest.raises(errors.UpdateError):
            pending.add_deletions(np.array([1, 2]), np.array([1]))

    def test_wrong_tail_count_rejected(self):
        pending = PendingUpdates(n_tails=2)
        with pytest.raises(errors.UpdateError):
            pending.add_insertions(np.array([1]), [np.array([1])])

    def test_multiple_batches_accumulate(self):
        pending = PendingUpdates()
        pending.add_insertions(np.array([1]), [np.array([10])])
        pending.add_insertions(np.array([2]), [np.array([11])])
        values, tails = pending.take_insertions(None)
        assert values.tolist() == [1, 2]
        assert tails[0].tolist() == [10, 11]


class TestBitVector:
    def test_from_mask_copies(self):
        mask = np.array([True, False])
        bv = BitVector.from_mask(mask)
        mask[0] = False
        assert bv.bits[0]

    def test_refine_and_or(self):
        bv = BitVector.from_mask(np.array([True, True, False]))
        bv.refine_and(np.array([True, False, True]))
        assert bv.bits.tolist() == [True, False, False]
        bv.refine_or(np.array([False, False, True]))
        assert bv.bits.tolist() == [True, False, True]

    def test_set_range_count_positions(self):
        bv = BitVector(5)
        bv.set_range(1, 3)
        assert bv.count() == 2
        assert bv.positions().tolist() == [1, 2]
        assert len(bv) == 5


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("CatalogError", "SchemaError", "PredicateError",
                     "CrackError", "AlignmentError", "StorageBudgetError",
                     "UpdateError", "PlanError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_alignment_is_crack_error(self):
        assert issubclass(errors.AlignmentError, errors.CrackError)
