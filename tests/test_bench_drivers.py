"""Smoke tests: every benchmark driver runs at tiny scale and reports the
structure its experiment needs."""

import pytest

from repro.bench import exp01_tuple_reconstruction as exp01
from repro.bench import exp02_selectivity as exp02
from repro.bench import exp03_reordering as exp03
from repro.bench import exp04_joins as exp04
from repro.bench import exp05_skew as exp05
from repro.bench import exp06_updates as exp06
from repro.bench import exp07_storage as exp07
from repro.bench import exp08_adaptation as exp08
from repro.bench import exp09_cumulative as exp09
from repro.bench import exp10_change_rate as exp10
from repro.bench import exp11_alignment as exp11

TINY = 0.12


class TestSection3Drivers:
    def test_exp01(self):
        result = exp01.run(scale=TINY)
        for system in exp01.SYSTEMS:
            assert set(result["figure_ms"][system]) == set(exp01.RECONSTRUCTIONS)
        assert set(result["breakdown"]) == set(exp01.SYSTEMS)
        assert exp01.describe(result)

    def test_exp02(self):
        result = exp02.run(scale=TINY, queries=20)
        assert set(result["relative_wallclock"]) == set(exp02.LABELS.values())
        assert all(len(v) == 20 for v in result["relative_wallclock"].values())
        assert exp02.describe(result)

    def test_exp03(self):
        result = exp03.run(scale=TINY)
        for strategy in exp03.STRATEGIES:
            assert set(result["wall_ms"][strategy]) == set(exp03.RECONSTRUCTIONS)
        assert exp03.describe(result)

    def test_exp04(self):
        result = exp04.run(scale=TINY, queries=5)
        for key in ("total_ms", "before_join_ms", "after_join_ms"):
            assert set(result[key]) == set(exp04.SYSTEMS)
            assert all(len(v) == 5 for v in result[key].values())
        assert exp04.describe(result)

    def test_exp05(self):
        result = exp05.run(scale=TINY, queries=20)
        assert set(result["microseconds"]) == set(exp05.SYSTEMS)
        assert exp05.describe(result)

    def test_exp06(self):
        result = exp06.run(scale=TINY, queries=30)
        assert set(result["series_us"]) == {"HFLV", "LFHV"}
        for scenario in result["series_us"].values():
            assert set(scenario) == set(exp06.SYSTEMS)
        assert exp06.describe(result)


class TestSection4Drivers:
    def test_exp07(self):
        result = exp07.run(scale=TINY, queries=50, batch=10)
        assert set(result["per_query_us"]) == set(exp07.THRESHOLDS)
        for systems in result["per_query_us"].values():
            assert all(len(v) == 50 for v in systems.values())
        assert exp07.describe(result)

    def test_exp08(self):
        result = exp08.run(scale=TINY, queries=40, batch=10)
        assert set(result["per_query_us"]) == set(exp08.VARIANTS)
        assert exp08.describe(result)

    def test_exp09(self):
        result = exp09.run(scale=TINY, queries=30, batch=10)
        assert len(result["totals_seconds"]) == len(exp09.RESULT_FRACTIONS) * len(
            exp09.THRESHOLDS
        )
        assert exp09.describe(result)

    def test_exp10(self):
        result = exp10.run(scale=TINY, queries=40)
        assert len(result["totals_seconds"]) == len(set(
            40 // b for b in exp10.BATCHES
        ))
        assert exp10.describe(result)

    def test_exp11(self):
        result = exp11.run(scale=TINY, queries=40)
        assert set(result["per_query_us"]) == set(exp11.CHANGE_EVERY)
        assert exp11.describe(result)


class TestTPCHDrivers:
    @pytest.mark.slow
    def test_exp12_smoke(self):
        from repro.bench import exp12_tpch as exp12

        result = exp12.run(scale=0.15, variations=2)
        assert set(result["summary_wallclock"]) == set(result["series_ms"])
        assert exp12.describe(result)

    def test_exp13_smoke(self):
        from repro.bench import exp13_tpch_mixed as exp13

        result = exp13.run(scale=0.15, batches=1)
        assert result["queries"] == 12
        assert exp13.describe(result)


def test_default_scale_env(monkeypatch):
    from repro.bench.harness import default_scale

    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert default_scale() == 2.5
    monkeypatch.delenv("REPRO_SCALE")
    assert default_scale() == 1.0
