"""Multi-shot fault plans: ``site@N..M`` parsing and recovery soundness.

A multi-shot spec keeps firing until its hit range is exhausted, modelling
several simultaneously armed failpoints.  The engine recovery loop retries
healing up to the plan's total shot budget, so once every shot is spent the
workload must run clean — a query failing past that bound is a real bug.
"""

import numpy as np
import pytest

from repro.engine.scan import PlainEngine
from repro.errors import InjectedFault
from repro.faults.plan import FaultPlan, FaultPlanError, fault_hook, install_plan

from tests.test_faults import ENGINES, make_db, make_engine, run_workload


class TestMultiShotParsing:
    def test_range_spec_round_trips(self):
        plan = FaultPlan.parse("tape.append@2..5=error")
        (spec,) = plan.specs
        assert (spec.hit, spec.hit_end, spec.kind) == (2, 5, "error")
        assert spec.shots() == 4
        assert plan.total_shots() == 4
        assert FaultPlan.parse(plan.describe()).specs == plan.specs

    def test_matches_inclusive_range(self):
        (spec,) = FaultPlan.parse("mapset.align@3..4=error").specs
        assert [spec.matches(n) for n in (2, 3, 4, 5)] == [
            False, True, True, False
        ]

    def test_single_hit_still_one_shot(self):
        plan = FaultPlan.parse("tape.append@7=error,arena.alloc=oom")
        assert plan.total_shots() == 2

    @pytest.mark.parametrize("bad", [
        "tape.append@5..2=error",   # empty range
        "tape.append@0..3=error",   # hits are 1-based
        "tape.append@1..x=error",   # non-numeric end
    ])
    def test_malformed_ranges_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_fires_on_every_hit_in_range(self):
        install_plan(FaultPlan.parse("tape.append@2..4=error"))
        fired = []
        for _ in range(6):
            try:
                fault_hook("tape.append")
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        assert fired == [False, True, True, True, False, False]


class TestMultiShotRecovery:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_workload_survives_multi_shot_plan(self, engine_name):
        db = make_db(faults="kernels.crack_two@1..4=error")
        engine = make_engine(engine_name, db)
        baseline = PlainEngine(db)
        recovered = run_workload(engine, baseline, db)
        assert recovered >= 1
        assert len(db.fault_plan.injected) >= 1

    def test_recovery_rerun_survives_repeat_fire(self):
        # Arm a wide range so faults fire *during* the recovery rerun too:
        # the bounded retry loop must chew through every shot and converge.
        db = make_db(faults="kernels.crack_two@1..6=error,tape.append@1..2=error")
        engine = make_engine("selection_cracking", db)
        baseline = PlainEngine(db)
        recovered = run_workload(engine, baseline, db)
        assert recovered >= 1

    def test_clean_after_all_shots_spent(self):
        db = make_db(faults="kernels.crack_two@1..3=error")
        engine = make_engine("selection_cracking", db)
        baseline = PlainEngine(db)
        run_workload(engine, baseline, db)
        spent = list(db.fault_plan.injected)
        # Every further query runs clean: no recovery, no new injections.
        extra = run_workload(engine, baseline, db, with_updates=False)
        assert extra == 0
        assert db.fault_plan.injected == spent
        assert db.heal_faults() == []

    def test_multi_site_plan_under_deep_sanitize(self):
        db = make_db(
            faults="mapset.align@1..2=error,kernels.crack_three@2=error",
            sanitize="deep",
        )
        engine = make_engine("sideways", db)
        baseline = PlainEngine(db)
        run_workload(engine, baseline, db, with_updates=False)
        assert db.fault_plan.hits  # the sites were actually visited

    def test_deterministic_injection_points(self):
        logs = []
        for _ in range(2):
            db = make_db(faults="kernels.crack_two@2..3=error")
            engine = make_engine("selection_cracking", db)
            baseline = PlainEngine(db)
            run_workload(engine, baseline, db, with_updates=False)
            logs.append(list(db.fault_plan.injected))
        assert logs[0] == logs[1]


def test_hit_counting_is_thread_safe():
    import threading

    install_plan(FaultPlan.parse("tape.append@1000000=error"))
    plan = FaultPlan.parse("tape.append@1000000=error")
    install_plan(plan)
    visits = 500

    def worker():
        for _ in range(visits):
            fault_hook("tape.append")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert plan.hits["tape.append"] == 4 * visits
