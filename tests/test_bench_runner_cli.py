"""Config runner, smoke runner, trend report, and the repro.bench CLI."""

import json
import os

import pytest

from repro.bench.harness import time_callable
from repro.bench.registry.artifacts import ArtifactStore
from repro.bench.registry.config import ConfigError, ExperimentConfig
from repro.bench.registry.core import EXPERIMENTS, ExperimentSpec
from repro.bench.registry.runner import run_config, run_smoke
from repro.bench.registry.trend import build_report, mann_whitney_u


def _toy_driver(scale=1.0, queries=10, seed=42, json_path=None):
    result = {
        "scale": scale,
        "queries": queries,
        "seed": seed,
        "env_faults": os.environ.get("REPRO_FAULTS"),
        "summary": {"speedup": 2.0 * scale, "all_ok": True},
    }
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
    return result


@pytest.fixture
def toy_spec():
    spec = ExperimentSpec(
        name="toyexp",
        module="<toy>",
        description="toy experiment for runner tests",
        params=("queries", "seed"),
        compat_json="BENCH_toy.json",
        baseline_ref="baseline/toyexp",
        runner=_toy_driver,
    )
    EXPERIMENTS.add(spec.name, spec)
    try:
        yield spec
    finally:
        del EXPERIMENTS._items[spec.name]


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestRunConfig:
    def test_single_run_stores_artifact_ref_and_compat(
            self, toy_spec, store, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = ExperimentConfig(name="toyexp", scale=0.5,
                                  params={"queries": 3})
        (outcome,) = run_config(config, store, quiet=True)
        assert outcome.ref == "current/toyexp"
        assert store.resolve("ref:current/toyexp") == outcome.result
        assert outcome.result["queries"] == 3
        assert outcome.result["scale"] == 0.5
        # The legacy compat JSON is written next to the invocation...
        compat = json.loads((tmp_path / "BENCH_toy.json").read_text())
        assert compat == outcome.result
        # ...and metadata carries the provenance the gate/report rely on.
        assert outcome.record.meta["scale"] == 0.5
        assert outcome.record.meta["params"] == {"queries": 3}

    def test_scale_precedence(self, toy_spec, store, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        config = ExperimentConfig(name="toyexp")
        (outcome,) = run_config(config, store, compat=False, quiet=True)
        assert outcome.result["scale"] == 0.25  # env default
        assert outcome.record.meta["repro_scale_env"] == "0.25"
        config = ExperimentConfig(name="toyexp", scale=0.5)
        (outcome,) = run_config(config, store, compat=False, quiet=True)
        assert outcome.result["scale"] == 0.5  # config beats env
        (outcome,) = run_config(config, store, scale=0.75, compat=False,
                                quiet=True)
        assert outcome.result["scale"] == 0.75  # CLI beats config

    def test_seed_flows_into_run_and_metadata(self, toy_spec, store):
        config = ExperimentConfig(name="toyexp", seed=7)
        (outcome,) = run_config(config, store, compat=False, quiet=True)
        assert outcome.result["seed"] == 7
        assert outcome.record.meta["seed"] == 7

    def test_unknown_param_rejected(self, toy_spec, store):
        config = ExperimentConfig(name="toyexp", params={"bogus": 1})
        with pytest.raises(ConfigError, match="bogus"):
            run_config(config, store, quiet=True)

    def test_unknown_experiment_rejected(self, store):
        from repro.bench.registry.core import RegistryError

        config = ExperimentConfig(name="no_such_experiment")
        with pytest.raises(RegistryError):
            run_config(config, store, quiet=True)

    def test_sweep_fans_out_with_indexed_refs(self, toy_spec, store):
        config = ExperimentConfig(name="toyexp",
                                  sweep={"queries": [1, 2, 3]})
        outcomes = run_config(config, store, compat=False, quiet=True)
        assert [o.ref for o in outcomes] == [
            "current/toyexp/0", "current/toyexp/1", "current/toyexp/2"]
        assert [o.result["queries"] for o in outcomes] == [1, 2, 3]
        assert store.resolve("ref:current/toyexp/2")["queries"] == 3

    def test_env_knobs_armed_and_restored(self, toy_spec, store, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        config = ExperimentConfig(name="toyexp",
                                  env={"faults": "mapset.align=error"})
        (outcome,) = run_config(config, store, compat=False, quiet=True)
        assert outcome.result["env_faults"] == "mapset.align=error"
        assert "REPRO_FAULTS" not in os.environ

    def test_malformed_fault_plan_fails_fast(self, toy_spec, store):
        config = ExperimentConfig(name="toyexp",
                                  env={"faults": "not a fault plan !!"})
        with pytest.raises(Exception):
            run_config(config, store, compat=False, quiet=True)

    def test_no_compat_suppresses_json(self, toy_spec, store, tmp_path,
                                       monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = ExperimentConfig(name="toyexp")
        run_config(config, store, compat=False, quiet=True)
        assert not (tmp_path / "BENCH_toy.json").exists()
        config = ExperimentConfig(name="toyexp", compat_json=False)
        run_config(config, store, quiet=True)
        assert not (tmp_path / "BENCH_toy.json").exists()


class TestRunSmoke:
    def test_smoke_runs_toy_under_smoke_ref(self, toy_spec, store, tmp_path,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        outcomes = run_smoke(store, scale=0.5, echo=lambda *_: None)
        toy = [o for o in outcomes if o.experiment == "toyexp"]
        assert len(toy) == 1
        assert toy[0].ref == "smoke/toyexp"
        # Smoke never writes legacy compat files.
        assert not (tmp_path / "BENCH_toy.json").exists()


class TestTrendReport:
    def test_report_renders_current_and_baseline(self, toy_spec, store):
        from repro.bench.registry.artifacts import import_baseline

        base_path = store.root.parent / "BENCH_toy.json"
        base_path.write_text(json.dumps(
            {"summary": {"speedup": 1.5, "all_ok": True}}))
        import_baseline(store, "toyexp", base_path, ref="baseline/toyexp")
        config = ExperimentConfig(name="toyexp", scale=0.5)
        run_config(config, store, compat=False, quiet=True)
        report = build_report(store, experiments=["toyexp"])
        assert "## toyexp" in report
        assert "current" in report and "baseline" in report
        assert "| run | when (UTC) | git | scale | seed |" in report
        # Generic metric fallback picks up summary scalars.
        assert "speedup" in report

    def test_mann_whitney_detects_shift(self):
        a = [1.0, 1.1, 1.05, 0.98, 1.02, 1.07, 0.99, 1.03]
        b = [2.0, 2.1, 2.05, 1.98, 2.02, 2.07, 1.99, 2.03]
        assert mann_whitney_u(a, b) < 0.01
        assert mann_whitney_u(a, a) > 0.5
        assert mann_whitney_u([], a) == 1.0

    def test_significance_lines_over_raw_samples(self):
        from repro.bench.registry.trend import significance_lines

        current = {"cases": [{"case": "crack_two",
                              "reference_samples_s": [1.0, 1.1, 1.05],
                              "fused_samples_s": [0.5, 0.52, 0.51]}]}
        lines = significance_lines(current, current)
        assert any("crack_two:fused" in line for line in lines)
        assert any("not significant" in line for line in lines)


class TestTimeCallableSamples:
    def test_raw_samples_recorded(self):
        timing = time_callable(lambda: sum(range(100)), repeats=5)
        assert len(timing["samples_s"]) == 5
        assert timing["min_s"] <= timing["median_s"] <= timing["max_s"]
        assert min(timing["samples_s"]) == timing["min_s"]
        assert max(timing["samples_s"]) == timing["max_s"]


class TestCli:
    def test_list_names_experiments(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        assert main(["--store", str(tmp_path), "list"]) == 0
        out = capsys.readouterr().out
        for name in ("kernels", "exp14", "exp16", "exp17", "exp18", "exp19"):
            assert name in out

    def test_run_config_file_end_to_end(self, toy_spec, tmp_path, capsys,
                                        monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        config = tmp_path / "toy.toml"
        config.write_text(
            '[experiment]\nname = "toyexp"\nscale = 0.5\nseed = 9\n'
            "[params]\nqueries = 4\n")
        rc = main(["--store", str(tmp_path / "store"), "run", str(config),
                   "--quiet"])
        assert rc == 0
        assert "stored toyexp ->" in capsys.readouterr().out
        store = ArtifactStore(tmp_path / "store")
        payload = store.resolve("ref:current/toyexp")
        assert payload["queries"] == 4 and payload["seed"] == 9
        compat = json.loads((tmp_path / "BENCH_toy.json").read_text())
        assert compat == payload

    def test_run_rejects_bad_config_with_exit_two(self, tmp_path):
        from repro.bench.__main__ import main

        config = tmp_path / "bad.toml"
        config.write_text('[experiment]\nname = "toyexp"\ntypo = 1\n')
        assert main(["--store", str(tmp_path), "run", str(config)]) == 2

    def test_report_writes_markdown(self, toy_spec, store, tmp_path):
        from repro.bench.__main__ import main

        run_config(ExperimentConfig(name="toyexp"), store, compat=False,
                   quiet=True)
        out = tmp_path / "trend.md"
        rc = main(["--store", str(store.root), "report",
                   "--experiments", "toyexp", "--output", str(out)])
        assert rc == 0
        assert out.read_text().startswith("# Benchmark trends")

    def test_import_baselines_from_dir(self, toy_spec, tmp_path, capsys):
        from repro.bench.__main__ import main

        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_toy.json").write_text(
            json.dumps({"summary": {"all_ok": True}}))
        rc = main(["--store", str(tmp_path / "store"), "import-baselines",
                   "--bench-dir", str(bench_dir)])
        assert rc == 0
        store = ArtifactStore(tmp_path / "store")
        assert store.get_ref("baseline/toyexp") is not None
