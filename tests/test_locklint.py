"""LockSan static pass: every rule fires on seeded negatives, and the
serving layer itself checks clean."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.locklint import RULES, lint_paths, main

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src" / "repro")


def check(tmp_path, source: str, name: str = "server/mod.py"):
    """Lint one seeded source file; server/ paths join the call graph."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([str(target)])


def rules_of(violations) -> list[str]:
    return [v.rule for v in violations]


# -- lock-order-inversion ------------------------------------------------------


def test_inversion_fires_lexically(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry, shard):
            with shard.lock.write():
                with registry.lock_for("R").read():
                    pass
    """)
    assert rules_of(violations) == ["lock-order-inversion"]
    assert "table -> shard" in violations[0].message


def test_inversion_fires_through_a_call(tmp_path):
    violations = check(tmp_path, """
        class Exec:
            def grab_table(self):
                with self.registry.lock_for("R").write():
                    pass

            def probe(self, shard):
                with shard.lock.read():
                    self.grab_table()
    """)
    assert rules_of(violations) == ["lock-order-inversion"]
    assert "call to grab_table()" in violations[0].message


def test_table_then_shard_is_the_sanctioned_order(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry, shard):
            with registry.lock_for("R").read():
                with shard.lock.write():
                    pass
    """)
    assert violations == []


# -- lock-upgrade --------------------------------------------------------------


def test_upgrade_fires_lexically(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry):
            table_lock = registry.lock_for("R")
            with table_lock.read():
                with table_lock.write():
                    pass
    """)
    assert rules_of(violations) == ["lock-upgrade"]
    assert "forbids upgrades" in violations[0].message


def test_upgrade_fires_through_a_call(tmp_path):
    violations = check(tmp_path, """
        class Exec:
            def mutate(self):
                with self.registry.lock_for("R").write():
                    pass

            def probe(self):
                with self.registry.lock_for("R").read():
                    self.mutate()
    """)
    assert rules_of(violations) == ["lock-upgrade"]


def test_sequential_read_then_write_is_fine(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry):
            table_lock = registry.lock_for("R")
            with table_lock.read():
                pass
            with table_lock.write():
                pass
    """)
    assert violations == []


# -- blocking-under-write-lock -------------------------------------------------


def test_sleep_under_write_lock_fires(tmp_path):
    violations = check(tmp_path, """
        import time

        def probe(self, registry):
            with registry.lock_for("R").write():
                time.sleep(0.1)
    """)
    assert rules_of(violations) == ["blocking-under-write-lock"]
    assert "time.sleep" in violations[0].message


def test_engine_run_and_future_wait_under_write_lock_fire(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry, fut):
            with registry.lock_for("R").write():
                self.engine.run("q")
                fut.result()
    """)
    assert rules_of(violations) == [
        "blocking-under-write-lock", "blocking-under-write-lock",
    ]
    assert "engine.run" in violations[0].message


def test_blocking_propagates_through_the_call_graph(tmp_path):
    violations = check(tmp_path, """
        import socket

        class Exec:
            def push(self, conn, payload):
                conn.sendall(payload)

            def probe(self, conn):
                with self.registry.lock_for("R").write():
                    self.push(conn, b"x")
    """)
    assert rules_of(violations) == ["blocking-under-write-lock"]
    assert "call to push()" in violations[0].message


def test_blocking_under_read_lock_is_fine(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry, fut):
            with registry.lock_for("R").read():
                fut.result()
    """)
    assert violations == []


# -- unlocked-version-read -----------------------------------------------------


def test_bare_version_read_fires(tmp_path):
    violations = check(tmp_path, """
        def probe(self, db):
            return db.data_version
    """)
    assert rules_of(violations) == ["unlocked-version-read"]
    assert "data_version" in violations[0].message


def test_version_read_discharged_by_locked_call_sites(tmp_path):
    violations = check(tmp_path, """
        class Exec:
            def _capture(self, db):
                return db.data_version

            def probe(self, registry, db):
                with registry.lock_for("R").read():
                    return self._capture(db)
    """)
    assert violations == []


def test_version_read_fires_when_one_call_site_is_unlocked(tmp_path):
    violations = check(tmp_path, """
        class Exec:
            def _capture(self, db):
                return db.data_version

            def locked(self, registry, db):
                with registry.lock_for("R").read():
                    return self._capture(db)

            def unlocked(self, db):
                return self._capture(db)
    """)
    assert rules_of(violations) == ["unlocked-version-read"]


# -- raw-lock-construction -----------------------------------------------------


def test_raw_lock_construction_fires(tmp_path):
    violations = check(tmp_path, """
        import threading

        class Exec:
            def __init__(self):
                self._m = threading.Lock()
    """)
    assert rules_of(violations) == ["raw-lock-construction"]
    assert "repro.server.locks" in violations[0].message


def test_raw_lock_from_import_alias_fires(tmp_path):
    violations = check(tmp_path, """
        from threading import RLock as _R

        def make(self):
            return _R()
    """)
    assert rules_of(violations) == ["raw-lock-construction"]


def test_locks_module_is_exempt(tmp_path):
    violations = check(tmp_path, """
        import threading

        def make(self):
            return threading.Condition(threading.Lock())
    """, name="server/locks.py")
    assert violations == []


# -- lock-in-cleanup -----------------------------------------------------------


def test_lock_in_finally_fires(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry):
            try:
                pass
            finally:
                with registry.lock_for("R").write():
                    pass
    """)
    assert rules_of(violations) == ["lock-in-cleanup"]
    assert "cleanup" in violations[0].message


def test_lock_in_except_handler_fires(tmp_path):
    violations = check(tmp_path, """
        def probe(self, shard):
            try:
                pass
            except ValueError:
                with shard.lock.read():
                    pass
    """)
    assert rules_of(violations) == ["lock-in-cleanup"]


def test_lock_in_try_body_is_fine(tmp_path):
    violations = check(tmp_path, """
        def probe(self, registry):
            try:
                with registry.lock_for("R").write():
                    pass
            finally:
                pass
    """)
    assert violations == []


# -- suppression ---------------------------------------------------------------


def test_allow_comment_silences_one_rule(tmp_path):
    violations = check(tmp_path, """
        import time

        def probe(self, registry):
            with registry.lock_for("R").write():
                time.sleep(0.1)  # locksan: allow(blocking-under-write-lock)
    """)
    assert violations == []


def test_allow_comment_is_rule_specific(tmp_path):
    violations = check(tmp_path, """
        import time

        def probe(self, registry):
            with registry.lock_for("R").write():
                time.sleep(0.1)  # locksan: allow(lock-upgrade)
    """)
    assert rules_of(violations) == ["blocking-under-write-lock"]


# -- the serving layer itself --------------------------------------------------


def test_shipped_sources_are_clean():
    assert lint_paths([REPO_SRC]) == []


# -- CLI contract --------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "server" / "bad.py"
    dirty.parent.mkdir()
    dirty.write_text("def f(self, db):\n    return db.data_version\n")
    clean = tmp_path / "fine.py"
    clean.write_text("X = 1\n")

    assert main([str(clean)]) == 0
    assert "1 file(s) checked, clean" in capsys.readouterr().out

    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "unlocked-version-read" in out and "1 violation(s)" in out

    assert main([str(tmp_path / "missing.py")]) == 2
    assert "locklint: error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_summaries(tmp_path, capsys):
    target = tmp_path / "server" / "mod.py"
    target.parent.mkdir()
    target.write_text(textwrap.dedent("""
        def probe(self, registry, shard):
            with registry.lock_for("R").read():
                with shard.lock.write():
                    pass
    """))
    assert main(["--summaries", str(target)]) == 0
    out = capsys.readouterr().out
    assert "probe: acquires [shard:write, table:read]" in out


def test_syntax_error_reports_parse_error(tmp_path):
    bad = tmp_path / "oops.py"
    bad.write_text("def broken(:\n")
    violations = lint_paths([str(bad)])
    assert rules_of(violations) == ["parse-error"]
