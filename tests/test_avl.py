"""The AVL cracker index."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Side
from repro.errors import CrackError


def b(value: float, side: Side = Side.LT) -> Bound:
    return Bound(value, side)


class TestInsertFind:
    def test_empty_index(self):
        index = CrackerIndex()
        assert len(index) == 0
        assert index.piece_count == 1
        assert index.position_of(b(5)) is None

    def test_insert_and_find(self):
        index = CrackerIndex()
        index.insert(b(5), 10)
        assert index.position_of(b(5)) == 10
        assert index.position_of(b(5, Side.LE)) is None
        assert len(index) == 1

    def test_reinsert_same_position_ok(self):
        index = CrackerIndex()
        index.insert(b(5), 10)
        index.insert(b(5), 10)
        assert len(index) == 1

    def test_reinsert_conflicting_position_raises(self):
        index = CrackerIndex()
        index.insert(b(5), 10)
        with pytest.raises(CrackError):
            index.insert(b(5), 11)

    def test_lt_and_le_are_distinct_keys(self):
        index = CrackerIndex()
        index.insert(b(5, Side.LT), 10)
        index.insert(b(5, Side.LE), 12)
        assert index.position_of(b(5, Side.LT)) == 10
        assert index.position_of(b(5, Side.LE)) == 12


class TestNeighbors:
    def _build(self) -> CrackerIndex:
        index = CrackerIndex()
        for value, pos in [(10, 5), (20, 12), (30, 20)]:
            index.insert(b(value), pos)
        return index

    def test_predecessor(self):
        index = self._build()
        assert index.predecessor(b(25)) == (b(20), 12)
        assert index.predecessor(b(10)) is None
        assert index.predecessor(b(10, Side.LE)) == (b(10), 5)

    def test_successor(self):
        index = self._build()
        assert index.successor(b(25)) == (b(30), 20)
        assert index.successor(b(30)) == (b(30), 20) or index.successor(b(30)) is None
        assert index.successor(b(35)) is None

    def test_enclosing_unknown_bound(self):
        index = self._build()
        assert index.enclosing(b(25), 100) == (12, 20)
        assert index.enclosing(b(5), 100) == (0, 5)
        assert index.enclosing(b(40), 100) == (20, 100)

    def test_enclosing_known_bound_degenerate(self):
        index = self._build()
        assert index.enclosing(b(20), 100) == (12, 12)


class TestPieces:
    def test_pieces_cover_whole_array(self):
        index = CrackerIndex()
        index.insert(b(10), 3)
        index.insert(b(20), 7)
        pieces = list(index.pieces(12))
        assert [(p.lo_pos, p.hi_pos) for p in pieces] == [(0, 3), (3, 7), (7, 12)]
        assert pieces[0].lo_bound is None
        assert pieces[-1].hi_bound is None
        assert sum(p.size for p in pieces) == 12

    def test_inorder_sorted(self):
        index = CrackerIndex()
        for value in (30, 10, 20, 25, 5):
            index.insert(b(value), int(value))
        bounds = [bd.value for bd, _ in index.inorder()]
        assert bounds == sorted(bounds)


class TestShifts:
    def test_shift_moves_later_bounds(self):
        index = CrackerIndex()
        index.insert(b(10), 5)
        index.insert(b(20), 10)
        index.apply_shifts([(6, 3)])
        assert index.position_of(b(10)) == 5
        assert index.position_of(b(20)) == 13

    def test_shift_at_exact_position_included(self):
        index = CrackerIndex()
        index.insert(b(10), 5)
        index.apply_shifts([(5, 2)])
        assert index.position_of(b(10)) == 7

    def test_negative_and_cumulative_shifts(self):
        index = CrackerIndex()
        index.insert(b(10), 10)
        index.insert(b(20), 20)
        index.apply_shifts([(5, -2), (15, 4)])
        assert index.position_of(b(10)) == 8
        assert index.position_of(b(20)) == 22


class TestClone:
    def test_clone_is_independent(self):
        index = CrackerIndex()
        index.insert(b(10), 5)
        copy = index.clone()
        copy.insert(b(20), 9)
        assert index.position_of(b(20)) is None
        assert copy.position_of(b(10)) == 5
        assert len(copy) == 2


@given(st.lists(st.tuples(st.integers(0, 500), st.sampled_from([Side.LT, Side.LE])),
                min_size=1, max_size=120, unique=True))
def test_avl_matches_sorted_model(entries):
    """Insert random bounds with monotone positions; AVL must stay balanced
    and agree with a sorted-list model."""
    entries = sorted(set(entries))
    index = CrackerIndex()
    # Positions must be monotone in bound order; use the rank * 3.
    for rank, (value, side) in enumerate(entries):
        index.insert(Bound(value, side), rank * 3)
    index.validate(n=3 * len(entries) + 10)
    assert len(index) == len(entries)
    model = [(Bound(v, s), i * 3) for i, (v, s) in enumerate(entries)]
    assert list(index.inorder()) == model
    for probe_value in range(0, 501, 17):
        probe = Bound(probe_value, Side.LT)
        expected_pred = None
        expected_succ = None
        for bound, pos in model:
            if bound < probe:
                expected_pred = (bound, pos)
            if bound > probe and expected_succ is None:
                expected_succ = (bound, pos)
        assert index.predecessor(probe) == expected_pred
        assert index.successor(probe) == expected_succ
