"""The TPC-H substrate: data generation, executor modes, query agreement."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.query import Predicate
from repro.cracking.bounds import Interval
from repro.errors import PlanError
from repro.workloads.tpch import MODES, ModeExecutor, ParamGen, QUERIES, generate
from repro.workloads.tpch.dates import CURRENT_DATE, END_DATE, START_DATE, add_months, add_years, d
from repro.workloads.tpch.queries import results_equal
from repro.workloads.tpch.runner import (
    run_mixed_workload,
    run_query_sequence,
    verify_modes_agree,
)


@pytest.fixture(scope="module")
def data():
    return generate(scale_factor=0.005, seed=9)


@pytest.fixture(scope="module")
def dbs(data):
    out = {}
    for mode in list(MODES) + ["partial_sideways"]:
        db = Database()
        data.load_into(db)
        out[mode] = ModeExecutor(db, mode)
    return out


class TestDates:
    def test_ordinal_roundtrip(self):
        assert d(1992, 1, 1) == 0
        assert d(1992, 1, 2) == 1
        assert START_DATE < CURRENT_DATE < END_DATE

    def test_add_months_clamps(self):
        jan31 = d(1993, 1, 31)
        feb = add_months(jan31, 1)
        assert feb == d(1993, 2, 28)

    def test_add_years(self):
        assert add_years(d(1994, 3, 15), 2) == d(1996, 3, 15)


class TestDatagen:
    def test_cardinalities_scale(self, data):
        counts = data.row_counts()
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["partsupp"] == 4 * counts["part"]
        assert counts["lineitem"] >= counts["orders"]

    def test_date_arithmetic_holds(self, data):
        line = data.tables["lineitem"]
        assert (line["l_shipdate"] < line["l_receiptdate"]).all()
        assert (line["l_quantity"] >= 1).all() and (line["l_quantity"] <= 50).all()
        assert (line["l_discount"] >= 0).all() and (line["l_discount"] <= 0.10).all()

    def test_returnflag_rule(self, data):
        line = data.tables["lineitem"]
        returned = np.isin(line["l_returnflag"], ["R", "A"])
        assert (line["l_receiptdate"][returned] <= CURRENT_DATE).all()
        not_returned = line["l_returnflag"] == "N"
        assert (line["l_receiptdate"][not_returned] > CURRENT_DATE).all()

    def test_orders_reference_customers(self, data):
        orders = data.tables["orders"]
        n_cust = data.row_counts()["customer"]
        assert orders["o_custkey"].min() >= 1
        assert orders["o_custkey"].max() <= n_cust


class TestExecutor:
    def test_string_helpers(self, dbs):
        ex = dbs["monetdb"]
        iv = ex.eq("lineitem", "l_returnflag", "R")
        codes = ex.codes("lineitem", "l_shipmode", ["AIR", "MAIL"])
        assert len(codes) == 2
        assert iv.lo == iv.hi

    def test_prefix_helper(self, dbs):
        ex = dbs["monetdb"]
        iv = ex.prefix("part", "p_type", "PROMO")
        codes = ex.db.table("part").values("p_type")
        dictionary = ex.db.table("part").column("p_type").dictionary
        matched = iv.mask(codes)
        for code in np.unique(codes[matched]):
            assert dictionary.values[code].startswith("PROMO")

    def test_unknown_mode_rejected(self, data):
        db = Database()
        data.load_into(db)
        with pytest.raises(PlanError):
            ModeExecutor(db, "oracle9i")

    def test_select_modes_agree(self, dbs):
        iv = Interval.half_open(d(1994, 1, 1), d(1995, 1, 1))
        preds = [Predicate("l_shipdate", iv)]
        cols = ["l_orderkey", "l_quantity"]
        reference = None
        for mode, ex in dbs.items():
            out = ex.select("lineitem", preds, cols)
            rows = sorted(zip(out["l_orderkey"].tolist(), out["l_quantity"].tolist()))
            if reference is None:
                reference = rows
            assert rows == reference, mode

    def test_residual_filter(self, dbs):
        ex = dbs["monetdb"]
        out = ex.select(
            "lineitem", [], ["l_commitdate", "l_receiptdate"],
            residual=lambda c: c["l_commitdate"] < c["l_receiptdate"],
        )
        assert (out["l_commitdate"] < out["l_receiptdate"]).all()


class TestQueriesAgree:
    @pytest.mark.parametrize("query_id", sorted(QUERIES))
    def test_all_modes_agree(self, dbs, query_id):
        params_gen = ParamGen(seed=31 + query_id)
        fn = QUERIES[query_id]
        for _ in range(2):
            params = getattr(params_gen, f"q{query_id}")()
            results = {mode: fn(ex, params) for mode, ex in dbs.items()}
            reference = results["monetdb"]
            for mode, result in results.items():
                assert results_equal(result, reference), (query_id, mode)

    def test_q6_returns_revenue(self, dbs):
        params = ParamGen(seed=1).q6()
        result = QUERIES[6](dbs["monetdb"], params)
        assert len(result) == 1
        assert result[0][0] >= 0

    def test_q1_groups(self, dbs):
        params = ParamGen(seed=1).q1()
        result = QUERIES[1](dbs["monetdb"], params)
        assert 1 <= len(result) <= 6  # (flag, status) combinations

    def test_q3_top10(self, dbs):
        params = ParamGen(seed=1).q3()
        result = QUERIES[3](dbs["monetdb"], params)
        assert len(result) <= 10
        revenues = [row[1] for row in result]
        assert revenues == sorted(revenues, reverse=True)


class TestResultsEqual:
    def test_tolerates_cents(self):
        assert results_equal([(1, 100.00)], [(1, 100.01)])

    def test_rejects_structural_difference(self):
        assert not results_equal([(1,)], [(1,), (2,)])
        assert not results_equal([(1, 2)], [(1, 3)])

    def test_rejects_large_float_gap(self):
        assert not results_equal([(100.0,)], [(200.0,)])


class TestRunner:
    def test_run_query_sequence(self, data):
        run = run_query_sequence(data, "sideways", 6, variations=3, seed=5)
        assert len(run.seconds) == 3
        assert len(run.model_ms) == 3
        assert all(s >= 0 for s in run.seconds)

    def test_presort_cost_reported(self, data):
        run = run_query_sequence(data, "presorted", 6, variations=2, seed=5)
        assert run.presort_seconds > 0

    def test_mixed_workload(self, data):
        run = run_mixed_workload(data, "monetdb", batches=1, seed=5)
        assert len(run.seconds) == len(QUERIES)

    def test_verify_modes_agree(self, data):
        verify_modes_agree(data, ["monetdb", "sideways"], variations=1)
