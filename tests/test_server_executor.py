"""ServerExecutor: execution paths, caching, batching, deadlines."""

import threading
import time

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.errors import QueryTimeout, ServerError
from repro.server.executor import (
    ServedQuery,
    ServerExecutor,
    canonicalize,
    digest_columns,
)


@pytest.fixture
def executor(db):
    with ServerExecutor(db, workers=2, partitions=4) as ex:
        yield ex


def _span(lo, hi, attr="A", **kwargs):
    return Query("R", (Predicate(attr, Interval.half_open(lo, hi)),), **kwargs)


def test_canonicalize_is_schedule_independent(rng):
    a = rng.integers(0, 50, size=200).astype(np.int64)
    b = rng.integers(0, 50, size=200).astype(np.int64)
    shuffled = rng.permutation(200)
    one = canonicalize({"A": a, "B": b})
    other = canonicalize({"A": a[shuffled], "B": b[shuffled]})
    assert digest_columns(one) == digest_columns(other)


def test_partition_path_and_cache(executor):
    executor.partition("R", "A")
    query = _span(5_000, 40_000, projections=("A", "B"))
    first = executor.run(query)
    assert first.path == "partition"
    assert not first.cached
    again = executor.run(query)
    assert again.path == "cache"
    assert again.cached
    assert again.digest() == first.digest()


def test_read_path_after_engine_builds_cracker(executor):
    # The first two-predicate query pays the engine under the write lock...
    query = Query(
        "R",
        (
            Predicate("B", Interval.half_open(10_000, 80_000)),
            Predicate("C", Interval.half_open(20_000, 90_000)),
        ),
        projections=("B", "C"),
    )
    first = executor.run(query)
    assert first.path == "engine"
    # ... which leaves B's index boundaries in place, so the identical
    # selection (cache off via a distinct projection) probes read-only.
    probe = Query(
        "R",
        (
            Predicate("B", Interval.half_open(10_000, 80_000)),
            Predicate("C", Interval.half_open(30_000, 70_000)),
        ),
        projections=("B", "D"),
    )
    second = executor.run(probe)
    assert second.path == "read"


def test_all_paths_agree_with_serial(small_arrays, rng):
    queries = []
    for _ in range(16):
        lo = int(rng.integers(0, 80_000))
        width = int(rng.integers(500, 40_000))
        if rng.integers(0, 2):
            queries.append(_span(lo, lo + width, projections=("A", "B"),
                                 aggregates=(("sum", "B"),)))
        else:
            queries.append(Query(
                "R",
                (
                    Predicate("B", Interval.half_open(lo, lo + width)),
                    Predicate("D", Interval.half_open(lo // 2, lo // 2 + width)),
                ),
                projections=("B", "D"),
                aggregates=(("count", "B"),),
            ))

    serial_db = Database()
    serial_db.create_table("R", {k: v.copy() for k, v in small_arrays.items()})
    engine = SelectionCrackingEngine(serial_db)
    serial = [
        digest_columns(canonicalize(engine.run(q).columns)) for q in queries
    ]

    served_db = Database()
    served_db.create_table("R", {k: v.copy() for k, v in small_arrays.items()})
    with ServerExecutor(served_db, workers=4, partitions=4) as ex:
        ex.partition("R", "A")
        results = ex.run_batch(queries)
        repeats = ex.run_batch(queries)  # the second pass hits the cache
        assert [r.digest() for r in results] == serial
        assert [r.digest() for r in repeats] == serial
        assert set(ex.path_counts) >= {"partition", "cache"}


def test_run_batch_dedupes_identical_requests(executor):
    query = _span(1_000, 50_000, projections=("A",))
    results = executor.run_batch([query] * 10)
    assert len(results) == 10
    assert len({r.digest() for r in results}) == 1
    # One execution serves the whole batch (dedup, not ten cache misses).
    assert executor.queries_served == 1


def test_cache_invalidation_on_update(executor):
    executor.partition("R", "A")
    query = _span(0, 100_001, projections=("A",), aggregates=(("count", "A"),))
    before = executor.run(query)
    keys = executor.insert("R", {
        attr: np.array([50_000], dtype=np.int64) for attr in "ABCD"
    })
    after = executor.run(query)
    assert not after.cached  # the data version moved, the entry is stale
    assert after.row_count == before.row_count + 1
    executor.delete("R", keys)
    final = executor.run(query)
    assert final.row_count == before.row_count


def test_sql_and_served_query_entry_points(executor):
    result = executor.run("select A, B from R where A between 100 and 20000")
    assert result.row_count > 0
    served = ServedQuery.from_sql(
        "select A from R where A < 5000", executor.db
    )
    assert executor.run(served).path in ("partition", "read", "engine")


def test_timeout_raises_query_timeout(executor):
    # Hold the table's write lock from the test thread so any worker
    # serving this query blocks for longer than the deadline.
    lock = executor.registry.lock_for("R")
    query = Query(
        "R",
        (
            Predicate("C", Interval.half_open(0, 1)),
            Predicate("D", Interval.half_open(0, 1)),
        ),
    )
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with lock.write():
            acquired.set()
            release.wait(timeout=10)

    t = threading.Thread(target=holder)
    t.start()
    acquired.wait(timeout=5)
    try:
        with pytest.raises(QueryTimeout):
            executor.run(query, timeout=0.1)
    finally:
        release.set()
        t.join(timeout=5)


def test_run_batch_respects_per_request_timeouts(executor):
    # One stuck query must not hang the whole batch: run_batch enforces
    # each request's deadline just like run() does.
    lock = executor.registry.lock_for("R")
    query = Query(
        "R",
        (
            Predicate("C", Interval.half_open(0, 1)),
            Predicate("D", Interval.half_open(0, 1)),
        ),
    )
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with lock.write():
            acquired.set()
            release.wait(timeout=10)

    t = threading.Thread(target=holder)
    t.start()
    acquired.wait(timeout=5)
    try:
        with pytest.raises(QueryTimeout):
            executor.run_batch([ServedQuery(query, timeout=0.1)])
    finally:
        release.set()
        t.join(timeout=5)


def test_updates_never_race_partition_queries(executor):
    """Regression: a result labeled version V reflects *all* updates <= V.

    The old partition path never took the table lock, so a query could
    observe the bumped data version while an insert's rows were still
    waiting to be routed to the shards — and cache that short answer
    under the new version forever.  Row counts make the race visible:
    every insert adds exactly one qualifying row, so any served result
    must satisfy ``row_count == base + (data_version - v0)``.
    """
    column = executor.partition("R", "A")
    query = _span(0, 200_001, projections=("A",))
    base = executor.run(query)
    v0, base_count = base.data_version, base.row_count
    inserts = 10
    violations: list[str] = []
    done = threading.Event()

    # Deterministically widen the bump-to-routing window: the version has
    # already moved while the rows are still in flight to the shards.  The
    # table lock must keep queries out of that window entirely.
    routed = column.add_insertions

    def slow_routing(values, keys):
        time.sleep(0.02)
        routed(values, keys)

    column.add_insertions = slow_routing

    def writer():
        for _ in range(inserts):
            executor.insert("R", {
                attr: np.array([150_000], dtype=np.int64) for attr in "ABCD"
            })
        done.set()

    def reader():
        while True:
            finished = done.is_set()
            result = executor.run(query, timeout=30)
            expected = base_count + (result.data_version - v0)
            if result.row_count != expected:
                violations.append(
                    f"version {result.data_version}: "
                    f"{result.row_count} rows, expected {expected}"
                )
            if finished:
                return

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads)
    assert violations == []
    # The cache must not have been poisoned either: the final version's
    # answer stays correct on a repeat (served from cache).
    final = executor.run(query)
    assert final.row_count == base_count + inserts


def test_invalid_requests_rejected(db):
    with pytest.raises(ServerError, match="must be >= 1"):
        ServerExecutor(db, workers=0)
    with ServerExecutor(db, workers=1) as ex:
        with pytest.raises(ServerError, match="cannot serve"):
            ex.run(42)
        with pytest.raises(ServerError, match="cannot partition"):
            ex.partition("R", "A")  # partitions=0 by default
    with pytest.raises(ServerError, match="closed"):
        ex.submit(_span(0, 10))


def test_stats_report(executor):
    executor.partition("R", "A")
    query = _span(2_000, 30_000, projections=("A",))
    executor.run(query)
    executor.run(query)
    stats = executor.stats()
    assert stats["queries_served"] == 2
    assert stats["cache_hits"] == 1
    assert 0.0 < stats["cache_hit_rate"] < 1.0
    assert stats["paths"]["partition"] == 1
    assert stats["latency_p99"] >= stats["latency_p50"] >= 0.0
    assert "R.A" in stats["partitioned"]


# -- bytes-budgeted LRU result cache ----------------------------------------


def _result_of_bytes(nbytes: int) -> "ServedResult":
    from repro.server.executor import ServedResult

    rows = max(1, nbytes // 8)
    return ServedResult(columns={"A": np.zeros(rows, dtype=np.int64)})


def test_lru_cache_admits_and_counts():
    from repro.server.executor import ResultCacheLRU

    cache = ResultCacheLRU(1 << 20)
    result = _result_of_bytes(1024)
    assert cache.put(("k",), result)
    assert cache.get(("k",)) is result
    assert cache.get(("missing",)) is None
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["admissions"] == 1
    assert stats["evictions"] == 0
    assert stats["bytes"] == ResultCacheLRU.cost_of(result)


def test_lru_cache_evicts_least_recently_served():
    from repro.server.executor import ResultCacheLRU

    entry = ResultCacheLRU.cost_of(_result_of_bytes(4096))
    cache = ResultCacheLRU(3 * entry)
    for key in ("a", "b", "c"):
        cache.put((key,), _result_of_bytes(4096))
    assert cache.get(("a",)) is not None  # refresh "a": "b" is now LRU
    cache.put(("d",), _result_of_bytes(4096))
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is not None
    assert cache.stats()["evictions"] == 1
    assert cache.bytes <= cache.capacity_bytes


def test_lru_cache_refuses_oversized_entries():
    from repro.server.executor import ResultCacheLRU

    cache = ResultCacheLRU(1024)
    assert not cache.put(("big",), _result_of_bytes(1 << 20))
    assert len(cache) == 0
    assert cache.stats()["rejections"] == 1


def test_lru_cache_replaces_existing_key_without_double_count():
    from repro.server.executor import ResultCacheLRU

    cache = ResultCacheLRU(1 << 20)
    cache.put(("k",), _result_of_bytes(1024))
    cache.put(("k",), _result_of_bytes(2048))
    assert len(cache) == 1
    assert cache.bytes == ResultCacheLRU.cost_of(_result_of_bytes(2048))


def test_executor_cache_bytes_budget_evicts(db):
    """A tiny --cache-bytes budget forces evictions under serving load."""
    with ServerExecutor(db, workers=1, cache_bytes=8 * 1024) as executor:
        for i in range(12):
            executor.run(_span(i * 1_000, (i + 5) * 1_000, projections=("A", "B")))
        stats = executor.stats()["cache"]
        assert stats["capacity_bytes"] == 8 * 1024
        assert stats["bytes"] <= 8 * 1024
        assert stats["admissions"] + stats["rejections"] == 12
        assert stats["evictions"] > 0 or stats["rejections"] > 0


def test_executor_cache_bytes_zero_disables_cache(db):
    with ServerExecutor(db, workers=1, cache_bytes=0) as executor:
        query = _span(2_000, 30_000)
        executor.run(query)
        repeat = executor.run(query)
        assert not repeat.cached
        assert executor.stats()["cache"]["admissions"] == 0


# -- abandonment and batch deadline skew (overload regressions) --------------


def _stuck_query(lo=0, hi=1):
    return Query("R", (
        Predicate("C", Interval.half_open(lo, hi)),
        Predicate("D", Interval.half_open(lo, hi)),
    ))


def test_abandoned_timeout_result_never_cached(executor):
    """A waiter that times out abandons the request; the worker's late
    result must not be admitted to the cache (it would otherwise serve a
    stale answer to the next client as a hit)."""
    lock = executor.registry.lock_for("R")
    query = _stuck_query()
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with lock.write():
            acquired.set()
            release.wait(timeout=10)

    t = threading.Thread(target=holder)
    t.start()
    acquired.wait(timeout=5)
    try:
        with pytest.raises(QueryTimeout):
            executor.run(query, timeout=0.1)
        assert executor.stats()["abandoned"] == 1
    finally:
        release.set()
        t.join(timeout=10)
    # Let the abandoned worker finish computing its (uncacheable) answer.
    deadline = time.perf_counter() + 10
    while time.perf_counter() < deadline:
        stats = executor.stats()
        if stats["inflight"] == 0 and stats["queue_depth"] == 0:
            break
        time.sleep(0.01)
    fresh = executor.run(query)
    assert not fresh.cached


def test_run_batch_anchors_every_deadline_at_one_enqueue_instant(executor):
    """Batch members must share one enqueue timestamp: a request's
    position in the batch grants no extra budget."""
    seen = []
    original = executor.admit

    def spy(request, timeout=None, enqueued=None):
        seen.append(enqueued)
        return original(request, timeout=timeout, enqueued=enqueued)

    executor.admit = spy
    try:
        executor.run_batch([_span(0, 10), _span(10, 20), _span(20, 30)])
    finally:
        executor.admit = original
    assert len(seen) == 3
    assert all(e is not None for e in seen)
    assert len(set(seen)) == 1


def test_run_batch_budget_covers_queue_wait(db):
    """A batch member whose budget elapses while it waits behind an
    earlier member must time out — the old per-admission clock silently
    granted later members extra budget."""
    with ServerExecutor(db, workers=1, cache=False) as executor:
        lock = executor.registry.lock_for("R")
        acquired = threading.Event()

        def holder():
            with lock.write():
                acquired.set()
                time.sleep(0.4)

        t = threading.Thread(target=holder)
        t.start()
        acquired.wait(timeout=5)
        try:
            with pytest.raises(QueryTimeout):
                executor.run_batch([
                    ServedQuery(_stuck_query()),
                    ServedQuery(_stuck_query(1, 2), timeout=0.2),
                ])
        finally:
            t.join(timeout=10)
