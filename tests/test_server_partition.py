"""PartitionedColumn: pruning, balance, update routing, scatter-gather."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.errors import PlanError
from repro.server.locks import LockRegistry
from repro.server.partition import PartitionedColumn
from repro.stats.counters import StatsRecorder


def _column(values: np.ndarray, partitions: int) -> PartitionedColumn:
    db = Database()
    db.create_table("R", {"A": values.astype(np.int64)})
    return PartitionedColumn(
        db.table("R").column("A"), partitions, LockRegistry(), "R", "A",
        StatsRecorder(),
    )


@pytest.fixture
def values(rng) -> np.ndarray:
    return rng.integers(0, 100_000, size=20_000).astype(np.int64)


@pytest.mark.parametrize("partitions", [1, 3, 8])
def test_select_matches_unpartitioned(values, rng, partitions):
    column = _column(values, partitions)
    for _ in range(12):
        lo = int(rng.integers(0, 90_000))
        interval = Interval.half_open(lo, lo + int(rng.integers(100, 30_000)))
        got = np.sort(column.select(interval))
        want = np.flatnonzero(interval.mask(values))
        assert np.array_equal(got, want)


def test_pruning_skips_disjoint_shards(values):
    column = _column(values, 8)
    narrow = Interval.half_open(1_000, 2_000)
    relevant = column.relevant_shards(narrow)
    assert 1 <= len(relevant) < len(column.shards)
    # Pruned shards never get touched: their locks record no acquisitions.
    column.select(narrow)
    touched = {id(s) for s in relevant}
    for shard in column.shards:
        if id(shard) not in touched:
            assert shard.lock.read_acquires == 0
            assert shard.lock.write_acquires == 0


def test_quantile_bounds_balance_skew(rng):
    # Heavily skewed values: equal-width bounds would put almost everything
    # in one shard; quantile bounds keep shards within a small factor.
    skewed = (rng.zipf(1.2, size=30_000) % 100_000).astype(np.int64)
    column = _column(skewed, 8)
    sizes = [len(s.cracker) for s in column.shards]
    assert sum(sizes) == len(skewed)
    assert max(sizes) <= 4 * (len(skewed) // len(sizes))


def test_low_cardinality_collapses_shards():
    values = np.repeat(np.int64(7), 5_000)
    column = _column(values, 8)
    # All quantiles coincide, so the effective shard count collapses.
    assert len(column.shards) < 8
    got = column.select(Interval.closed(7, 7))
    assert len(got) == 5_000


def test_partition_count_validation(values):
    with pytest.raises(PlanError, match=">= 1"):
        _column(values, 0)


def test_updates_route_to_owning_shards(values):
    column = _column(values, 4)
    interval = Interval.half_open(10_000, 60_000)
    base = np.sort(column.select(interval))

    new_values = np.array([10_500, 59_999, 95_000], dtype=np.int64)
    new_keys = np.array([len(values), len(values) + 1, len(values) + 2],
                        dtype=np.int64)
    column.add_insertions(new_values, new_keys)
    got = np.sort(column.select(interval))
    assert np.array_equal(
        got, np.sort(np.concatenate([base, new_keys[:2]]))
    )

    # Delete one of the fresh rows plus one pre-existing qualifying row.
    victim = base[0]
    column.add_deletions(
        np.array([values[victim], 10_500], dtype=np.int64),
        np.array([victim, new_keys[0]], dtype=np.int64),
    )
    got = np.sort(column.select(interval))
    want = np.sort(np.concatenate([base[1:], new_keys[1:2]]))
    assert np.array_equal(got, want)


def test_apply_pending_all_drains(values):
    column = _column(values, 4)
    column.add_insertions(
        np.array([123, 99_999], dtype=np.int64),
        np.array([len(values), len(values) + 1], dtype=np.int64),
    )
    assert any(s.cracker.pending.has_pending() for s in column.shards)
    column.apply_pending_all()
    assert not any(s.cracker.pending.has_pending() for s in column.shards)


def test_partition_bounds_cover_domain(values):
    column = _column(values, 4)
    bounds = column.partition_bounds
    assert bounds[0] == -np.inf and bounds[-1] == np.inf
    assert bounds == sorted(bounds)


def test_select_one_cracks_under_write_lock(values):
    column = _column(values, 2)
    shard = column.shards[0]
    interval = Interval.half_open(0, 1_000)
    before = shard.lock.write_acquires
    PartitionedColumn.select_one(shard, interval)
    assert shard.lock.write_acquires == before + 1  # first touch cracks
    # A repeat of the same interval is answered by probe under the read side.
    before = shard.lock.write_acquires
    PartitionedColumn.select_one(shard, interval)
    assert shard.lock.write_acquires == before


def test_stats_shape(values):
    column = _column(values, 4)
    stats = column.stats()
    assert stats["partitions"] == len(column.shards)
    assert sum(stats["shard_rows"]) == len(values)
    assert len(stats["locks"]) == len(column.shards)
