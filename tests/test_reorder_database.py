"""Reordering strategies (Exp3 machinery) and the Database facade."""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.engine.reorder import (
    radix_cluster,
    reconstruct_radix,
    reconstruct_sorted,
    reconstruct_unordered,
)
from repro.errors import CatalogError
from repro.stats.counters import StatsRecorder


class TestReorderStrategies:
    @pytest.fixture
    def setup(self, rng):
        columns = [rng.integers(0, 1000, size=2_000) for _ in range(3)]
        keys = rng.permutation(2_000)[:400]
        return columns, keys

    def test_all_strategies_same_multiset(self, setup):
        columns, keys = setup
        unordered = reconstruct_unordered(columns, keys)
        sorted_ = reconstruct_sorted(columns, keys)
        radix = reconstruct_radix(columns, keys, cache_elements=256)
        for u, s, r in zip(unordered, sorted_, radix):
            assert sorted(u.tolist()) == sorted(s.tolist()) == sorted(r.tolist())

    def test_sorted_keeps_tuple_alignment(self, setup):
        columns, keys = setup
        outs = reconstruct_sorted(columns, keys)
        expected = sorted(
            zip(*(c[keys].tolist() for c in columns))
        )
        assert sorted(zip(*(o.tolist() for o in outs))) == expected

    def test_radix_keeps_tuple_alignment(self, setup):
        columns, keys = setup
        outs = reconstruct_radix(columns, keys, cache_elements=128)
        expected = sorted(zip(*(c[keys].tolist() for c in columns)))
        assert sorted(zip(*(o.tolist() for o in outs))) == expected

    def test_radix_cluster_groups_by_high_bits(self):
        keys = np.arange(1024)[::-1].copy()
        clustered = radix_cluster(keys, region_size=1024, cache_elements=256)
        # 4 clusters of 256; within the region each cluster's keys are a
        # contiguous key range.
        for i in range(4):
            segment = clustered[i * 256:(i + 1) * 256]
            assert segment.max() - segment.min() < 256

    def test_accounting_differs(self, setup):
        columns, keys = setup
        rec = StatsRecorder(cache_elements=256)
        with rec.frame() as unord:
            reconstruct_unordered(columns, keys, rec)
        with rec.frame() as radix:
            reconstruct_radix(columns, keys, 256, rec)
        assert unord.scattered_random > 0
        assert radix.clustered_random > 0


class TestDatabase:
    def test_unknown_table_errors(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.table("nope")
        with pytest.raises(CatalogError):
            db.insert("nope", {})
        with pytest.raises(CatalogError):
            db.delete("nope", np.array([0]))

    def test_insert_returns_keys_and_grows_tombstones(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(5)})
        keys = db.insert("T", {"A": np.array([10, 11])})
        assert keys.tolist() == [5, 6]
        assert len(db.tombstones("T")) == 7
        assert db.live_count("T") == 7

    def test_update_is_delete_plus_insert(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(5)})
        new_keys = db.update("T", np.array([2]), {"A": np.array([99])})
        assert db.live_count("T") == 5
        assert db.tombstones("T")[2]
        assert db.table("T").values("A")[new_keys[0]] == 99

    def test_sorted_copy_cached_then_invalidated(self, rng):
        db = Database()
        db.create_table("T", {"A": rng.integers(0, 100, size=500)})
        copy1, secs1 = db.sorted_copy("T", "A")
        copy2, secs2 = db.sorted_copy("T", "A")
        assert copy1 is copy2 and secs2 == 0.0
        db.insert("T", {"A": np.array([5])})
        copy3, secs3 = db.sorted_copy("T", "A")
        assert copy3 is not copy1
        assert len(copy3) == 501

    def test_sorted_copy_excludes_tombstones(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(10)})
        db.delete("T", np.array([0, 9]))
        copy, _ = db.sorted_copy("T", "A")
        assert len(copy) == 8

    def test_cracker_created_after_delete_sees_tombstones(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(100)})
        db.delete("T", np.array([7]))
        cracker = db.cracker_column("T", "A")
        keys = cracker.select(Interval.closed(0, 99))
        assert 7 not in keys

    def test_sideways_created_after_delete_excludes_keys(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(100), "B": np.arange(100) * 2})
        db.delete("T", np.array([7]))
        sw = db.sideways("T")
        res = sw.select_project("A", Interval.closed(0, 99), ["B"])
        assert 14 not in res["B"]
        assert len(res["B"]) == 99

    def test_partial_created_after_delete_excludes_keys(self, rng):
        db = Database()
        db.create_table("T", {"A": np.arange(100), "B": np.arange(100) * 2})
        db.delete("T", np.array([7]))
        pw = db.partial_sideways("T")
        res = pw.select_project("A", Interval.closed(0, 99), ["B"])
        assert 14 not in res["B"]
        assert len(res["B"]) == 99
