"""Fuzz the engines under CrackSan deep: zero violations, scan-identical results.

Every (engine, crack policy, workload pattern) cell runs a fresh database
with ``sanitize="deep"`` — so after every query the sanitizer sweeps every
live cracking structure, including base-permutation and tape-replay
consistency checks — and every result set must match a plain scan.
The adversarial patterns are the exp14 stochastic-cracking workloads that
historically stress the auxiliary-cut replay machinery hardest.
"""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.engine.scan import PlainEngine
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.engine.sideways_engine import SidewaysEngine
from repro.workloads.synthetic import adversarial_intervals, random_range

ROWS = 1_500
DOMAIN = 12_000
N_QUERIES = 12
SELECTIVITY = 0.04

ENGINES = ("selection_cracking", "sideways", "partial_sideways")
POLICIES = (None, "mdd1r", "ddr")
PATTERNS = ("uniform", "sequential", "zoom_in")


def make_db(policy):
    rng = np.random.default_rng(31)
    arrays = {
        attr: rng.integers(1, DOMAIN + 1, size=ROWS).astype(np.int64)
        for attr in "ABC"
    }
    db = Database(sanitize="deep", crack_policy=policy, crack_seed=17)
    db.create_table("R", arrays)
    return db


def make_engine(name, db):
    if name == "selection_cracking":
        return SelectionCrackingEngine(db)
    if name == "sideways":
        return SidewaysEngine(db, partial=False)
    return SidewaysEngine(db, partial=True)


def workload(pattern):
    if pattern == "uniform":
        rng = np.random.default_rng(23)
        return [random_range(rng, DOMAIN, SELECTIVITY) for _ in range(N_QUERIES)]
    return adversarial_intervals(
        pattern, DOMAIN, N_QUERIES, SELECTIVITY, seed=23
    )


@pytest.mark.slow
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p or "query_driven")
@pytest.mark.parametrize("engine_name", ENGINES)
def test_engine_fuzz_zero_violations(engine_name, policy, pattern):
    db = make_db(policy)
    engine = make_engine(engine_name, db)
    baseline = PlainEngine(db)  # scans only; never cracks
    for interval in workload(pattern):
        query = Query(
            table="R",
            predicates=(Predicate("A", interval),),
            projections=("B", "C"),
        )
        got = engine.run(query)
        want = baseline.run(query)
        assert got.row_count == want.row_count
        for attr in ("B", "C"):
            assert np.array_equal(
                np.sort(got.columns[attr]), np.sort(want.columns[attr])
            ), f"{engine_name}/{policy}/{pattern}: {attr} diverged from scan"
    assert db.sanitizer.checks_run > 0, "deep sweeps must actually run"
    assert db.sanitizer.violations == []


@pytest.mark.slow
def test_fuzz_with_updates_under_deep_sanitize():
    """Interleave inserts/deletes with adversarial queries; still clean."""
    db = make_db("mdd1r")
    engine = make_engine("sideways", db)
    baseline = PlainEngine(db)
    rng = np.random.default_rng(41)
    intervals = adversarial_intervals(
        "sequential", DOMAIN, N_QUERIES, SELECTIVITY, seed=29
    )
    for i, interval in enumerate(intervals):
        if i % 3 == 1:
            db.insert("R", {
                attr: rng.integers(1, DOMAIN + 1, size=20).astype(np.int64)
                for attr in "ABC"
            })
        if i % 3 == 2:
            live = np.flatnonzero(~db.tombstones("R"))
            db.delete("R", rng.choice(live, size=10, replace=False))
        query = Query(
            table="R",
            predicates=(Predicate("A", interval),),
            projections=("B",),
        )
        got = engine.run(query)
        want = baseline.run(query)
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        )
    assert db.sanitizer.checks_run > 0
    assert db.sanitizer.violations == []
