"""Fast regression guards for the paper's headline claims.

The benchmarks regenerate the full figures; these are small-scale versions
of the same shape assertions so that ``pytest tests/`` alone catches a
change that silently breaks the scientific result (e.g. an accounting bug
that makes selection cracking look cache-friendly).
All assertions use the model cost — the deterministic signal.
"""

import numpy as np
import pytest

from repro.bench.harness import SequenceRunner, SystemSetup
from repro.stats.memory_model import DEFAULT_MODEL
from repro.workloads.synthetic import (
    BatchWorkload,
    SyntheticTable,
    projection_query,
    random_range,
)

ROWS = 80_000  # must exceed the model cache (64K elements) so scattered access exists
QUERIES = 40


@pytest.fixture(scope="module")
def table():
    return SyntheticTable(rows=ROWS, domain=ROWS * 100, seed=5)


@pytest.fixture(scope="module")
def runs(table):
    """One query sequence (1 selection, 4 reconstructions) per system."""
    arrays = table.arrays()
    out = {}
    for system in ("monetdb", "presorted", "selection_cracking",
                   "sideways", "partial_sideways"):
        setup = SystemSetup(system, {"R": arrays})
        if system == "presorted":
            setup.engine.prepare("R", ["A1"])
        runner = SequenceRunner(setup)
        rng = np.random.default_rng(17)
        for _ in range(QUERIES):
            interval = random_range(rng, table.domain, 0.2)
            runner.run(projection_query(
                "R", "A1", interval, ["A2", "A3", "A4", "A5"]
            ))
        out[system] = runner
    return out


def steady(runner, fraction=3):
    tail = runner.model_ms[-len(runner.model_ms) // fraction:]
    return sum(tail) / len(tail)


class TestSection3Claims:
    def test_sideways_beats_plain_monetdb_steady_state(self, runs):
        assert steady(runs["sideways"]) < steady(runs["monetdb"])

    def test_sideways_close_to_presorted(self, runs):
        """Fig 4(a): 'achieves performance similar to presorted data'."""
        assert steady(runs["sideways"]) < 4 * steady(runs["presorted"])

    def test_selection_cracking_loses_to_monetdb_on_reconstruction(self, runs):
        """Exp1: scattered TR makes selection cracking the slowest system."""
        assert steady(runs["selection_cracking"]) > steady(runs["monetdb"])

    def test_selection_cracking_reconstruction_is_scattered(self, runs):
        stats = runs["selection_cracking"].setup.db.recorder.root
        assert stats.scattered_random > 10 * max(1, stats.clustered_random)

    def test_sideways_avoids_scattered_access(self, runs):
        side = runs["sideways"].setup.db.recorder.root
        selc = runs["selection_cracking"].setup.db.recorder.root
        assert side.scattered_random < selc.scattered_random / 10

    def test_first_query_pays_then_amortizes(self, runs):
        series = runs["sideways"].model_ms
        assert series[0] > 3 * steady(runs["sideways"])

    def test_no_free_lunch_presorting_cost(self, runs):
        """Presorted wins per query but paid an up-front sort."""
        assert runs["presorted"].setup.engine.presort_seconds > 0


class TestSection4Claims:
    @pytest.fixture(scope="class")
    def partial_runs(self):
        workload = BatchWorkload(rows=ROWS, domain=ROWS * 100, seed=23)
        sequence = workload.sequence(150, batch_size=15,
                                     result_rows=ROWS // 100)
        out = {}
        for system in ("sideways", "partial_sideways"):
            setup = SystemSetup(
                system, {workload.table: workload.arrays()},
                full_map_budget=(2 * ROWS if system == "sideways" else None),
                chunk_budget=(2 * ROWS if system == "partial_sideways" else None),
            )
            runner = SequenceRunner(setup)
            runner.run_all(sequence)
            out[system] = runner
        return out

    def test_partial_maps_avoid_per_query_peaks(self, partial_runs):
        """Fig 9: full maps' worst query dwarfs partial maps' worst."""
        full_peak = max(partial_runs["sideways"].model_ms[1:])
        partial_peak = max(partial_runs["partial_sideways"].model_ms[1:])
        assert full_peak > 2 * partial_peak

    def test_partial_maps_respect_the_threshold(self, partial_runs):
        assert max(partial_runs["partial_sideways"].storage_samples) <= 2 * ROWS

    def test_partial_maps_store_less_for_selective_workloads(self, partial_runs):
        assert (max(partial_runs["partial_sideways"].storage_samples)
                <= max(partial_runs["sideways"].storage_samples))


class TestModelSanity:
    def test_scattered_pricier_than_sequential_per_element(self):
        assert DEFAULT_MODEL.ns_dram_miss > 5 * DEFAULT_MODEL.ns_sequential_element

    def test_cache_classification_threshold(self):
        from repro.stats.counters import StatsRecorder

        recorder = StatsRecorder(cache_elements=100)
        recorder.random(1, region_size=100)
        recorder.random(1, region_size=101)
        assert recorder.root.clustered_random == 1
        assert recorder.root.scattered_random == 1
