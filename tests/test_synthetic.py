"""Synthetic workload generators."""

import numpy as np

from repro.workloads.synthetic import (
    BatchWorkload,
    SyntheticTable,
    UpdateStream,
    make_table_arrays,
    projection_query,
    random_range,
    skewed_range,
)


class TestTables:
    def test_synthetic_table_shape(self):
        table = SyntheticTable(rows=1_000, seed=1)
        arrays = table.arrays()
        assert set(arrays) == {f"A{i}" for i in range(1, 10)}
        assert all(len(v) == 1_000 for v in arrays.values())
        assert all(v.min() >= 1 for v in arrays.values())

    def test_deterministic_by_seed(self):
        a = SyntheticTable(rows=100, seed=7).arrays()
        b = SyntheticTable(rows=100, seed=7).arrays()
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestRanges:
    def test_random_range_selectivity(self, rng):
        domain = 100_000
        values = np.random.default_rng(0).integers(1, domain + 1, size=50_000)
        fracs = []
        for _ in range(50):
            iv = random_range(rng, domain, 0.2)
            fracs.append(iv.mask(values).mean())
        assert 0.15 < np.mean(fracs) < 0.25

    def test_point_query(self, rng):
        iv = random_range(rng, 1_000, 0.0)
        assert iv.lo == iv.hi and iv.lo_inclusive and iv.hi_inclusive

    def test_skewed_range_hits_hot_zone(self, rng):
        domain = 100_000
        hot_hits = 0
        for _ in range(200):
            iv = skewed_range(rng, domain, 0.01, hot_fraction=0.5)
            if iv.lo < domain * 0.5:
                hot_hits += 1
        assert hot_hits > 150  # ~90% expected


class TestBatchWorkload:
    def test_attributes(self):
        wl = BatchWorkload(n_types=3)
        assert wl.attributes == ["A", "B1", "C1", "B2", "C2", "B3", "C3"]

    def test_sequence_cycles_types(self):
        wl = BatchWorkload(rows=1_000, n_types=2)
        queries = wl.sequence(total=8, batch_size=2, result_rows=10)
        projections = [q.projections[0] for q in queries]
        assert projections == ["C1", "C1", "C2", "C2", "C1", "C1", "C2", "C2"]

    def test_queries_runnable(self):
        from repro.engine import Database, SidewaysEngine

        wl = BatchWorkload(rows=2_000)
        db = Database()
        db.create_table(wl.table, wl.arrays())
        engine = SidewaysEngine(db)
        for query in wl.sequence(total=10, batch_size=2, result_rows=50):
            result = engine.run(query)
            assert result.row_count >= 0


class TestUpdateStream:
    def test_insert_batch_shape(self):
        stream = UpdateStream(domain=1_000)
        batch = stream.insert_batch(["A", "B"], 10)
        assert set(batch) == {"A", "B"}
        assert all(len(v) == 10 for v in batch.values())

    def test_delete_keys_subset(self):
        stream = UpdateStream()
        live = np.arange(100)
        victims = stream.delete_keys(live, 10)
        assert len(victims) == 10
        assert np.isin(victims, live).all()
        assert len(np.unique(victims)) == 10

    def test_delete_clamped_to_live(self):
        stream = UpdateStream()
        victims = stream.delete_keys(np.arange(3), 10)
        assert len(victims) == 3


def test_projection_query_shape():
    from repro.cracking.bounds import Interval

    q = projection_query("R", "A", Interval.open(1, 5), ["B", "C"])
    assert q.aggregates == (("max", "B"), ("max", "C"))
    assert q.predicates[0].attr == "A"


def test_make_table_arrays():
    arrays = make_table_arrays(50, ["x", "y"], 100, seed=3)
    assert set(arrays) == {"x", "y"}
    assert all((v >= 1).all() and (v <= 100).all() for v in arrays.values())
