"""Bound / Interval semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cracking.bounds import Bound, Interval, Side, interval_from_bounds
from repro.errors import PredicateError


class TestBound:
    def test_ordering_lt_before_le(self):
        assert Bound(5, Side.LT) < Bound(5, Side.LE)
        assert Bound(4, Side.LE) < Bound(5, Side.LT)

    def test_below_mask_lt(self):
        arr = np.array([1, 5, 9])
        assert Bound(5, Side.LT).below_mask(arr).tolist() == [True, False, False]

    def test_below_mask_le(self):
        arr = np.array([1, 5, 9])
        assert Bound(5, Side.LE).below_mask(arr).tolist() == [True, True, False]

    def test_repr_shows_operator(self):
        assert "<" in repr(Bound(3, Side.LT))
        assert "<=" in repr(Bound(3, Side.LE))


class TestIntervalConstruction:
    def test_open(self):
        iv = Interval.open(1, 10)
        assert not iv.lo_inclusive and not iv.hi_inclusive

    def test_closed(self):
        iv = Interval.closed(1, 10)
        assert iv.lo_inclusive and iv.hi_inclusive

    def test_half_open(self):
        iv = Interval.half_open(1, 10)
        assert iv.lo_inclusive and not iv.hi_inclusive

    def test_point(self):
        iv = Interval.point(7)
        assert iv.contains(7)
        assert not iv.contains(6)
        assert not iv.contains(8)

    def test_inverted_range_rejected(self):
        with pytest.raises(PredicateError):
            Interval.open(10, 1)

    def test_empty_open_range_rejected(self):
        with pytest.raises(PredicateError):
            Interval.open(5, 5)

    def test_degenerate_closed_range_allowed(self):
        Interval.closed(5, 5)

    def test_one_sided(self):
        assert Interval.at_least(3).contains(3)
        assert not Interval.at_least(3, inclusive=False).contains(3)
        assert Interval.at_most(3).contains(3)
        assert not Interval.at_most(3, inclusive=False).contains(3)


class TestIntervalBounds:
    def test_open_interval_bounds(self):
        iv = Interval.open(1, 10)
        assert iv.lower_bound() == Bound(1, Side.LE)
        assert iv.upper_bound() == Bound(10, Side.LT)

    def test_closed_interval_bounds(self):
        iv = Interval.closed(1, 10)
        assert iv.lower_bound() == Bound(1, Side.LT)
        assert iv.upper_bound() == Bound(10, Side.LE)

    def test_unbounded_sides(self):
        assert Interval.at_most(5).lower_bound() is None
        assert Interval.at_least(5).upper_bound() is None

    def test_point_bounds_distinct_and_ordered(self):
        iv = Interval.point(5)
        assert iv.lower_bound() < iv.upper_bound()


class TestIntervalMask:
    def test_open_mask(self):
        arr = np.array([1, 2, 3, 4, 5])
        assert Interval.open(1, 5).mask(arr).tolist() == [False, True, True, True, False]

    def test_closed_mask(self):
        arr = np.array([1, 2, 3])
        assert Interval.closed(1, 3).mask(arr).all()

    def test_unbounded_mask(self):
        arr = np.array([1, 2, 3])
        assert Interval().mask(arr).all()


@given(
    lo=st.integers(-1000, 1000),
    width=st.integers(0, 500),
    lo_inc=st.booleans(),
    hi_inc=st.booleans(),
    values=st.lists(st.integers(-1200, 1200), min_size=1, max_size=60),
)
def test_mask_matches_contains(lo, width, lo_inc, hi_inc, values):
    hi = lo + width
    if lo == hi and not (lo_inc and hi_inc):
        return
    iv = Interval(lo, hi, lo_inclusive=lo_inc, hi_inclusive=hi_inc)
    arr = np.array(values)
    mask = iv.mask(arr)
    for value, bit in zip(values, mask):
        assert bit == iv.contains(value)


@given(
    lo=st.one_of(st.none(), st.integers(-100, 100)),
    width=st.integers(0, 100),
    lo_inc=st.booleans(),
    hi_inc=st.booleans(),
)
def test_interval_from_bounds_roundtrip(lo, width, lo_inc, hi_inc):
    hi = None if lo is None else lo + width
    if lo is not None and lo == hi and not (lo_inc and hi_inc):
        return
    iv = Interval(lo, hi, lo_inclusive=lo_inc, hi_inclusive=hi_inc)
    rebuilt = interval_from_bounds(iv.lower_bound(), iv.upper_bound())
    arr = np.arange(-150, 250)
    assert np.array_equal(iv.mask(arr), rebuilt.mask(arr))
