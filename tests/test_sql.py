"""The SQL front-end."""

import numpy as np
import pytest

from repro import sql
from repro.engine import Database, PlainEngine, SidewaysEngine
from repro.errors import PlanError


@pytest.fixture
def sqldb(rng):
    db = Database()
    db.create_table(
        "R",
        {
            "A": rng.integers(1, 1_001, size=2_000),
            "B": rng.integers(1, 1_001, size=2_000),
            "C": rng.integers(1, 1_001, size=2_000),
            "tag": np.array(
                [["red", "green", "blue"][i % 3] for i in range(2_000)]
            ),
        },
    )
    return db


class TestParsing:
    def test_simple_select(self, sqldb):
        query = sql.parse("SELECT B, C FROM R WHERE A < 100", sqldb)
        assert query.table == "R"
        assert query.projections == ("B", "C")
        assert query.predicates[0].attr == "A"
        assert query.predicates[0].interval.hi == 100
        assert not query.predicates[0].interval.hi_inclusive

    def test_aggregates(self, sqldb):
        query = sql.parse("SELECT max(B), avg(C) FROM R", sqldb)
        assert query.aggregates == (("max", "B"), ("avg", "C"))
        assert query.projections == ()

    def test_count_star(self, sqldb):
        query = sql.parse("SELECT count(*) FROM R WHERE A > 5", sqldb)
        assert query.aggregates == (("count", "A"),)

    def test_between(self, sqldb):
        query = sql.parse("SELECT B FROM R WHERE A BETWEEN 10 AND 20", sqldb)
        iv = query.predicates[0].interval
        assert iv.lo == 10 and iv.lo_inclusive
        assert iv.hi == 20 and iv.hi_inclusive

    def test_range_merge(self, sqldb):
        query = sql.parse("SELECT B FROM R WHERE 10 < A AND A <= 20", sqldb)
        assert len(query.predicates) == 1
        iv = query.predicates[0].interval
        assert iv.lo == 10 and not iv.lo_inclusive
        assert iv.hi == 20 and iv.hi_inclusive

    def test_reversed_operand_order(self, sqldb):
        query = sql.parse("SELECT B FROM R WHERE 100 >= A", sqldb)
        iv = query.predicates[0].interval
        assert iv.hi == 100 and iv.hi_inclusive

    def test_disjunction(self, sqldb):
        query = sql.parse("SELECT C FROM R WHERE A < 10 OR B > 990", sqldb)
        assert not query.conjunctive
        assert len(query.predicates) == 2

    def test_string_literal_resolved_to_code(self, sqldb):
        query = sql.parse("SELECT A FROM R WHERE tag = 'green'", sqldb)
        code = sqldb.table("R").column("tag").dictionary.code_of("green")
        iv = query.predicates[0].interval
        assert iv.lo == iv.hi == code

    def test_case_insensitive_keywords(self, sqldb):
        query = sql.parse("select B from R where A < 5", sqldb)
        assert query.table == "R"


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT FROM R",
        "SELECT B R",
        "SELECT B FROM R WHERE",
        "SELECT B FROM R WHERE A << 3",
        "SELECT B FROM R WHERE A < 3 AND B > 2 OR C = 1",
        "SELECT B FROM R WHERE A < 3 extra",
        "SELECT max(*) FROM R",
        "SELECT B FROM R WHERE A = 'oops'",
        "SELECT B FROM R WHERE A > 10 AND A < 5",
    ])
    def test_rejected(self, sqldb, bad):
        with pytest.raises(PlanError):
            sql.parse(bad, sqldb)

    def test_sum_star_rejected(self, sqldb):
        with pytest.raises(PlanError):
            sql.parse("SELECT sum(*) FROM R", sqldb)


class TestExecution:
    def test_matches_manual_query(self, sqldb):
        engine = PlainEngine(sqldb)
        result = sql.execute(
            "SELECT B FROM R WHERE A BETWEEN 100 AND 300 AND C < 500", engine
        )
        data = sqldb.table("R")
        mask = ((data.values("A") >= 100) & (data.values("A") <= 300)
                & (data.values("C") < 500))
        assert np.array_equal(np.sort(result.columns["B"]),
                              np.sort(data.values("B")[mask]))

    def test_engines_agree_on_sql(self, sqldb):
        statement = (
            "SELECT max(B), count(*) FROM R WHERE A < 700 AND tag = 'red'"
        )
        plain = sql.execute(statement, PlainEngine(sqldb)).aggregates
        sideways = sql.execute(statement, SidewaysEngine(sqldb)).aggregates
        assert plain == sideways

    def test_string_equality_query(self, sqldb):
        engine = PlainEngine(sqldb)
        result = sql.execute("SELECT count(*) FROM R WHERE tag = 'blue'", engine)
        data = sqldb.table("R")
        dictionary = data.column("tag").dictionary
        expected = float(
            (data.values("tag") == dictionary.code_of("blue")).sum()
        )
        (value,) = result.aggregates.values()
        assert value == expected

    def test_escaped_quote(self, rng):
        db = Database()
        db.create_table("T", {"name": np.array(["o'brien", "smith"]),
                              "x": np.array([1, 2])})
        result = sql.execute(
            "SELECT x FROM T WHERE name = 'o''brien'", PlainEngine(db)
        )
        assert result.columns["x"].tolist() == [1]
