"""BATs, relations, catalog, and column types."""

import numpy as np
import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.types import ColumnType, Dictionary, coerce_column


class TestTypes:
    def test_coerce_int(self):
        arr, ctype = coerce_column([1, 2, 3])
        assert ctype is ColumnType.INT
        assert arr.dtype == np.int64

    def test_coerce_float(self):
        arr, ctype = coerce_column(np.array([1.5, 2.5]))
        assert ctype is ColumnType.FLOAT

    def test_coerce_rejects_2d(self):
        with pytest.raises(SchemaError):
            coerce_column(np.zeros((2, 2)))

    def test_coerce_rejects_strings_without_dict(self):
        with pytest.raises(SchemaError):
            coerce_column(np.array(["a", "b"]))


class TestDictionary:
    def test_codes_follow_sort_order(self):
        dictionary, codes = Dictionary.from_strings(["pear", "apple", "pear", "fig"])
        assert dictionary.values == ("apple", "fig", "pear")
        assert codes.tolist() == [2, 0, 2, 1]

    def test_code_of(self):
        dictionary, _ = Dictionary.from_strings(["b", "a", "c"])
        assert dictionary.code_of("b") == 1
        with pytest.raises(SchemaError):
            dictionary.code_of("zzz")

    def test_decode_roundtrip(self):
        dictionary, codes = Dictionary.from_strings(["x", "y", "x"])
        assert dictionary.decode(codes) == ["x", "y", "x"]

    def test_prefix_range(self):
        dictionary, _ = Dictionary.from_strings(
            ["forest green", "forever", "fork", "apple", "forest blue"]
        )
        lo, hi = dictionary.prefix_range("forest")
        matched = dictionary.values[lo:hi]
        assert set(matched) == {"forest blue", "forest green"}

    def test_prefix_range_empty(self):
        dictionary, _ = Dictionary.from_strings(["a", "b"])
        lo, hi = dictionary.prefix_range("zebra")
        assert lo == hi


class TestBAT:
    def test_virtual_keys(self):
        bat = BAT.from_values([10, 20, 30])
        assert bat.is_base
        assert bat.materialized_keys().tolist() == [0, 1, 2]

    def test_slice_keeps_positions(self):
        bat = BAT.from_values([10, 20, 30, 40])
        view = bat.slice(1, 3)
        assert view.values.tolist() == [20, 30]
        assert view.materialized_keys().tolist() == [1, 2]

    def test_gather(self):
        bat = BAT.from_values([10, 20, 30, 40])
        picked = bat.gather(np.array([3, 0]))
        assert picked.values.tolist() == [40, 10]
        assert picked.keys.tolist() == [3, 0]

    def test_append(self):
        bat = BAT.from_values([1, 2]).append(BAT.from_values([3]))
        assert bat.values.tolist() == [1, 2, 3]

    def test_append_type_mismatch(self):
        with pytest.raises(SchemaError):
            BAT.from_values([1]).append(BAT.from_values([1.5]))

    def test_from_strings(self):
        bat = BAT.from_strings(["b", "a"])
        assert bat.ctype is ColumnType.DICT
        assert bat.dictionary.decode(bat.values) == ["b", "a"]


class TestRelation:
    def test_from_arrays_encodes_strings(self):
        rel = Relation.from_arrays("R", {"a": [1, 2], "s": np.array(["x", "y"])})
        assert rel.column("s").ctype is ColumnType.DICT
        assert len(rel) == 2

    def test_mismatched_lengths_rejected(self):
        rel = Relation.from_arrays("R", {"a": [1, 2]})
        with pytest.raises(SchemaError):
            rel.add_column("b", BAT.from_values([1, 2, 3]))

    def test_duplicate_column_rejected(self):
        rel = Relation.from_arrays("R", {"a": [1]})
        with pytest.raises(CatalogError):
            rel.add_column("a", BAT.from_values([2]))

    def test_missing_column(self):
        rel = Relation.from_arrays("R", {"a": [1]})
        with pytest.raises(CatalogError):
            rel.column("zzz")

    def test_append_rows(self):
        rel = Relation.from_arrays("R", {"a": [1], "b": [2]})
        rel.append_rows({"a": [10], "b": [20]})
        assert len(rel) == 2
        assert rel.values("a").tolist() == [1, 10]

    def test_append_rows_requires_all_columns(self):
        rel = Relation.from_arrays("R", {"a": [1], "b": [2]})
        with pytest.raises(SchemaError):
            rel.append_rows({"a": [10]})

    def test_delete_rows(self):
        rel = Relation.from_arrays("R", {"a": [1, 2, 3]})
        rel.delete_rows(np.array([1]))
        assert rel.values("a").tolist() == [1, 3]

    def test_sorted_copy(self):
        rel = Relation.from_arrays("R", {"a": [3, 1, 2], "b": [30, 10, 20]})
        copy = rel.sorted_copy("a")
        assert copy.values("a").tolist() == [1, 2, 3]
        assert copy.values("b").tolist() == [10, 20, 30]

    def test_sorted_copy_with_minor_key(self):
        rel = Relation.from_arrays("R", {"a": [1, 1, 0], "b": [2, 1, 9]})
        copy = rel.sorted_copy("a", then_by=("b",))
        assert copy.values("b").tolist() == [9, 1, 2]


class TestCatalog:
    def test_add_get_drop(self):
        cat = Catalog()
        rel = Relation.from_arrays("R", {"a": [1]})
        cat.add(rel)
        assert cat.get("R") is rel
        assert "R" in cat
        cat.drop("R")
        assert "R" not in cat

    def test_duplicate_add(self):
        cat = Catalog()
        cat.add(Relation.from_arrays("R", {"a": [1]}))
        with pytest.raises(CatalogError):
            cat.add(Relation.from_arrays("R", {"a": [1]}))

    def test_get_missing(self):
        with pytest.raises(CatalogError):
            Catalog().get("missing")
