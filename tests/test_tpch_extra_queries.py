"""The ten non-paper TPC-H queries: cross-mode agreement and content."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.workloads.tpch import MODES, ModeExecutor, generate
from repro.workloads.tpch.queries import results_equal
from repro.workloads.tpch.queries_extra import EXTRA_QUERIES, ExtraParamGen


@pytest.fixture(scope="module")
def data():
    return generate(scale_factor=0.005, seed=33)


@pytest.fixture(scope="module")
def dbs(data):
    out = {}
    for mode in list(MODES) + ["partial_sideways"]:
        db = Database()
        data.load_into(db)
        out[mode] = ModeExecutor(db, mode)
    return out


class TestAgreement:
    @pytest.mark.parametrize("query_id", sorted(EXTRA_QUERIES))
    def test_all_modes_agree(self, dbs, query_id):
        gen = ExtraParamGen(seed=11 + query_id)
        fn = EXTRA_QUERIES[query_id]
        for _ in range(2):
            params = getattr(gen, f"q{query_id}")()
            results = {mode: fn(ex, params) for mode, ex in dbs.items()}
            reference = results["monetdb"]
            for mode, result in results.items():
                assert results_equal(result, reference), (query_id, mode)


class TestContent:
    def test_q13_has_zero_bucket(self, dbs):
        gen = ExtraParamGen(seed=1)
        rows = EXTRA_QUERIES[13](dbs["monetdb"], gen.q13())
        counts = {count for count, _freq in rows}
        assert 0 in counts  # a third of customers place no orders

    def test_q13_frequencies_cover_all_customers(self, dbs, data):
        gen = ExtraParamGen(seed=2)
        rows = EXTRA_QUERIES[13](dbs["monetdb"], gen.q13())
        assert sum(freq for _count, freq in rows) == data.row_counts()["customer"]

    def test_q11_values_descend(self, dbs):
        gen = ExtraParamGen(seed=3)
        rows = EXTRA_QUERIES[11](dbs["monetdb"], gen.q11())
        values = [v for _p, v in rows]
        assert values == sorted(values, reverse=True)

    def test_q5_revenue_descends(self, dbs):
        gen = ExtraParamGen(seed=4)
        rows = EXTRA_QUERIES[5](dbs["monetdb"], gen.q5())
        revenues = [r for _n, r in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q2_minimum_cost_property(self, dbs, data):
        """Every reported supplier attains the min supply cost for its part
        among the suppliers of the chosen region."""
        from repro.workloads.tpch.queries_extra import _nation_region_mask

        gen = ExtraParamGen(seed=5)
        ex = dbs["monetdb"]
        db = ex.db
        for _ in range(6):
            params = gen.q2()
            rows = EXTRA_QUERIES[2](ex, params)
            ps = db.table("partsupp")
            in_region = _nation_region_mask(ex, params["region"])
            s_nat = db.table("supplier").values("s_nationkey")
            region_supplier = in_region[s_nat[ps.values("ps_suppkey") - 1]]
            for _bal, _nat, supp, part in rows:
                mask = (ps.values("ps_partkey") == part) & region_supplier
                costs = ps.values("ps_supplycost")[mask]
                reported = ps.values("ps_supplycost")[
                    mask & (ps.values("ps_suppkey") == supp)
                ]
                assert reported.min() <= costs.min() + 1e-9

    def test_q22_customers_have_no_orders(self, dbs):
        gen = ExtraParamGen(seed=6)
        rows = EXTRA_QUERIES[22](dbs["monetdb"], gen.q22())
        assert rows, "expected some order-less wealthy customers"
        for _nation, count, balance in rows:
            assert count > 0 and balance > 0

    def test_q21_counts_positive(self, dbs):
        gen = ExtraParamGen(seed=7)
        found = 0
        for _ in range(8):
            rows = EXTRA_QUERIES[21](dbs["monetdb"], gen.q21())
            found += len(rows)
            for _supp, count in rows:
                assert count >= 1
        assert found > 0

    def test_q18_threshold_respected(self, dbs, data):
        gen = ExtraParamGen(seed=8)
        params = {"quantity": 250}  # lower threshold so rows exist at tiny SF
        rows = EXTRA_QUERIES[18](dbs["monetdb"], params)
        for _c, _o, _d, _price, qty in rows:
            assert qty > 250

    def test_q17_nonnegative(self, dbs):
        gen = ExtraParamGen(seed=9)
        for _ in range(4):
            rows = EXTRA_QUERIES[17](dbs["monetdb"], gen.q17())
            assert rows[0][0] >= 0
