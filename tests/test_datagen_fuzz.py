"""Property-based invariants of the TPC-H generator across scale factors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.tpch.datagen import generate
from repro.workloads.tpch.dates import CURRENT_DATE, END_DATE, START_DATE


@settings(max_examples=10, deadline=None)
@given(
    sf=st.floats(0.001, 0.01),
    seed=st.integers(0, 1_000),
)
def test_generator_invariants(sf, seed):
    data = generate(scale_factor=sf, seed=seed)
    counts = data.row_counts()

    # Structural cardinalities.
    assert counts["region"] == 5
    assert counts["nation"] == 25
    assert counts["partsupp"] == 4 * counts["part"]
    assert counts["orders"] <= counts["lineitem"] <= 7 * counts["orders"]

    orders = data.tables["orders"]
    line = data.tables["lineitem"]
    part = data.tables["part"]

    # Foreign keys stay in range.
    assert orders["o_custkey"].min() >= 1
    assert orders["o_custkey"].max() <= counts["customer"]
    assert line["l_partkey"].max() <= counts["part"]
    assert line["l_suppkey"].max() <= counts["supplier"]
    assert line["l_orderkey"].max() <= counts["orders"]
    # A third of customers place no orders.
    assert not np.isin(orders["o_custkey"] % 3, [0]).any()

    # Date arithmetic.
    assert orders["o_orderdate"].min() >= START_DATE
    assert line["l_shipdate"].max() <= END_DATE + 121
    assert (line["l_shipdate"] < line["l_receiptdate"]).all()
    odate = orders["o_orderdate"][line["l_orderkey"] - 1]
    assert (line["l_shipdate"] > odate).all()
    assert (line["l_commitdate"] >= odate + 30).all()

    # Return-flag rule.
    returned = np.isin(line["l_returnflag"], ["R", "A"])
    assert (line["l_receiptdate"][returned] <= CURRENT_DATE).all()

    # Money columns.
    assert (line["l_extendedprice"] > 0).all()
    assert (orders["o_totalprice"] > 0).all()
    assert (line["l_discount"] >= 0).all() and (line["l_discount"] <= 0.10).all()

    # Part vocabulary columns decode (strings, later dict-encoded on load).
    assert all(" " in str(t) for t in part["p_type"][:10])
    assert all(str(b).startswith("Brand#") for b in part["p_brand"][:10])


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_generator_deterministic(seed):
    a = generate(scale_factor=0.002, seed=seed)
    b = generate(scale_factor=0.002, seed=seed)
    for table in a.tables:
        for column in a.tables[table]:
            assert np.array_equal(a.tables[table][column], b.tables[table][column])
