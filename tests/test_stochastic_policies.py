"""Stochastic cracking: policies, determinism, replay, and accounting."""

import numpy as np
import pytest

from repro.cracking import stochastic
from repro.cracking.bounds import Bound, Interval, Side
from repro.cracking.column import CrackerColumn
from repro.cracking.stochastic import (
    DEFAULT_MIN_PIECE,
    POLICIES,
    POLICY_NAMES,
    is_stochastic,
    policy_rng,
    resolve_policy,
)
from repro.core.mapset import MapSet
from repro.core.tape import CrackEntry
from repro.errors import AlignmentError, InvariantError, PlanError
from repro.stats.counters import AccessStats, StatsRecorder
from repro.storage.bat import BAT
from repro.storage.relation import Relation

STOCHASTIC_NAMES = [n for n in POLICY_NAMES if n != "query_driven"]


def make_column(policy_name=None, rows=3000, seed=5, min_piece=32):
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 30_000, size=rows).astype(np.int64)
    policy = resolve_policy(policy_name)
    if policy is not None:
        policy.min_piece = min_piece
    column = CrackerColumn(
        BAT.from_values(values), StatsRecorder(),
        policy=policy, rng=policy_rng(7, "test-column"),
    )
    return column, values


# -- resolution ---------------------------------------------------------------


def test_resolve_policy_names():
    assert resolve_policy(None) is None
    assert resolve_policy("query_driven").name == "query_driven"
    assert resolve_policy("MDD1R").name == "mdd1r"
    assert resolve_policy("dd-1c").name == "dd1c"
    mdd1r = resolve_policy("mdd1r")
    assert resolve_policy(mdd1r) is mdd1r
    assert set(POLICY_NAMES) == set(POLICIES) | {"auto"}
    assert resolve_policy("auto").name == "auto"
    with pytest.raises(PlanError):
        resolve_policy("no_such_policy")


def test_is_stochastic():
    assert not is_stochastic(None)
    assert not is_stochastic(resolve_policy("query_driven"))
    for name in STOCHASTIC_NAMES:
        assert is_stochastic(resolve_policy(name))


def test_default_min_piece():
    for name in POLICY_NAMES:
        assert resolve_policy(name).min_piece == DEFAULT_MIN_PIECE


# -- correctness & invariants --------------------------------------------------


@pytest.mark.parametrize("policy_name", list(POLICY_NAMES))
def test_policy_selects_match_brute_force(policy_name):
    column, values = make_column(policy_name)
    rng = np.random.default_rng(11)
    for _ in range(25):
        lo = int(rng.integers(1, 29_000))
        interval = Interval.half_open(lo, lo + 600)
        keys = column.select(interval)
        expected = np.flatnonzero(interval.mask(values))
        assert np.array_equal(np.sort(keys), expected)
        column.check_invariants()
    if policy_name != "query_driven":
        assert column.stochastic_cuts > 0


@pytest.mark.parametrize("policy_name", STOCHASTIC_NAMES)
def test_same_seed_same_permutation(policy_name):
    intervals = [Interval.half_open(lo, lo + 400) for lo in range(100, 20_000, 900)]
    heads = []
    for _ in range(2):
        column, _ = make_column(policy_name)
        for interval in intervals:
            column.select(interval)
        heads.append((column.head.copy(), column.keys.copy()))
    assert np.array_equal(heads[0][0], heads[1][0])
    assert np.array_equal(heads[0][1], heads[1][1])


def test_seed_to_permutation_regression():
    """Pin one seed's exact physical arrangement (replay compatibility)."""
    values = np.array([70, 10, 50, 30, 90, 20, 80, 40, 60, 35], dtype=np.int64)
    policy = resolve_policy("mdd1r")
    policy.min_piece = 2
    column = CrackerColumn(
        BAT.from_values(values), StatsRecorder(),
        policy=policy, rng=policy_rng(123, "regression"),
    )
    column.select(Interval.half_open(30, 60))
    assert column.head.tolist() == [10, 20, 50, 30, 40, 35, 70, 60, 90, 80]
    assert column.keys.tolist() == [1, 5, 2, 3, 7, 9, 0, 8, 4, 6]


# -- map sets: tape logging and replay alignment -------------------------------


def make_mapset(policy_name="mdd1r", rows=4000, min_piece=32):
    rng = np.random.default_rng(3)
    relation = Relation.from_arrays("R", {
        "A": rng.integers(1, 40_000, size=rows).astype(np.int64),
        "B": rng.integers(1, 40_000, size=rows).astype(np.int64),
        "C": rng.integers(1, 40_000, size=rows).astype(np.int64),
    })
    policy = resolve_policy(policy_name)
    if policy is not None:
        policy.min_piece = min_piece
    return MapSet(
        relation, "A", StatsRecorder(),
        policy=policy, rng=policy_rng(9, "test-mapset"),
    )


def test_aux_cuts_become_tape_entries():
    mapset = make_mapset()
    mapset.select("B", Interval.half_open(15_000, 15_400))
    crack_entries = [e for e in mapset.tape.entries if isinstance(e, CrackEntry)]
    assert mapset.stochastic_cuts > 0
    # One entry per auxiliary cut plus the query's own crack.
    assert len(crack_entries) == mapset.stochastic_cuts + 1
    one_sided = [
        e for e in crack_entries
        if e.interval.lower_bound() is None or e.interval.upper_bound() is None
    ]
    assert len(one_sided) == mapset.stochastic_cuts


def test_sibling_replay_reproduces_identical_boundaries():
    mapset = make_mapset()
    rng = np.random.default_rng(8)
    for _ in range(12):
        lo = int(rng.integers(1, 38_000))
        mapset.select("B", Interval.half_open(lo, lo + 500))
    map_b = mapset.maps["B"]
    map_c = mapset.get_map("C", align=True)  # replays the whole tape
    assert np.array_equal(map_b.head, map_c.head)
    assert [b for b, _ in map_b.index.inorder()] == \
           [b for b, _ in map_c.index.inorder()]
    map_b.check_invariants()
    map_c.check_invariants()


def test_replay_boundary_mismatch_raises():
    mapset = make_mapset()
    mapset.select("B", Interval.half_open(15_000, 15_600))
    mapset.get_map("C", align=True)  # stores the boundary signature
    map_b = mapset.maps["B"]
    # Tamper with the boundary set: alignment must detect the skew.
    map_b.index.insert(Bound(1.5, Side.LE), 0)
    with pytest.raises(InvariantError) as excinfo:
        mapset.align(map_b)
    # The violation is diagnostic-rich: map name, tape position, both lists.
    (violation,) = excinfo.value.violations
    assert violation.invariant == "replay-boundaries"
    context = dict(violation.context)
    assert context["map"] == "B"
    assert context["tape_position"] == len(mapset.tape)
    assert len(context["actual"]) == len(context["expected"]) + 1


def test_boundary_checks_can_be_disabled():
    flag = stochastic.REPLAY_BOUNDARY_CHECKS
    try:
        stochastic.REPLAY_BOUNDARY_CHECKS = False
        mapset = make_mapset()
        mapset.select("B", Interval.half_open(15_000, 15_600))
        mapset.get_map("C", align=True)
        map_b = mapset.maps["B"]
        map_b.index.insert(Bound(1.5, Side.LE), 0)
        mapset.align(map_b)  # skew goes unnoticed by design
    finally:
        stochastic.REPLAY_BOUNDARY_CHECKS = flag


# -- counters -------------------------------------------------------------------


def test_policy_cut_counters():
    recorder = StatsRecorder()
    with recorder.frame() as inner:
        recorder.policy_cut("mdd1r")
        recorder.policy_cut("mdd1r", 2)
        recorder.event("dd_cuts", 3)
        recorder.event("random_cracks", 3)
    assert inner.policy_cuts == {"mdd1r": 3}
    assert recorder.root.policy_cuts == {"mdd1r": 3}
    assert recorder.root.dd_cuts == 3
    assert recorder.root.random_cracks == 3


def test_access_stats_dict_add_and_snapshot():
    a = AccessStats(dd_cuts=1, policy_cuts={"ddc": 2})
    b = AccessStats(dd_cuts=4, policy_cuts={"ddc": 1, "ddr": 5})
    merged = a + b
    assert merged.dd_cuts == 5
    assert merged.policy_cuts == {"ddc": 3, "ddr": 5}
    snap = a.snapshot()
    snap.policy_cuts["ddc"] += 10
    assert a.policy_cuts == {"ddc": 2}  # snapshot copies the dict
    assert a.as_dict()["policy_cuts"] == {"ddc": 2}


def test_summary_reports_policy_breakdown():
    stats = AccessStats(
        cracks=7, dd_cuts=5, random_cracks=3, policy_cuts={"mdd1r": 5}
    )
    text = stats.summary()
    assert "7 query-driven" in text
    assert "5 data-driven" in text
    assert "3 random" in text
    assert "mdd1r=5" in text


def test_describe_state_and_explain_mention_policy():
    from repro.engine.database import Database
    from repro.engine.query import Predicate, Query
    from repro.engine.sideways_engine import SidewaysEngine

    db = Database(recorder=StatsRecorder(), crack_policy="mdd1r")
    rng = np.random.default_rng(2)
    db.create_table("R", {
        "A": rng.integers(1, 5000, 800).astype(np.int64),
        "B": rng.integers(1, 5000, 800).astype(np.int64),
    })
    engine = SidewaysEngine(db, partial=False)
    query = Query(table="R", predicates=(Predicate("A", Interval.half_open(10, 500)),),
                  projections=("B",))
    assert "mdd1r" in engine.explain(query)
    engine.run(query)
    assert "crack policy: mdd1r" in db.sideways("R").describe_state()


def test_cli_accepts_crack_policy_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["run", "exp14", "--scale", "0.1", "--crack-policy", "mdd1r"]
    )
    assert args.crack_policy == "mdd1r"
    assert args.experiment == "exp14"
