"""CrackSan: level resolution, registration, checkpoints, and detection."""

import gc

import numpy as np
import pytest

from repro.analysis import invariants
from repro.analysis.sanitizer import (
    ENV_VAR,
    LEVELS,
    Sanitizer,
    active_sanitizers,
    checkpoint_query,
    register_structure,
    resolve_level,
    suspended,
)
from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.errors import CrackError, InvariantError, PlanError
from repro.stats.counters import StatsRecorder
from repro.storage.bat import BAT


def make_column(rows=500, seed=7, cracks=6):
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 10_000, size=rows).astype(np.int64)
    column = CrackerColumn(BAT.from_values(values), StatsRecorder())
    for lo in np.linspace(500, 9_000, cracks):
        column.select(Interval.half_open(int(lo), int(lo) + 400))
    return column, values


# -- level resolution -----------------------------------------------------------


def test_resolve_level_names_and_synonyms(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_level(None) == "off"
    for name in LEVELS:
        assert resolve_level(name) == name
        assert resolve_level(name.upper()) == name
    assert resolve_level("post_query") == "post-query"
    assert resolve_level(True) == "post-query"
    assert resolve_level(False) == "off"
    for synonym in ("", "none", "0", "false"):
        assert resolve_level(synonym) == "off"
    for synonym in ("1", "true", "on"):
        assert resolve_level(synonym) == "post-query"
    with pytest.raises(PlanError):
        resolve_level("paranoid")


def test_resolve_level_env_fallback(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "deep")
    assert resolve_level(None) == "deep"
    assert resolve_level("off") == "off"  # explicit beats the env
    monkeypatch.delenv(ENV_VAR)
    assert resolve_level(None) == "off"


def test_level_ordering():
    sanitizer = Sanitizer("post-crack")
    assert sanitizer.enabled("off")
    assert sanitizer.enabled("post-crack")
    assert not sanitizer.enabled("post-query")
    assert not sanitizer.enabled("deep")
    assert Sanitizer("deep").enabled("post-query")


# -- registration ----------------------------------------------------------------


def test_structures_register_while_active():
    with Sanitizer("post-query").activated() as sanitizer:
        column, _ = make_column()
        kinds = {kind for _, kind, _ in sanitizer.structures()}
        assert "column" in kinds
        assert "index" in kinds  # the column's AVL index registers too
        objects = [obj for obj, _, _ in sanitizer.structures()]
        assert column in objects


def test_registry_is_weak():
    with Sanitizer("post-query").activated() as sanitizer:
        column, _ = make_column()
        assert any(kind == "column" for _, kind, _ in sanitizer.structures())
        del column
        gc.collect()
        assert not any(kind == "column" for _, kind, _ in sanitizer.structures())


def test_off_level_never_activates():
    with Sanitizer("off").activated() as sanitizer:
        make_column()
        assert sum(1 for _ in sanitizer.structures()) == 0


def test_suspended_blocks_registration():
    with Sanitizer("post-query").activated() as sanitizer:
        with suspended():
            make_column()
        assert sum(1 for _ in sanitizer.structures()) == 0


def test_register_structure_hook_is_noop_when_inactive():
    register_structure(object(), "column")  # must not raise


# -- validation, skip cache, strict/collect ---------------------------------------


def test_clean_column_validates_and_skip_cache_hits():
    column, _ = make_column()
    sanitizer = Sanitizer("deep")
    assert sanitizer.validate(column, "column") == []
    run_before = sanitizer.checks_run
    assert sanitizer.validate(column, "column") == []
    assert sanitizer.checks_run == run_before
    assert sanitizer.checks_skipped == 1
    # Cracking again changes the signature, so validation re-runs.
    column.select(Interval.half_open(4_000, 4_100))
    sanitizer.validate(column, "column")
    assert sanitizer.checks_run == run_before + 1


def test_strict_mode_raises_with_structured_violations():
    column, _ = make_column()
    column.head[0] = 99_999  # above every piece's upper bound
    sanitizer = Sanitizer("post-query", seed=123)
    with pytest.raises(InvariantError) as excinfo:
        sanitizer.validate(column, "column", label="col")
    violation = excinfo.value.violations[0]
    assert violation.invariant == "piece-bounds"
    assert violation.structure == "col"
    assert violation.seed == 123
    assert "99999" in violation.detail


def test_collect_mode_keeps_scanning():
    column, _ = make_column()
    column.head[0] = 99_999
    sanitizer = Sanitizer("post-query", strict=False)
    found = sanitizer.validate(column, "column")
    assert found and found[0].invariant == "piece-bounds"
    assert sanitizer.violations == found
    assert "piece-bounds" in sanitizer.report()


def test_deep_catches_duplicate_keys_shallow_misses():
    column, _ = make_column()
    column.keys[3] = column.keys[4]  # physically silent: head untouched
    assert invariants.check(column, "column", deep=False) == []
    found = invariants.check(column, "column", deep=True)
    assert {v.invariant for v in found} >= {"duplicate-keys"}


def test_deep_catches_base_permutation_drift():
    column, _ = make_column()
    # Swap two head values inside one piece: every shallow invariant still
    # holds, but the payload no longer matches base[keys].
    pieces = [p for p in column.index.pieces(len(column.head))
              if p.hi_pos - p.lo_pos >= 2]
    swapped = False
    for piece in pieces:
        lo = piece.lo_pos
        if column.head[lo] != column.head[lo + 1]:
            column.head[[lo, lo + 1]] = column.head[[lo + 1, lo]]
            swapped = True
            break
    assert swapped, "need a piece with two distinct values"
    assert invariants.check(column, "column", deep=False) == []
    found = invariants.check(column, "column", deep=True)
    assert any(v.invariant == "base-permutation" for v in found)


def test_check_invariants_unified_signature():
    column, _ = make_column()
    column.check_invariants()
    column.check_invariants(deep=True)
    column.keys[0] = column.keys[1]
    with pytest.raises(CrackError):  # InvariantError subclasses CrackError
        column.check_invariants(deep=True)


def test_unknown_kind_rejected():
    with pytest.raises(InvariantError):
        invariants.check(object(), "no-such-kind")


# -- checkpoints ----------------------------------------------------------------


def test_post_crack_checkpoint_fires_on_select():
    with Sanitizer("post-crack").activated() as sanitizer:
        make_column(cracks=3)
        assert sanitizer.checks_run > 0
        assert sanitizer.violations == []


def test_post_query_sweep_catches_corruption():
    # Stand down any suite-wide strict sanitizer (pytest --sanitize ...):
    # this test corrupts a structure on purpose and must observe the
    # violation on its own collect-mode instance instead of failing fast.
    others = active_sanitizers()
    for other in others:
        other.deactivate()
    sanitizer = Sanitizer("post-query", strict=False)
    try:
        with sanitizer.activated():
            column, _ = make_column(cracks=2)
            column.select(Interval.half_open(2_000, 2_300))
            column.head[0] = 99_999
            column.select(Interval.half_open(5_000, 5_200))  # new crack -> new sig
            checkpoint_query()
    finally:
        for other in others:
            other.activate()
    assert any(v.invariant == "piece-bounds" for v in sanitizer.violations)


def test_database_wires_sanitizer(monkeypatch):
    from repro.engine.database import Database

    monkeypatch.delenv(ENV_VAR, raising=False)
    assert Database().sanitizer.level == "off"
    db = Database(sanitize="post-query", crack_seed=99)
    assert db.sanitizer.level == "post-query"
    assert db.sanitizer.seed == 99
    monkeypatch.setenv(ENV_VAR, "post-crack")
    assert Database().sanitizer.level == "post-crack"


def test_engine_queries_run_clean_under_deep(monkeypatch):
    from repro.engine.database import Database
    from repro.engine.query import Predicate, Query
    from repro.engine.sideways_engine import SidewaysEngine

    monkeypatch.delenv(ENV_VAR, raising=False)
    rng = np.random.default_rng(5)
    db = Database(sanitize="deep")
    db.create_table("R", {
        "A": rng.integers(1, 8_000, 1_200).astype(np.int64),
        "B": rng.integers(1, 8_000, 1_200).astype(np.int64),
    })
    engine = SidewaysEngine(db, partial=False)
    for lo in (500, 3_000, 6_000):
        engine.run(Query(
            table="R",
            predicates=(Predicate("A", Interval.half_open(lo, lo + 700)),),
            projections=("B",),
        ))
    assert db.sanitizer.checks_run > 0
    assert db.sanitizer.violations == []
    assert "0 violation(s)" in db.sanitizer.report()


# -- content checksums (skip-cache blind spot) ----------------------------------


def test_content_checksum_basics():
    assert invariants.content_checksum(np.empty(0, dtype=np.int64)) == 0
    arr = np.arange(1_000, dtype=np.int64)
    ck = invariants.content_checksum(arr)
    assert ck == invariants.content_checksum(arr.copy())  # deterministic
    mutated = arr.copy()
    mutated[0] = -1  # position 0 is always in the strided sample
    assert invariants.content_checksum(mutated) != ck
    # Same sampled values but different length -> different checksum.
    assert invariants.content_checksum(arr[:999]) != ck


def test_checksums_default_from_level():
    assert Sanitizer("deep").checksums is True
    assert Sanitizer("post-query").checksums is False
    assert Sanitizer("post-query", checksums=True).checksums is True
    assert Sanitizer("deep", checksums=False).checksums is False


def test_content_signature_sees_in_place_mutation():
    column, _ = make_column(cracks=2)
    plain = invariants.signature(column, "column")
    content = invariants.signature(column, "column", content=True)
    column.head[0] ^= 1  # purely in-place: lengths and cursors unchanged
    assert invariants.signature(column, "column") == plain
    assert invariants.signature(column, "column", content=True) != content


def test_checksums_catch_purely_in_place_corruption():
    # Without checksums the skip cache hides an in-place flip until the
    # structure legitimately changes; with them the next sweep catches it.
    others = active_sanitizers()
    for other in others:
        other.deactivate()
    sanitizer = Sanitizer("post-query", strict=False, checksums=True)
    try:
        with sanitizer.activated():
            column, _ = make_column(cracks=2)
            column.select(Interval.half_open(2_000, 2_300))
            checkpoint_query()  # caches a clean signature
            column.head[0] = 99_999  # in-place corruption, no legitimate change
            checkpoint_query()
    finally:
        for other in others:
            other.activate()
    assert any(v.invariant == "piece-bounds" for v in sanitizer.violations)
