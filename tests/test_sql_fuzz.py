"""Property-based fuzzing of the SQL front-end against a NumPy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sql
from repro.engine import Database, PlainEngine
from repro.errors import PlanError

ATTRS = ("A", "B", "C", "D")
OPS = ("<", "<=", ">", ">=", "=")

comparison = st.tuples(
    st.sampled_from(ATTRS), st.sampled_from(OPS), st.integers(0, 120)
)


@pytest.fixture(scope="module")
def fuzzdb():
    rng = np.random.default_rng(99)
    db = Database()
    db.create_table(
        "R", {attr: rng.integers(0, 100, size=400).astype(np.int64)
              for attr in ATTRS},
    )
    return db


def oracle_mask(db, comparisons, conjunctive):
    table = db.table("R")
    masks = []
    for attr, op, value in comparisons:
        column = table.values(attr)
        masks.append({
            "<": column < value,
            "<=": column <= value,
            ">": column > value,
            ">=": column >= value,
            "=": column == value,
        }[op])
    combine = np.logical_and if conjunctive else np.logical_or
    out = masks[0]
    for mask in masks[1:]:
        out = combine(out, mask)
    return out


@settings(max_examples=120, deadline=None)
@given(
    comparisons=st.lists(comparison, min_size=1, max_size=4),
    conjunctive=st.booleans(),
    projection=st.sampled_from(ATTRS),
)
def test_fuzzed_statements_match_oracle(fuzzdb, comparisons, conjunctive,
                                        projection):
    if not conjunctive:
        # OR requires distinct attributes (documented grammar limitation).
        seen = set()
        comparisons = [
            c for c in comparisons if not (c[0] in seen or seen.add(c[0]))
        ]
    connector = " AND " if conjunctive else " OR "
    where = connector.join(f"{a} {op} {v}" for a, op, v in comparisons)
    statement = f"SELECT {projection}, count(*) FROM R WHERE {where}"
    try:
        result = sql.execute(statement, PlainEngine(fuzzdb))
    except PlanError as exc:
        # Only contradictory AND ranges may be rejected — and then the
        # statement provably matches nothing.
        assert conjunctive and "contradictory" in str(exc)
        assert not oracle_mask(fuzzdb, comparisons, conjunctive).any()
        return
    mask = oracle_mask(fuzzdb, comparisons, conjunctive)
    expected = fuzzdb.table("R").values(projection)[mask]
    got = result.columns[projection]
    assert np.array_equal(np.sort(got), np.sort(expected))
    (count,) = (v for k, v in result.aggregates.items() if k.startswith("count"))
    assert count == float(mask.sum())
