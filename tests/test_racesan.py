"""RaceSan: lockset race detection, the lock-order graph, and plumbing."""

import json
import threading

import numpy as np
import pytest

from repro.analysis import racesan
from repro.analysis.racesan import RaceSan, active_detectors, resolve_mode
from repro.engine.database import Database
from repro.errors import PlanError, RaceError
from repro.server.executor import ServerExecutor
from repro.server.locks import Mutex, RWLock


@pytest.fixture(autouse=True)
def _isolate(_racesan):
    """These tests seed deliberate races and cycles; pause the suite-wide
    ``--racesan`` detector so it does not fail them at teardown."""
    if _racesan is None:
        yield
        return
    _racesan.deactivate()
    try:
        yield
    finally:
        _racesan.activate()


def _on_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=5)
    assert not thread.is_alive()


# -- the Eraser state machine -------------------------------------------------


def test_consistently_locked_accesses_are_clean():
    guard = Mutex("guard")
    with RaceSan(strict=False).activated() as rs:
        with guard:
            racesan.note_access("var", "write")

        def other():
            with guard:
                racesan.note_access("var", "read")
                racesan.note_access("var", "write")

        _on_thread(other)
    assert rs.violations == []
    assert rs.accesses == 3


def test_empty_lockset_write_reports_a_data_race():
    guard = Mutex("guard")
    with RaceSan(strict=False).activated() as rs:
        with guard:
            racesan.note_access("var", "write")

        def other():
            racesan.note_access("var", "write")  # no lock held

        _on_thread(other)
    assert len(rs.violations) == 1
    violation = rs.violations[0]
    assert violation.kind == "data-race"
    assert violation.subject == "var"
    assert "lockset is empty" in violation.detail
    titles = [title for title, _stack in violation.stacks]
    assert any(title.startswith("racing write") for title in titles)
    assert any(title.startswith("last write") for title in titles)
    assert all(stack for _title, stack in violation.stacks)


def test_single_thread_access_never_reports():
    with RaceSan(strict=False).activated() as rs:
        racesan.note_access("var", "write")
        racesan.note_access("var", "read")
        racesan.note_access("var", "write")
    assert rs.violations == []


def test_cross_thread_reads_without_write_are_clean():
    with RaceSan(strict=False).activated() as rs:
        racesan.note_access("var", "read")
        _on_thread(lambda: racesan.note_access("var", "read"))
    assert rs.violations == []


def test_strict_mode_raises_race_error():
    with RaceSan(strict=True).activated():
        _on_thread(lambda: racesan.note_access("x", "write"))
        with pytest.raises(RaceError, match="concurrency violation"):
            racesan.note_access("x", "write")


def test_violation_carries_the_crack_seed():
    with RaceSan(strict=False, seed=777).activated() as rs:
        _on_thread(lambda: racesan.note_access("x", "write"))
        racesan.note_access("x", "write")
    assert rs.violations[0].seed == 777


# -- held-lock tracking --------------------------------------------------------


def test_held_lock_names_track_acquire_and_release():
    lock = RWLock("R")
    mutex = Mutex("m")
    with RaceSan(strict=False).activated():
        with lock.write():
            with lock.write():  # re-entrant: depth 2, one entry
                with mutex:
                    assert racesan.held_lock_names() == {"R", "m"}
                assert racesan.held_lock_names() == {"R"}
            assert racesan.held_lock_names() == {"R"}
        assert racesan.held_lock_names() == frozenset()


def test_note_access_snapshots_the_lockset():
    lock = RWLock("R")
    seen = {}

    class Probe(RaceSan):
        def _note_access(self, subject, kind, lockset, seed):
            seen[subject] = lockset
            super()._note_access(subject, kind, lockset, seed)

    with Probe(strict=False).activated():
        with lock.read():
            racesan.note_access("under", "read")
        racesan.note_access("outside", "read")
    assert seen["under"] == {"R"}
    assert seen["outside"] == frozenset()


# -- the lock-order graph ------------------------------------------------------


def test_opposite_acquisition_orders_report_a_cycle():
    a, b = Mutex("A"), Mutex("B")
    with RaceSan(strict=False).activated() as rs:
        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        _on_thread(inverted)
    cycles = [v for v in rs.violations if v.kind == "lock-order-cycle"]
    assert len(cycles) == 1
    violation = cycles[0]
    assert "A" in violation.subject and "->" in violation.subject
    assert "deadlock" in violation.detail
    # Both edges appear, each with the acquisition stack of its thread.
    assert len(violation.stacks) == 2
    assert all(stack for _title, stack in violation.stacks)
    edges = rs.order_edges()
    assert ("A", "B") in edges and ("B", "A") in edges


def test_consistent_acquisition_order_is_acyclic():
    a, b = Mutex("A2"), Mutex("B2")
    with RaceSan(strict=False).activated() as rs:
        for _ in range(3):
            with a:
                with b:
                    pass
        _on_thread(lambda: a.acquire() or b.acquire() or b.release() or a.release())
    assert rs.violations == []
    assert rs.order_edges() == {("A2", "B2"): rs.order_edges()[("A2", "B2")]}


# -- plumbing ------------------------------------------------------------------


def test_resolve_mode_spellings():
    assert resolve_mode("on") == "on"
    assert resolve_mode(True) == "on"
    assert resolve_mode("strict") == "on"
    assert resolve_mode(False) == "off"
    assert resolve_mode("") == "off"
    with pytest.raises(PlanError, match="racesan mode"):
        resolve_mode("loud")


def test_database_activates_and_env_fallback(monkeypatch):
    quiet = Database()
    assert quiet.racesan.mode == "off"
    assert quiet.racesan not in active_detectors()

    loud = Database(racesan="on")
    assert loud.racesan in active_detectors()
    loud.racesan.deactivate()

    monkeypatch.setenv("REPRO_RACESAN", "on")
    from_env = Database()
    assert from_env.racesan in active_detectors()
    from_env.racesan.deactivate()


def test_artifact_dump_on_violation(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RACESAN_ARTIFACTS", str(tmp_path))
    with RaceSan(strict=False, seed=99).activated():
        _on_thread(lambda: racesan.note_access("x", "write"))
        racesan.note_access("x", "write")
    artifacts = list(tmp_path.glob("racesan-repro-*.json"))
    assert len(artifacts) == 1
    payload = json.loads(artifacts[0].read_text())
    assert payload["kind"] == "data-race"
    assert payload["subject"] == "x"
    assert payload["crack_seed"] == 99
    assert payload["stacks"]


def test_report_counts_accesses_and_edges():
    with RaceSan(strict=False).activated() as rs:
        with Mutex("r1"):
            racesan.note_access("v", "read")
    report = rs.report()
    assert "1 accesses over 1 variable(s)" in report
    assert "0 violation(s)" in report


# -- the PR 6 regression: version capture outside the table lock ---------------


def _serving_db() -> Database:
    db = Database()
    rng = np.random.default_rng(7)
    db.create_table("R", {
        "A": rng.integers(0, 1000, size=2000).astype(np.int64),
        "B": rng.integers(0, 1000, size=2000).astype(np.int64),
    })
    return db


def test_racesan_redetects_unlocked_version_capture(monkeypatch):
    """Revert the PR 6 discipline (capture ``data_version`` before taking
    the table lock) and RaceSan must report the race on ``R.data_version``
    with the failing lockset and both stacks."""
    original = ServerExecutor._execute

    def racy_execute(self, query, *args, **kwargs):
        # The reverted discipline: sample the version with no lock held.
        self._capture_version(query.table)
        return original(self, query, *args, **kwargs)

    monkeypatch.setattr(ServerExecutor, "_execute", racy_execute)
    db = _serving_db()
    with RaceSan(strict=False, seed=db.crack_seed).activated() as rs:
        with ServerExecutor(db, workers=2, cache=False) as executor:
            executor.submit("SELECT A FROM R WHERE A < 100").result(timeout=10)
            executor.insert("R", {"A": [1], "B": [2]})
            executor.submit("SELECT A FROM R WHERE A < 200").result(timeout=10)
    races = [v for v in rs.violations if v.kind == "data-race"]
    assert races, rs.report()
    violation = races[0]
    assert violation.subject == "R.data_version"
    assert "lockset is empty" in violation.detail
    assert violation.seed == db.crack_seed
    titles = [title for title, _stack in violation.stacks]
    assert any("racing" in title for title in titles)
    assert any(stack for _title, stack in violation.stacks)


def test_disciplined_executor_is_race_free():
    """The shipped discipline under the same workload: zero violations."""
    db = _serving_db()
    with RaceSan(strict=False, seed=db.crack_seed).activated() as rs:
        with ServerExecutor(db, workers=2, cache=True) as executor:
            for lo in (100, 300, 500):
                executor.submit(
                    f"SELECT A FROM R WHERE A < {lo}"
                ).result(timeout=10)
                executor.insert("R", {"A": [lo], "B": [lo]})
            executor.submit("SELECT A FROM R WHERE A < 100").result(timeout=10)
    assert rs.violations == [], rs.report()
