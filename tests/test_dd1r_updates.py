"""DD1R over updates: ripple inserts merged through stochastic pieces.

The paper's DD1R variant adds one random cut per crack; this suite closes
the ROADMAP item that its interaction with *updates* was untested: pending
inserts must ripple-merge through piece boundaries that stochastic cuts
created (not query predicates), under CrackSan deep sweeps, and stay sound
when a fault is injected at the ripple-merge site itself.
"""

import numpy as np
import pytest

from repro.cracking.bounds import Interval
from repro.cracking.stochastic import DD1R, MDD1R
from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.engine.scan import PlainEngine
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.engine.sideways_engine import SidewaysEngine

ROWS = 1_500
DOMAIN = 12_000
BATCH = 40

POLICIES = ("dd1r", "mdd1r")
ENGINES = ("selection_cracking", "sideways", "partial_sideways")


def make_db(policy, faults=None):
    rng = np.random.default_rng(13)
    arrays = {
        attr: rng.integers(1, DOMAIN + 1, size=ROWS).astype(np.int64)
        for attr in "ABC"
    }
    # The default min_piece (cache-derived, ~4k tuples) would suppress every
    # auxiliary cut at this test scale; shrink it so random cuts actually
    # create the stochastic pieces the ripple has to route through.
    policy = {"dd1r": DD1R, "mdd1r": MDD1R}[policy](min_piece=64)
    db = Database(
        sanitize="deep", crack_policy=policy, crack_seed=23, faults=faults
    )
    db.create_table("R", arrays)
    return db


def make_engine(name, db):
    if name == "selection_cracking":
        return SelectionCrackingEngine(db)
    return SidewaysEngine(db, partial=(name == "partial_sideways"))


def query_for(lo, width=500):
    return Query(
        table="R",
        predicates=(Predicate("A", Interval.open(lo, lo + width)),),
        projections=("B",),
    )


def stochastic_cuts(db):
    total = sum(c.stochastic_cuts for c in db._crackers.values())
    for sideways in db._sideways.values():
        total += sum(ms.stochastic_cuts for ms in sideways.sets.values())
    for partial in db._partial.values():
        for pset in partial.sets.values():
            total += pset.stochastic_cuts
            if pset.chunkmap is not None:
                total += pset.chunkmap.stochastic_cuts
    return total


def run_insert_workload(db, engine, n_rounds=6):
    """Alternate range queries with inserts; every result must match a scan.

    The first queries lay down stochastic pieces; each subsequent insert
    batch then has to ripple through those piece boundaries when the next
    query merges it.
    """
    baseline = PlainEngine(db)
    rng = np.random.default_rng(29)
    for i in range(n_rounds):
        lo = int(rng.integers(1, DOMAIN - 600))
        query = query_for(lo)
        got = engine.run(query)
        want = baseline.run(query)
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        ), f"round {i}: diverged from scan"
        db.insert("R", {
            attr: rng.integers(1, DOMAIN + 1, size=BATCH).astype(np.int64)
            for attr in "ABC"
        })


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_ripple_through_stochastic_pieces(engine_name, policy):
    db = make_db(policy)
    engine = make_engine(engine_name, db)
    run_insert_workload(db, engine)
    # The scenario is only meaningful if random cuts actually created
    # pieces for the ripple to route through.
    assert stochastic_cuts(db) > 0, "no stochastic pieces were created"
    assert db.sanitizer.checks_run > 0
    assert db.sanitizer.violations == []


@pytest.mark.parametrize("kind", ("error", "corrupt"))
@pytest.mark.parametrize("engine_name", ENGINES)
def test_ripple_merge_fault_stays_sound(engine_name, kind):
    """A fault at the ripple-merge site itself: recover, never answer wrong."""
    db = make_db("dd1r", faults=f"ripple.merge_insertions@2={kind}")
    engine = make_engine(engine_name, db)
    run_insert_workload(db, engine)
    assert db.heal_faults() == []
    assert db.sanitizer.violations == []


def test_dd1r_deletions_ripple_through_stochastic_pieces():
    """Deletes (and the delete-position fault site) under DD1R pieces."""
    db = make_db("dd1r", faults="ripple.delete_positions@2=error")
    engine = make_engine("selection_cracking", db)
    baseline = PlainEngine(db)
    rng = np.random.default_rng(31)
    for i in range(5):
        live = np.flatnonzero(~db.tombstones("R"))
        db.delete("R", rng.choice(live, size=15, replace=False))
        query = query_for(int(rng.integers(1, DOMAIN - 600)))
        got = engine.run(query)
        want = baseline.run(query)
        assert np.array_equal(
            np.sort(got.columns["B"]), np.sort(want.columns["B"])
        ), f"round {i}: diverged from scan"
    assert db.heal_faults() == []
    assert db.sanitizer.violations == []
