"""Crack kernels: correctness, stability, determinism."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cracking.bounds import Bound, Side
from repro.cracking.kernels import crack_three, crack_two, sort_piece
from repro.errors import CrackError

arrays = st.lists(st.integers(0, 50), min_size=0, max_size=80).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestCrackTwo:
    def test_basic_partition(self):
        head = np.array([5, 1, 9, 3, 7])
        tail = np.array([50, 10, 90, 30, 70])
        split = crack_two(head, [tail], 0, 5, Bound(5, Side.LT))
        assert split == 2
        assert set(head[:2]) == {1, 3}
        assert (head[2:] >= 5).all()
        assert (tail == head * 10).all()

    def test_le_bound(self):
        head = np.array([5, 1, 9, 3, 7])
        split = crack_two(head, [], 0, 5, Bound(5, Side.LE))
        assert split == 3
        assert (head[:3] <= 5).all()

    def test_stability(self):
        head = np.array([2, 9, 2, 8, 2, 7])
        tail = np.arange(6)
        crack_two(head, [tail], 0, 6, Bound(5, Side.LT))
        assert tail[:3].tolist() == [0, 2, 4]
        assert tail[3:].tolist() == [1, 3, 5]

    def test_subrange_only(self):
        head = np.array([9, 1, 8, 2, 9])
        crack_two(head, [], 1, 4, Bound(5, Side.LT))
        assert head[0] == 9 and head[4] == 9
        assert head[1:3].tolist() == [1, 2]

    def test_all_below_or_above(self):
        head = np.array([1, 2, 3])
        assert crack_two(head, [], 0, 3, Bound(10, Side.LT)) == 3
        assert crack_two(head, [], 0, 3, Bound(0, Side.LT)) == 0

    def test_bad_range_raises(self):
        with pytest.raises(CrackError):
            crack_two(np.array([1]), [], 0, 5, Bound(1, Side.LT))


class TestCrackThree:
    def test_basic(self):
        head = np.array([5, 1, 9, 3, 7, 4, 8])
        tail = head * 10
        p1, p2 = crack_three(head, [tail], 0, 7, Bound(4, Side.LT), Bound(8, Side.LT))
        assert (head[:p1] < 4).all()
        assert ((head[p1:p2] >= 4) & (head[p1:p2] < 8)).all()
        assert (head[p2:] >= 8).all()
        assert (tail == head * 10).all()

    def test_point_range(self):
        head = np.array([3, 5, 5, 7, 5])
        p1, p2 = crack_three(head, [], 0, 5, Bound(5, Side.LT), Bound(5, Side.LE))
        assert (head[p1:p2] == 5).all()
        assert p2 - p1 == 3

    def test_out_of_order_bounds_raise(self):
        with pytest.raises(CrackError):
            crack_three(np.array([1, 2]), [], 0, 2, Bound(5, Side.LT), Bound(1, Side.LT))


class TestSortPiece:
    def test_sorts_subrange_with_tails(self):
        head = np.array([9, 3, 1, 2, 0])
        tail = head * 2
        sort_piece(head, [tail], 1, 4)
        assert head.tolist() == [9, 1, 2, 3, 0]
        assert (tail == head * 2).all()


@given(arrays, st.integers(0, 50), st.sampled_from([Side.LT, Side.LE]))
def test_crack_two_is_stable_partition(values, pivot, side):
    head = values.copy()
    tail = np.arange(len(values))
    split = crack_two(head, [tail], 0, len(head), Bound(pivot, side))
    below = Bound(pivot, side).below_mask(values)
    assert split == int(below.sum())
    # Stable: original order preserved within each group.
    assert tail[:split].tolist() == np.flatnonzero(below).tolist()
    assert tail[split:].tolist() == np.flatnonzero(~below).tolist()
    assert sorted(head.tolist()) == sorted(values.tolist())


@given(arrays, st.integers(0, 50), st.integers(0, 50))
def test_crack_three_equals_two_crack_twos(values, a_, b_):
    lo_v, hi_v = min(a_, b_), max(a_, b_)
    lower, upper = Bound(lo_v, Side.LT), Bound(hi_v, Side.LE)
    head3 = values.copy()
    tail3 = np.arange(len(values))
    p1, p2 = crack_three(head3, [tail3], 0, len(values), lower, upper)

    head2 = values.copy()
    tail2 = np.arange(len(values))
    s1 = crack_two(head2, [tail2], 0, len(values), lower)
    s2 = crack_two(head2, [tail2], s1, len(values), upper)
    assert (p1, p2) == (s1, s2)
    assert head3.tolist() == head2.tolist()
    assert tail3.tolist() == tail2.tolist()


@given(arrays, st.integers(0, 50))
def test_crack_determinism(values, pivot):
    """Same input + same pivot -> bit-identical output (alignment's bedrock)."""
    a, b = values.copy(), values.copy()
    crack_two(a, [], 0, len(a), Bound(pivot, Side.LT))
    crack_two(b, [], 0, len(b), Bound(pivot, Side.LT))
    assert a.tolist() == b.tolist()
