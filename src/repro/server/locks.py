"""Reader-writer coordination for cracking structures.

The serving layer's concurrency protocol is deliberately small:

* every *servable structure* (a table's cracker columns as a group, or one
  partition shard) is guarded by one :class:`RWLock`;
* **readers** — queries answerable from already-cracked pieces without any
  reorganization — share the lock;
* **crackers** take the write side for one budget-bounded operation; the
  progressive budget (``--crack-budget``) caps the partitioning work done
  inside the critical section, so it is also the lock-hold-time knob;
* lock acquisition follows a strict **table → shard hierarchy**: a thread
  may hold one table lock and nest shard locks (one at a time) inside it,
  but never acquires a table lock while holding a shard lock, so lock
  cycles — and therefore deadlocks — cannot form;
* sweeps that want to *peek* at many structures (CrackSan's post-query
  sweep) use :meth:`RWLock.try_read`: acquire-with-deadline-or-skip, never
  block-and-hold.

The lock is write-reentrant (a writer may re-enter its own write section)
and read-while-writing is a pass-through for the owning thread — the
sanitizer validates structures from inside the very critical section that
cracks them, and must not self-deadlock.

This module is the repo's **only lock-construction site**: everything else
uses :class:`RWLock` or :class:`Mutex` from here, never raw
``threading.Lock``/``RLock`` — a discipline enforced by the
``raw-lock-construction`` rule of :mod:`repro.analysis.lint` and
:mod:`repro.analysis.locklint`.  Both classes report every successful
acquisition/release to :mod:`repro.analysis.racesan`, which maintains the
per-thread held-lock sets, candidate locksets, and the lock-order graph
(``docs/locksan.md``).  The hooks are a single ``WeakSet`` emptiness check
when no detector is active.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref

from repro.analysis import racesan
from repro.errors import ServerError

#: Deadline used by sweep-style conditional reads (seconds).  Short on
#: purpose: a busy structure is skipped, not waited for.
TRY_READ_DEADLINE = 0.05


class RWLock:
    """A reader-writer lock with writer preference and owner tracking.

    Writer preference keeps crackers from starving behind a stream of
    shared readers: once a writer is waiting, new readers queue behind it.
    All waits are condition-variable based (no spinning) and accept a
    ``timeout``; a timed-out acquisition returns ``False`` / raises
    :class:`~repro.errors.ServerError` from the context-manager forms.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> read depth
        self._writer: int | None = None  # owning thread ident
        self._write_depth = 0
        self._writers_waiting = 0
        # Telemetry (reads are racy-but-monotonic, which is fine for stats).
        self.read_acquires = 0
        self.write_acquires = 0
        self.read_skips = 0
        self.write_hold_seconds = 0.0
        self._write_entered_at = 0.0

    # -- core acquire/release ------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> bool:
        ok = self._acquire_read(timeout)
        if ok:
            racesan.note_acquire(self, "read")
        return ok

    def _acquire_read(self, timeout: float | None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Read-while-owning-write: pass through (no state change
                # needed; release_read tolerates the missing entry).
                self.read_acquires += 1
                return True
            if me in self._readers:
                self._readers[me] += 1
                self.read_acquires += 1
                return True
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._writer is not None or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers[me] = 1
            self.read_acquires += 1
            return True

    def release_read(self) -> None:
        self._release_read()
        racesan.note_release(self, "read")

    def _release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                return  # pass-through read inside our own write section
            depth = self._readers.get(me)
            if depth is None:
                raise ServerError(
                    f"release_read without acquire_read on lock {self.name!r}"
                )
            if depth == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self, timeout: float | None = None) -> bool:
        ok = self._acquire_write(timeout)
        if ok:
            racesan.note_acquire(self, "write")
        return ok

    def _acquire_write(self, timeout: float | None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                self.write_acquires += 1
                return True
            if me in self._readers:
                # Upgrading would deadlock against a symmetric upgrader;
                # the executor's protocol is release-then-reacquire instead.
                raise ServerError(
                    f"read-to-write upgrade attempted on lock {self.name!r}; "
                    "release the read lock and retry under a write lock"
                )
            deadline = None if timeout is None else time.monotonic() + timeout
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    if not self._wait(deadline):
                        return False
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1
            self.write_acquires += 1
            self._write_entered_at = time.monotonic()
            return True

    def release_write(self) -> None:
        self._release_write()
        racesan.note_release(self, "write")

    def _release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise ServerError(
                    f"release_write by non-owner on lock {self.name!r}"
                )
            self._write_depth -= 1
            if self._write_depth == 0:
                self.write_hold_seconds += time.monotonic() - self._write_entered_at
                self._writer = None
                self._cond.notify_all()

    def _wait(self, deadline: float | None) -> bool:
        """Wait on the condition; ``False`` once ``deadline`` has passed.

        Callers loop and re-check their acquisition condition after every
        ``True`` return, so a spurious or racing wakeup is harmless.
        """
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    # -- context-manager forms -----------------------------------------------

    class _Guard:
        __slots__ = ("_lock", "_mode", "_timeout", "acquired")

        def __init__(self, lock: "RWLock", mode: str, timeout: float | None) -> None:
            self._lock = lock
            self._mode = mode
            self._timeout = timeout
            self.acquired = False

        def __enter__(self) -> "RWLock._Guard":
            ok = (
                self._lock.acquire_read(self._timeout)
                if self._mode == "read"
                else self._lock.acquire_write(self._timeout)
            )
            if not ok:
                raise ServerError(
                    f"timed out acquiring {self._mode} lock "
                    f"{self._lock.name!r} after {self._timeout:g}s"
                )
            self.acquired = True
            return self

        def __exit__(self, *exc_info: object) -> None:
            if self.acquired:
                if self._mode == "read":
                    self._lock.release_read()
                else:
                    self._lock.release_write()

    def read(self, timeout: float | None = None) -> "RWLock._Guard":
        """``with lock.read(): ...`` — shared access."""
        return RWLock._Guard(self, "read", timeout)

    def write(self, timeout: float | None = None) -> "RWLock._Guard":
        """``with lock.write(): ...`` — exclusive access."""
        return RWLock._Guard(self, "write", timeout)

    class _TryRead:
        """Context manager yielding ``True`` on acquisition, ``False`` on skip."""

        __slots__ = ("_lock", "_deadline", "_got")

        def __init__(self, lock: "RWLock", deadline: float) -> None:
            self._lock = lock
            self._deadline = deadline
            self._got = False

        def __enter__(self) -> bool:
            self._got = self._lock.acquire_read(self._deadline)
            if not self._got:
                self._lock.read_skips += 1
            return self._got

        def __exit__(self, *exc_info: object) -> None:
            if self._got:
                self._lock.release_read()

    def try_read(self, deadline: float = TRY_READ_DEADLINE) -> "RWLock._TryRead":
        """Deadline-bounded shared acquisition for sweeps: yields a bool."""
        return RWLock._TryRead(self, deadline)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "read_acquires": self.read_acquires,
            "write_acquires": self.write_acquires,
            "read_skips": self.read_skips,
            "write_hold_seconds": self.write_hold_seconds,
        }


class Mutex:
    """A named, RaceSan-tracked mutual-exclusion lock.

    The plain-lock counterpart of :class:`RWLock` for leaf state that never
    needs shared readers: pending-update buffers, the result cache, stats
    counters, metadata.  Naming matters — RaceSan's lock-order graph and
    candidate locksets group locks by name, so recreated instances of the
    same logical lock (each ``PendingUpdates`` has its own ``pending``
    mutex) alias correctly.

    ``reentrant=True`` wraps :class:`threading.RLock` instead; RaceSan
    tracks re-entry depth either way.  Leaf mutexes sit at the bottom of
    the lock hierarchy: no :class:`RWLock` may be acquired while one is
    held (machine-checked, not merely conventional).
    """

    __slots__ = ("name", "reentrant", "_lock")

    _ANON = itertools.count()

    def __init__(self, name: str = "", reentrant: bool = False) -> None:
        self.name = name or f"mutex#{next(Mutex._ANON)}"
        self.reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, timeout: float | None = None) -> bool:
        ok = self._lock.acquire(timeout=-1 if timeout is None else timeout)
        if ok:
            racesan.note_acquire(self, "mutex")
        return ok

    def release(self) -> None:
        self._lock.release()
        racesan.note_release(self, "mutex")

    def __enter__(self) -> "Mutex":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "reentrant mutex" if self.reentrant else "mutex"
        return f"<{kind} {self.name!r}>"


class LockRegistry:
    """All of one server's structure locks, keyed by structure identity.

    Two views of the same locks:

    * by *logical key* (``("R",)`` for a table group, ``("R", "A", 3)`` for
      shard 3 of a partitioned attribute) — what the executor acquires;
    * by *structure object* — what the sanitizer's
      :attr:`~repro.analysis.sanitizer.Sanitizer.structure_guard` consults
      when sweeping registered structures.  Binding uses weak references, so
      dropped shards unbind themselves.

    A structure with no binding gets :data:`None` from :meth:`lock_of`, and
    the sweep guard treats it as always-safe (serial-era behavior).
    """

    def __init__(self) -> None:
        # Deliberately a raw, untracked lock: weakref callbacks (`_gone`)
        # fire from GC at arbitrary points — including inside RaceSan's own
        # hooks — so this lock must stay invisible to the detector.
        self._mutex = threading.Lock()
        self._by_key: dict[tuple, RWLock] = {}
        self._by_obj: dict[int, tuple[weakref.ref, RWLock]] = {}

    def lock_for(self, *key: object) -> RWLock:
        """The lock of logical key ``key`` (created on first use)."""
        with self._mutex:
            lock = self._by_key.get(key)
            if lock is None:
                lock = RWLock(name=".".join(str(part) for part in key))
                self._by_key[key] = lock
            return lock

    def bind(self, obj: object, lock: RWLock) -> None:
        """Associate a live structure with the lock that guards it."""
        ident = id(obj)

        def _gone(_ref: weakref.ref, ident: int = ident) -> None:
            with self._mutex:
                self._by_obj.pop(ident, None)

        ref = weakref.ref(obj, _gone)
        with self._mutex:
            self._by_obj[ident] = (ref, lock)

    def lock_of(self, obj: object) -> RWLock | None:
        """The lock bound to ``obj``, or ``None`` when it is unguarded."""
        with self._mutex:
            entry = self._by_obj.get(id(obj))
        if entry is None:
            return None
        ref, lock = entry
        return lock if ref() is obj else None

    def structure_guard(self, obj: object):
        """The sanitizer hook: a context manager yielding proceed/skip.

        Unbound structures always proceed; bound structures proceed only if
        a shared read can be taken within the sweep deadline (pass-through
        when the sweeping thread itself owns the write lock).
        """
        lock = self.lock_of(obj)
        if lock is None:
            return _ALWAYS_PROCEED
        return lock.try_read()

    def stats(self) -> list[dict[str, object]]:
        with self._mutex:
            locks = list(self._by_key.values())
        return [lock.stats() for lock in locks]


class _AlwaysProceed:
    def __enter__(self) -> bool:
        return True

    def __exit__(self, *exc_info: object) -> None:
        return None


_ALWAYS_PROCEED = _AlwaysProceed()
