"""The session/executor front of the serving subsystem.

A :class:`ServerExecutor` owns a thread pool, a
:class:`~repro.server.locks.LockRegistry`, optional
:class:`~repro.server.partition.PartitionedColumn` shards, and a
version-keyed result cache, and serves SQL strings or programmatic
:class:`~repro.engine.query.Query` objects concurrently over one shared
:class:`~repro.engine.database.Database`.

Execution paths, fastest first:

``cache``
    The canonical result of an identical query at the same logical data
    version is returned without touching any structure.  Serving workloads
    repeat query templates heavily ("millions of users" ≠ millions of
    distinct queries); the cache key includes
    :attr:`~repro.engine.database.Database.data_version`, so any update
    invalidates every affected entry.
``partition``
    Single-predicate selections on a partitioned attribute run under the
    table's *shared* lock as prune → per-shard probe/crack (one shard lock
    at a time; the hierarchy is table → shard) → scatter-gather merge,
    then reconstruct projections with read-only base-column gathers.  The
    shared table lock serializes the scatter against :meth:`insert` /
    :meth:`delete`, which route pending updates under the table's
    exclusive lock — a query sees either all of an update or none of it.
``process``
    The same scatter-gather, but each shard lives in its own **worker
    process** (:class:`~repro.server.procpool.ProcessShardPool`): payloads
    sit in shared-memory segments, commands cross a pipe, and qualifying
    keys come back through shared result buffers, so shard cracks run on
    separate cores instead of interleaving under one GIL.  Enabled with
    ``processes > 0``; results stay bit-identical to every other path.

The result cache is an **LRU sized in bytes** (``cache_bytes``): whole
entries are admitted at their payload size and evicted
least-recently-served-first once the budget is exceeded; admission and
eviction counts surface in :meth:`ServerExecutor.stats`.
``read``
    Multi-predicate queries whose leading predicate is answerable by
    :meth:`~repro.cracking.column.CrackerColumn.probe` run entirely under
    the table's *shared* lock: refinement and reconstruction are read-only
    gathers over base columns.
``engine``
    Everything else runs the classic engine under the table's exclusive
    lock; the progressive crack budget bounds the partitioning work (and so
    the lock hold time) of each such query.

Every result is **canonicalized** — rows sorted lexicographically over the
result columns, aggregates recomputed from the sorted columns — so the
bytes a client sees are a pure function of (data version, query), not of
how concurrent cracking happened to interleave.  The data version is
sampled *inside* the table lock that serialized the query against
updates, and results enter the cache under that captured version — never
under a version sampled racily before execution.  ``ServedResult.digest()``
is the sha1 of those bytes; the determinism tests and ``exp17`` compare it
against a serial baseline.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import racesan
from repro.engine.base import Engine
from repro.engine.database import Database
from repro.engine.operators import random_gather
from repro.engine.query import Query, QueryResult, compute_aggregates
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.errors import QueryTimeout, ServerError
from repro.server.locks import LockRegistry, Mutex
from repro.server.partition import PartitionedColumn
from repro.server.procpool import ProcessShardPool

#: Default per-query deadline (seconds) for the blocking entry points.
DEFAULT_TIMEOUT = 30.0

#: Default result-cache budget: 64 MiB of canonical result payloads.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class ResultCacheLRU:
    """A bytes-budgeted LRU over canonical served results.

    Entries cost their result-column payload bytes (plus a small fixed
    overhead for the key and bookkeeping).  A hit refreshes recency; an
    admission that overflows the budget evicts least-recently-served
    entries until it fits.  An entry larger than the whole budget is
    refused outright (admitting it would just evict everything for one
    un-reusable answer).  Not thread-safe: callers hold the executor's
    cache mutex.
    """

    _ENTRY_OVERHEAD = 512

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ServerError(
                f"cache budget {capacity_bytes} must be >= 0 bytes"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, tuple[ServedResult, int]]" = OrderedDict()
        self.bytes = 0
        self.admissions = 0
        self.evictions = 0
        self.rejections = 0

    @staticmethod
    def cost_of(result: "ServedResult") -> int:
        payload = sum(arr.nbytes for arr in result.columns.values())
        return payload + ResultCacheLRU._ENTRY_OVERHEAD

    def get(self, key: tuple) -> "ServedResult | None":
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: tuple, result: "ServedResult") -> bool:
        cost = self.cost_of(result)
        if cost > self.capacity_bytes:
            self.rejections += 1
            return False
        stale = self._entries.pop(key, None)
        if stale is not None:
            self.bytes -= stale[1]
        self._entries[key] = (result, cost)
        self.bytes += cost
        self.admissions += 1
        while self.bytes > self.capacity_bytes:
            _, (_, evicted_cost) = self._entries.popitem(last=False)
            self.bytes -= evicted_cost
            self.evictions += 1
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "capacity_bytes": self.capacity_bytes,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "rejections": self.rejections,
        }


def canonicalize(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Sort result rows into a schedule-independent canonical order.

    Rows are ordered lexicographically over the result columns (attribute
    name order fixes the sort-key priority).  Result *membership* is exact
    under every execution path, so canonical results are bit-identical
    across serial, concurrent, partitioned, and budgeted runs.
    """
    if not columns:
        return columns
    names = sorted(columns)
    n = len(columns[names[0]])
    if n <= 1:
        return dict(columns)
    # np.lexsort keys: last key is the primary sort key.
    order = np.lexsort(tuple(columns[name] for name in reversed(names)))
    return {name: np.ascontiguousarray(arr[order]) for name, arr in columns.items()}


def digest_columns(columns: dict[str, np.ndarray]) -> str:
    """sha1 over the canonical result bytes (names, dtypes, and values)."""
    h = hashlib.sha1()
    for name in sorted(columns):
        arr = columns[name]
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ServedQuery:
    """One client request: a query plus its serving options."""

    query: Query
    timeout: float | None = None
    session: str = ""

    @classmethod
    def from_sql(cls, sql: str, db: Database, **kwargs) -> "ServedQuery":
        from repro.sql import parse

        return cls(parse(sql, db), **kwargs)


@dataclass
class ServedResult:
    """A canonicalized query answer plus per-query serving statistics."""

    columns: dict[str, np.ndarray] = field(default_factory=dict)
    aggregates: dict[str, float] = field(default_factory=dict)
    row_count: int = 0
    path: str = "engine"
    cached: bool = False
    elapsed_seconds: float = 0.0
    queue_seconds: float = 0.0
    data_version: int = 0
    fault_recovered: bool = False
    _digest: str | None = field(default=None, repr=False)

    def digest(self) -> str:
        # Memoized: a cached result serves many hits, and the sha1 over the
        # full result bytes would otherwise dominate the cache-hit path.
        if self._digest is None:
            self._digest = digest_columns(self.columns)
        return self._digest

    def as_payload(self) -> dict[str, object]:
        """A JSON-safe dict (the wire format of :mod:`repro.server.serve`)."""
        return {
            "columns": {k: v.tolist() for k, v in self.columns.items()},
            "aggregates": self.aggregates,
            "row_count": self.row_count,
            "path": self.path,
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "digest": self.digest(),
        }


def _cache_key(query: Query) -> tuple:
    preds = tuple(
        sorted(
            (p.attr, p.interval.lo, p.interval.hi,
             p.interval.lo_inclusive, p.interval.hi_inclusive)
            for p in query.predicates
        )
    )
    return (
        query.table, preds, query.projections, query.aggregates,
        query.conjunctive, query.group_by,
    )


class ServerExecutor:
    """A concurrent query front over one shared database.

    Parameters
    ----------
    db:
        The shared database.  Its sanitizer (if active) is wired to this
        executor's lock registry so deep sweeps skip structures busy under
        another worker's write lock.
    engine:
        The engine answering ``engine``-path queries; defaults to a
        :class:`~repro.engine.selection_cracking.SelectionCrackingEngine`.
    workers:
        Thread-pool width (the ``--workers`` CLI knob).
    partitions:
        Shard count for :meth:`partition` columns (the ``--partitions``
        knob); ``0`` disables the partition path entirely.
    cache:
        Enable the version-keyed result cache.
    processes:
        ``> 0`` selects the **process** backend: :meth:`partition` builds
        :class:`~repro.server.procpool.ProcessShardPool` columns whose
        shards live in worker processes over shared memory (the
        ``--processes`` knob).  ``0`` keeps the in-process thread shards.
    cache_bytes:
        The result cache's LRU budget in bytes (``--cache-bytes``);
        ``0`` disables caching like ``cache=False``.
    """

    def __init__(
        self,
        db: Database,
        engine: Engine | None = None,
        workers: int = 4,
        partitions: int = 0,
        cache: bool = True,
        default_timeout: float | None = DEFAULT_TIMEOUT,
        processes: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        if workers < 1:
            raise ServerError(f"worker count {workers} must be >= 1")
        if processes < 0:
            raise ServerError(f"process count {processes} must be >= 0")
        self.db = db
        self.engine = engine if engine is not None else SelectionCrackingEngine(db)
        self.workers = workers
        self.partitions = partitions
        self.processes = processes
        self.default_timeout = default_timeout
        self.registry = LockRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        # Shard fan-out gets its own pool: a query worker blocking on its
        # own pool's shard futures can deadlock once every worker does it
        # (all slots waiting, none running).  Shard tasks never re-submit,
        # so a dedicated pool cannot form that cycle.  In process mode the
        # pool must cover the whole process fan-out — its threads only
        # block on pipe I/O (GIL released) while the workers compute.
        fanout = max(workers, processes)
        self._shard_pool = (
            ThreadPoolExecutor(max_workers=fanout, thread_name_prefix="repro-shard")
            if fanout > 1
            else None
        )
        self._partitioned: dict[
            tuple[str, str], "PartitionedColumn | ProcessShardPool"
        ] = {}
        self._partition_mutex = Mutex("executor.partition")
        self._cache_enabled = cache and cache_bytes > 0
        self._cache = ResultCacheLRU(cache_bytes)
        self._cache_mutex = Mutex("executor.cache")
        self._stats_mutex = Mutex("executor.stats")
        self._closed = False
        self.queries_served = 0
        self.cache_hits = 0
        self.path_counts: dict[str, int] = {}
        self.latencies: list[float] = []
        # Deep sweeps must skip structures busy under another worker's
        # write lock (that worker validates them at its own checkpoint).
        if db.sanitizer is not None:
            db.sanitizer.structure_guard = self.registry.structure_guard
        # Database.close() must tear the executor (and its shared-memory
        # segments) down even if the embedder forgets to.
        db.register_closeable(self)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=True)
        # Process pools last: their workers may still be draining commands
        # submitted by in-flight queries above.  Closing unlinks every
        # shared-memory segment the pools own.
        with self._partition_mutex:
            pools = [
                column for column in self._partitioned.values()
                if isinstance(column, ProcessShardPool)
            ]
        for pool in pools:
            pool.close()

    def __enter__(self) -> "ServerExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- partitioning ----------------------------------------------------------

    def partition(
        self, table: str, attr: str, partitions: int | None = None
    ) -> "PartitionedColumn | ProcessShardPool":
        """Range-partition ``table.attr`` into independently-cracked shards.

        With ``processes > 0`` the shards are built as a
        :class:`~repro.server.procpool.ProcessShardPool` — one worker
        process per shard over shared-memory payloads; otherwise as the
        in-process :class:`~repro.server.partition.PartitionedColumn`.

        Thread-safe and idempotent: racing calls agree on one column
        (double-checked under ``_partition_mutex``), and the scatter
        snapshot is built under the table's write lock so it cannot
        interleave with an insert/delete routing rows mid-build.  The
        lock order is table → partition mutex, matching :meth:`insert`.
        """
        key = (table, attr)
        with self._partition_mutex:
            existing = self._partitioned.get(key)
        if existing is not None:
            return existing
        if self.processes > 0:
            count = self.processes if partitions is None else partitions
        else:
            count = self.partitions if partitions is None else partitions
        if count < 1:
            raise ServerError(
                f"cannot partition {table}.{attr}: partition count {count} < 1"
            )
        with self.registry.lock_for(table).write():
            with self._partition_mutex:
                existing = self._partitioned.get(key)
                if existing is not None:
                    return existing
            if self.processes > 0:
                column = ProcessShardPool(
                    self.db.table(table).column(attr), count,
                    table, attr, self.db.recorder,
                    budget=self.db.crack_budget, policy=self.db.crack_policy,
                    crack_seed=self.db.crack_seed,
                )
            else:
                column = PartitionedColumn(
                    self.db.table(table).column(attr), count, self.registry,
                    table, attr, self.db.recorder,
                    budget=self.db.crack_budget, policy=self.db.crack_policy,
                    crack_seed=self.db.crack_seed,
                )
            with self._partition_mutex:
                self._partitioned[key] = column
        return column

    def _partitioned_for(self, table: str) -> list[tuple[str, PartitionedColumn]]:
        """Snapshot of this table's partitioned columns (mutex-guarded, so
        a concurrent :meth:`partition` call cannot resize mid-iteration)."""
        with self._partition_mutex:
            return [
                (attr, column)
                for (tbl, attr), column in self._partitioned.items()
                if tbl == table
            ]

    # -- submission ------------------------------------------------------------

    def submit(self, request: "ServedQuery | Query | str"):
        """Enqueue one query; returns a ``concurrent.futures.Future``."""
        if self._closed:
            raise ServerError("executor is closed")
        served = self._coerce(request)
        enqueued = time.perf_counter()
        return self._pool.submit(self._serve, served, enqueued)

    def run(
        self, request: "ServedQuery | Query | str", timeout: float | None = None
    ) -> ServedResult:
        """Serve one query, blocking up to ``timeout`` seconds."""
        served = self._coerce(request)
        deadline = timeout if timeout is not None else (
            served.timeout if served.timeout is not None else self.default_timeout
        )
        future = self.submit(served)
        try:
            return future.result(timeout=deadline)
        except FutureTimeout:
            raise QueryTimeout(
                f"query on {served.query.table!r} missed its deadline",
                seconds=deadline,
            ) from None

    def run_batch(self, requests) -> list[ServedResult]:
        """Batched admission: serve many queries, deduplicating repeats.

        Identical queries in one batch are executed once and fanned out —
        the serving-side amortization a template-heavy workload earns.
        Results come back in request order.
        """
        served = [self._coerce(r) for r in requests]
        futures: dict[tuple, object] = {}
        for s in served:
            key = _cache_key(s.query)
            if key not in futures:
                futures[key] = self.submit(s)
        results = []
        for s in served:
            deadline = s.timeout if s.timeout is not None else self.default_timeout
            try:
                results.append(futures[_cache_key(s.query)].result(timeout=deadline))
            except FutureTimeout:
                raise QueryTimeout(
                    f"query on {s.query.table!r} missed its deadline",
                    seconds=deadline,
                ) from None
        return results

    def _coerce(self, request: "ServedQuery | Query | str") -> ServedQuery:
        if isinstance(request, ServedQuery):
            return request
        if isinstance(request, Query):
            return ServedQuery(request)
        if isinstance(request, str):
            return ServedQuery.from_sql(request, self.db)
        raise ServerError(f"cannot serve a {type(request).__name__}")

    # -- the worker body -------------------------------------------------------

    def _serve(self, served: ServedQuery, enqueued: float) -> ServedResult:
        started = time.perf_counter()
        query = served.query
        base_key = _cache_key(query) if self._cache_enabled else None
        if base_key is not None:
            # Optimistic, lock-free probe.  A hit was *stored* under the
            # version captured inside the table lock that computed it, so
            # it is exact for that version; if an update races past between
            # this read and the return, serving the pre-update answer is
            # still linearizable (the request overlapped the update).  This
            # is the one sanctioned unlocked version read, and deliberately
            # not RaceSan-noted — its correctness argument is versioned
            # immutability, not mutual exclusion.
            version = self.db.data_version  # locksan: allow(unlocked-version-read)
            with self._cache_mutex:
                hit = self._cache.get((*base_key, version))  # refreshes LRU recency
                racesan.note_access("executor.cache", "read")
            if hit is not None:
                result = ServedResult(
                    columns=hit.columns, aggregates=hit.aggregates,
                    row_count=hit.row_count, path="cache", cached=True,
                    elapsed_seconds=time.perf_counter() - started,
                    queue_seconds=started - enqueued,
                    data_version=hit.data_version,
                    _digest=hit.digest(),
                )
                self._note(result)
                return result
        deadline = (
            served.timeout if served.timeout is not None else self.default_timeout
        )
        result = self._execute(query, deadline)
        result.queue_seconds = started - enqueued
        result.elapsed_seconds = time.perf_counter() - started
        if base_key is not None and not result.fault_recovered:
            # Keyed on the version _execute read under the table lock —
            # never on a pre-execution sample that a racing update could
            # have invalidated before the query ever touched a structure.
            with self._cache_mutex:
                self._cache.put((*base_key, result.data_version), result)
                racesan.note_access("executor.cache", "write")
        self._note(result)
        return result

    def _note(self, result: ServedResult) -> None:
        with self._stats_mutex:
            self.queries_served += 1
            if result.cached:
                self.cache_hits += 1
            self.path_counts[result.path] = self.path_counts.get(result.path, 0) + 1
            self.latencies.append(result.elapsed_seconds)

    # -- execution paths -------------------------------------------------------

    def _execute(self, query: Query, deadline: float | None = None) -> ServedResult:
        """Run one query, reading ``data_version`` only *inside* the table
        lock that serializes it against updates — the version a result
        carries (and is cached under) is exactly the version it saw.
        ``deadline`` bounds process-backed shard dispatches; a worker that
        misses it surfaces as :class:`~repro.errors.QueryTimeout`."""
        table_lock = self.registry.lock_for(query.table)
        with table_lock.read():
            version = self._capture_version(query.table)
            scatter = self._try_partition_keys(query, deadline)
            if scatter is not None:
                partition_keys, path, recovered = scatter
                return self._finish_from_keys(
                    query, partition_keys, path, version,
                    fault_recovered=recovered,
                )
            if not query.group_by:
                keys = self._try_read_only_keys(query)
                if keys is not None:
                    return self._finish_from_keys(query, keys, "read", version)
        with table_lock.write():
            version = self._capture_version(query.table)
            # The engine call is sanctioned here: cracking *is* the write
            # this exclusive section exists for, and the crack budget caps
            # the hold time.  Everywhere else the rule stands.
            raw = self.engine.run(query)  # locksan: allow(blocking-under-write-lock)
            self._note_engine_writes(query.table)
            self._bind_table_structures(query.table, table_lock)
        return self._finish_from_result(query, raw, "engine", version)

    def _capture_version(self, table: str) -> int:
        """Read ``data_version`` and tell RaceSan which table's lock guards
        the read.  Every caller sits inside ``table``'s lock; the lockset of
        this access going empty is exactly the PR 6 race class."""
        version = self.db.data_version
        racesan.note_access(
            f"{table}.data_version", "read", seed=self.db.crack_seed
        )
        return version

    def _note_engine_writes(self, table: str) -> None:
        """Mark the engine path's structure mutations for RaceSan (caller
        holds the table's write lock)."""
        for (tbl, _attr), cracker in list(self.db._crackers.items()):
            if tbl == table:
                racesan.note_access(f"cracker[{cracker.label}].pieces", "write")
                racesan.note_access(f"cracker[{cracker.label}].tape", "write")

    def _try_partition_keys(
        self, query: Query, deadline: float | None = None
    ) -> "tuple[np.ndarray, str, bool] | None":
        """Scatter-gather path: single-predicate query on a partitioned attr.

        Returns ``(keys, path, fault_recovered)`` — path ``"partition"``
        for in-process thread shards, ``"process"`` for the shared-memory
        worker-process backend — or ``None`` when the query is not
        scatter-shaped.  Caller holds the table's read lock, so the scatter
        cannot overlap an :meth:`insert`/:meth:`delete` routing pending
        rows (those hold the table's write lock); shard locks (and worker
        pipes) nest strictly inside.
        """
        if query.group_by or len(query.predicates) != 1:
            return None
        pred = query.predicates[0]
        with self._partition_mutex:
            column = self._partitioned.get((query.table, pred.attr))
        if column is None:
            return None
        if isinstance(column, ProcessShardPool):
            keys, recovered = column.select(
                pred.interval, deadline=deadline, pool=self._shard_pool
            )
            return keys, "process", recovered
        shards = column.relevant_shards(pred.interval)
        if len(shards) > 1 and self._shard_pool is not None:
            # Scatter onto the shard pool (each task takes one shard lock)...
            futures = [
                self._shard_pool.submit(column.select_one, shard, pred.interval)
                for shard in shards[1:]
            ]
            parts = [column.select_one(shards[0], pred.interval)]
            parts += [f.result() for f in futures]
        else:
            parts = [column.select_one(shard, pred.interval) for shard in shards]
        pruned = len(column.shards) - len(shards)
        if pruned:
            self.db.recorder.event("index_lookups", pruned)
        if not parts:
            return np.empty(0, dtype=np.int64), "partition", False
        # ... and gather.
        keys = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return keys, "partition", False

    def _try_read_only_keys(self, query: Query) -> np.ndarray | None:
        """Answer the selection with zero reorganization, or give up.

        Conjunctive: probe any predicate's existing cracker column, refine
        the rest with base-column gathers (order does not matter for
        membership, and results are canonicalized).  Disjunctive: every
        predicate must be probeable.  Caller holds the table's read lock.
        """
        if not query.predicates:
            return np.flatnonzero(~self.db.tombstones(query.table)).astype(np.int64)
        crackers = self.db._crackers
        relation = self.db.table(query.table)
        if query.conjunctive:
            keys = None
            probed_attr = None
            for pred in query.predicates:
                cracker = crackers.get((query.table, pred.attr))
                if cracker is None:
                    continue
                keys = cracker.probe(pred.interval)
                racesan.note_access(f"cracker[{cracker.label}].pieces", "read")
                if keys is not None:
                    probed_attr = pred.attr
                    break
            if keys is None:
                return None
            for pred in query.predicates:
                if pred.attr == probed_attr:
                    continue
                values = random_gather(
                    relation.values(pred.attr), keys, self.db.recorder
                )
                keys = keys[pred.interval.mask(values)]
            return keys
        parts = []
        for pred in query.predicates:
            cracker = crackers.get((query.table, pred.attr))
            if cracker is None:
                return None
            keys = cracker.probe(pred.interval)
            racesan.note_access(f"cracker[{cracker.label}].pieces", "read")
            if keys is None:
                return None
            parts.append(keys)
        self.db.recorder.sequential(sum(len(p) for p in parts))
        return np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)

    def _finish_from_keys(
        self, query: Query, keys: np.ndarray, path: str, version: int,
        fault_recovered: bool = False,
    ) -> ServedResult:
        """Reconstruct, canonicalize, and aggregate from qualifying keys."""
        relation = self.db.table(query.table)
        columns = {
            attr: random_gather(relation.values(attr), keys, self.db.recorder)
            for attr in query.needed_columns
        }
        columns = canonicalize(columns)
        from repro.analysis.sanitizer import checkpoint_query

        checkpoint_query()
        return ServedResult(
            columns=columns,
            aggregates=compute_aggregates(query.aggregates, columns),
            row_count=len(keys),
            path=path,
            data_version=version,
            fault_recovered=fault_recovered,
        )

    def _finish_from_result(
        self, query: Query, raw: QueryResult, path: str, version: int
    ) -> ServedResult:
        columns = canonicalize(raw.columns)
        if query.group_by:
            aggregates = dict(raw.aggregates)
        else:
            aggregates = compute_aggregates(query.aggregates, columns)
        return ServedResult(
            columns=columns,
            aggregates=aggregates,
            row_count=raw.row_count,
            path=path,
            data_version=version,
            fault_recovered=raw.fault_recovered,
        )

    def _bind_table_structures(self, table: str, lock) -> None:
        """Bind this table's (possibly new) structures to its lock.

        Everything mutated under the table's write lock — cracker columns,
        sideways map sets, partial sets, and their sanitizer-registered
        children — must carry the binding, or a concurrent deep sweep could
        validate a structure mid-crack instead of skipping it.
        """
        for obj in self._table_structures(table):
            if self.registry.lock_of(obj) is None:
                self.registry.bind(obj, lock)

    def _table_structures(self, table: str) -> list[object]:
        out: list[object] = []

        def add(obj: object) -> None:
            if obj is None:
                return
            out.append(obj)
            index = getattr(obj, "index", None)
            if index is not None:
                out.append(index)

        for (tbl, _attr), cracker in list(self.db._crackers.items()):
            if tbl == table:
                add(cracker)
        sideways = self.db._sideways.get(table)
        if sideways is not None:
            for mapset in list(sideways.sets.values()):
                add(mapset)
                for cmap in list(mapset.maps.values()):
                    add(cmap)
        partial = self.db._partial.get(table)
        if partial is not None:
            for pset in list(partial.sets.values()):
                add(pset)
                add(pset.chunkmap)
                for pmap in list(pset.maps.values()):
                    add(pmap)
                    for chunk in list(pmap.chunks.values()):
                        add(chunk)
        return out

    # -- updates ---------------------------------------------------------------

    def insert(self, table: str, rows: dict[str, object]) -> np.ndarray:
        """Route an insert through the database and the partitioned shards.

        The version bump (inside ``db.insert``) and the shard routing both
        happen under the table's write lock, so no query can observe the
        new version while a shard still lacks its pending rows: partition
        and read paths take the table's read lock first.
        """
        with self.registry.lock_for(table).write():
            keys = self.db.insert(table, rows)
            racesan.note_access(
                f"{table}.data_version", "write", seed=self.db.crack_seed
            )
            relation = self.db.table(table)
            for attr, column in self._partitioned_for(table):
                column.add_insertions(relation.values(attr)[keys], keys)
        return keys

    def delete(self, table: str, keys: np.ndarray) -> None:
        with self.registry.lock_for(table).write():
            keys = np.asarray(keys, dtype=np.int64)
            relation = self.db.table(table)
            partitioned = self._partitioned_for(table)
            values = {
                attr: relation.values(attr)[keys] for attr, _ in partitioned
            }
            self.db.delete(table, keys)
            racesan.note_access(
                f"{table}.data_version", "write", seed=self.db.crack_seed
            )
            for attr, column in partitioned:
                column.add_deletions(values[attr], keys)

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, object]:
        with self._stats_mutex:
            latencies = sorted(self.latencies)
            served = self.queries_served
            hits = self.cache_hits
            paths = dict(self.path_counts)

        def pct(p: float) -> float:
            if not latencies:
                return 0.0
            return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

        lock_stats = self.registry.stats()
        hold_stats = [
            {"label": c.label, **c._tracker.hold_stats()}
            for c in self.db._crackers.values()
        ]
        with self._partition_mutex:
            partitioned = dict(self._partitioned)
        with self._cache_mutex:
            cache_stats = self._cache.stats()
        return {
            "workers": self.workers,
            "processes": self.processes,
            "engine_mode": "process" if self.processes > 0 else "thread",
            "queries_served": served,
            "cache_hits": hits,
            "cache_hit_rate": (hits / served) if served else 0.0,
            "cache": cache_stats,
            "paths": paths,
            "latency_p50": pct(0.50),
            "latency_p99": pct(0.99),
            "locks": lock_stats,
            "budget_holds": hold_stats,
            "partitioned": {
                f"{t}.{a}": col.stats() for (t, a), col in partitioned.items()
            },
        }
