"""The session/executor front of the serving subsystem.

A :class:`ServerExecutor` owns a thread pool, a
:class:`~repro.server.locks.LockRegistry`, optional
:class:`~repro.server.partition.PartitionedColumn` shards, and a
version-keyed result cache, and serves SQL strings or programmatic
:class:`~repro.engine.query.Query` objects concurrently over one shared
:class:`~repro.engine.database.Database`.

Execution paths, fastest first:

``cache``
    The canonical result of an identical query at the same logical data
    version is returned without touching any structure.  Serving workloads
    repeat query templates heavily ("millions of users" ≠ millions of
    distinct queries); the cache key includes
    :attr:`~repro.engine.database.Database.data_version`, so any update
    invalidates every affected entry.
``partition``
    Single-predicate selections on a partitioned attribute run under the
    table's *shared* lock as prune → per-shard probe/crack (one shard lock
    at a time; the hierarchy is table → shard) → scatter-gather merge,
    then reconstruct projections with read-only base-column gathers.  The
    shared table lock serializes the scatter against :meth:`insert` /
    :meth:`delete`, which route pending updates under the table's
    exclusive lock — a query sees either all of an update or none of it.
``process``
    The same scatter-gather, but each shard lives in its own **worker
    process** (:class:`~repro.server.procpool.ProcessShardPool`): payloads
    sit in shared-memory segments, commands cross a pipe, and qualifying
    keys come back through shared result buffers, so shard cracks run on
    separate cores instead of interleaving under one GIL.  Enabled with
    ``processes > 0``; results stay bit-identical to every other path.

The result cache is an **LRU sized in bytes** (``cache_bytes``): whole
entries are admitted at their payload size and evicted
least-recently-served-first once the budget is exceeded; admission and
eviction counts surface in :meth:`ServerExecutor.stats`.
``read``
    Multi-predicate queries whose leading predicate is answerable by
    :meth:`~repro.cracking.column.CrackerColumn.probe` run entirely under
    the table's *shared* lock: refinement and reconstruction are read-only
    gathers over base columns.
``engine``
    Everything else runs the classic engine under the table's exclusive
    lock; the progressive crack budget bounds the partitioning work (and so
    the lock hold time) of each such query.

Every result is **canonicalized** — rows sorted lexicographically over the
result columns, aggregates recomputed from the sorted columns — so the
bytes a client sees are a pure function of (data version, query), not of
how concurrent cracking happened to interleave.  The data version is
sampled *inside* the table lock that serialized the query against
updates, and results enter the cache under that captured version — never
under a version sampled racily before execution.  ``ServedResult.digest()``
is the sha1 of those bytes; the determinism tests and ``exp17`` compare it
against a serial baseline.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import CancelledError as FutureCancelled
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import racesan
from repro.cracking.progressive import ProgressiveBudget
from repro.engine.base import Engine
from repro.engine.database import Database
from repro.engine.operators import random_gather
from repro.engine.query import Query, QueryResult, compute_aggregates
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.errors import QueryTimeout, ServerError, ServerOverloaded
from repro.server.locks import LockRegistry, Mutex
from repro.server.partition import PartitionedColumn
from repro.server.procpool import ProcessShardPool
from repro.server.resilience import Deadline, ResilienceConfig

#: Default per-query deadline (seconds) for the blocking entry points.
DEFAULT_TIMEOUT = 30.0

#: Default result-cache budget: 64 MiB of canonical result payloads.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Admission shed policies (the ``--shed-policy`` CLI knob).
SHED_POLICIES = ("reject-newest", "reject-oldest", "deadline-aware")

#: A request whose remaining budget falls under half its full budget takes
#: a trimmed :class:`~repro.cracking.progressive.ProgressiveBudget` on the
#: engine path — answer via hole-carrying resolve now, finish cracking on
#: some later, less-pressed query.
BUDGET_TRIM_FRACTION = 0.5

#: The trimmed per-query crack allowance (elements).
BUDGET_TRIM_ELEMENTS = 4096


class ResultCacheLRU:
    """A bytes-budgeted LRU over canonical served results.

    Entries cost their result-column payload bytes (plus a small fixed
    overhead for the key and bookkeeping).  A hit refreshes recency; an
    admission that overflows the budget evicts least-recently-served
    entries until it fits.  An entry larger than the whole budget is
    refused outright (admitting it would just evict everything for one
    un-reusable answer).  Not thread-safe: callers hold the executor's
    cache mutex.
    """

    _ENTRY_OVERHEAD = 512

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ServerError(
                f"cache budget {capacity_bytes} must be >= 0 bytes"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, tuple[ServedResult, int]]" = OrderedDict()
        self.bytes = 0
        self.admissions = 0
        self.evictions = 0
        self.rejections = 0

    @staticmethod
    def cost_of(result: "ServedResult") -> int:
        payload = sum(arr.nbytes for arr in result.columns.values())
        return payload + ResultCacheLRU._ENTRY_OVERHEAD

    def get(self, key: tuple) -> "ServedResult | None":
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: tuple, result: "ServedResult") -> bool:
        cost = self.cost_of(result)
        if cost > self.capacity_bytes:
            self.rejections += 1
            return False
        stale = self._entries.pop(key, None)
        if stale is not None:
            self.bytes -= stale[1]
        self._entries[key] = (result, cost)
        self.bytes += cost
        self.admissions += 1
        while self.bytes > self.capacity_bytes:
            _, (_, evicted_cost) = self._entries.popitem(last=False)
            self.bytes -= evicted_cost
            self.evictions += 1
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "capacity_bytes": self.capacity_bytes,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "rejections": self.rejections,
        }


def canonicalize(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Sort result rows into a schedule-independent canonical order.

    Rows are ordered lexicographically over the result columns (attribute
    name order fixes the sort-key priority).  Result *membership* is exact
    under every execution path, so canonical results are bit-identical
    across serial, concurrent, partitioned, and budgeted runs.
    """
    if not columns:
        return columns
    names = sorted(columns)
    n = len(columns[names[0]])
    if n <= 1:
        return dict(columns)
    # np.lexsort keys: last key is the primary sort key.
    order = np.lexsort(tuple(columns[name] for name in reversed(names)))
    return {name: np.ascontiguousarray(arr[order]) for name, arr in columns.items()}


def digest_columns(columns: dict[str, np.ndarray]) -> str:
    """sha1 over the canonical result bytes (names, dtypes, and values)."""
    h = hashlib.sha1()
    for name in sorted(columns):
        arr = columns[name]
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ServedQuery:
    """One client request: a query plus its serving options."""

    query: Query
    timeout: float | None = None
    session: str = ""

    @classmethod
    def from_sql(cls, sql: str, db: Database, **kwargs) -> "ServedQuery":
        from repro.sql import parse

        return cls(parse(sql, db), **kwargs)


@dataclass
class ServedResult:
    """A canonicalized query answer plus per-query serving statistics."""

    columns: dict[str, np.ndarray] = field(default_factory=dict)
    aggregates: dict[str, float] = field(default_factory=dict)
    row_count: int = 0
    path: str = "engine"
    cached: bool = False
    elapsed_seconds: float = 0.0
    queue_seconds: float = 0.0
    data_version: int = 0
    fault_recovered: bool = False
    #: The answer is exact but a sick shard's range was served by the
    #: breaker's scan fallback instead of its cracker.  Never cached.
    degraded: bool = False
    _digest: str | None = field(default=None, repr=False)

    def digest(self) -> str:
        # Memoized: a cached result serves many hits, and the sha1 over the
        # full result bytes would otherwise dominate the cache-hit path.
        if self._digest is None:
            self._digest = digest_columns(self.columns)
        return self._digest

    def as_payload(self) -> dict[str, object]:
        """A JSON-safe dict (the wire format of :mod:`repro.server.serve`)."""
        return {
            "columns": {k: v.tolist() for k, v in self.columns.items()},
            "aggregates": self.aggregates,
            "row_count": self.row_count,
            "path": self.path,
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "fault_recovered": self.fault_recovered,
            "degraded": self.degraded,
            "digest": self.digest(),
        }


def _cache_key(query: Query) -> tuple:
    preds = tuple(
        sorted(
            (p.attr, p.interval.lo, p.interval.hi,
             p.interval.lo_inclusive, p.interval.hi_inclusive)
            for p in query.predicates
        )
    )
    return (
        query.table, preds, query.projections, query.aggregates,
        query.conjunctive, query.group_by,
    )


@dataclass
class _Request:
    """One admitted request: the query, its deadline, and its future.

    ``ticket`` orders requests for the reject-oldest shed policy;
    ``deadline`` is the single budget every layer (wait, scatter, procpool
    dispatch, crack budget) measures against, anchored at enqueue.
    """

    served: ServedQuery
    deadline: Deadline
    enqueued: float
    ticket: int = 0
    future: object = None


class ServerExecutor:
    """A concurrent query front over one shared database.

    Parameters
    ----------
    db:
        The shared database.  Its sanitizer (if active) is wired to this
        executor's lock registry so deep sweeps skip structures busy under
        another worker's write lock.
    engine:
        The engine answering ``engine``-path queries; defaults to a
        :class:`~repro.engine.selection_cracking.SelectionCrackingEngine`.
    workers:
        Thread-pool width (the ``--workers`` CLI knob).
    partitions:
        Shard count for :meth:`partition` columns (the ``--partitions``
        knob); ``0`` disables the partition path entirely.
    cache:
        Enable the version-keyed result cache.
    processes:
        ``> 0`` selects the **process** backend: :meth:`partition` builds
        :class:`~repro.server.procpool.ProcessShardPool` columns whose
        shards live in worker processes over shared memory (the
        ``--processes`` knob).  ``0`` keeps the in-process thread shards.
    cache_bytes:
        The result cache's LRU budget in bytes (``--cache-bytes``);
        ``0`` disables caching like ``cache=False``.
    max_queue:
        Bound on *waiting* (admitted but not yet executing) requests
        (``--max-queue``); ``None`` leaves admission unbounded.
    max_inflight:
        Bound on waiting + executing requests (``--max-inflight``).
    shed_policy:
        Which request the full admission queue drops: ``reject-newest``
        (refuse the newcomer), ``reject-oldest`` (cancel the
        longest-waiting queued request to make room), or
        ``deadline-aware`` (shed queued requests whose remaining budget
        cannot cover the observed p50 service time — they were going to
        time out anyway — before falling back to reject-newest).
    resilience:
        Retry/breaker knobs handed to process-mode shard pools
        (:class:`~repro.server.resilience.ResilienceConfig`).
    """

    def __init__(
        self,
        db: Database,
        engine: Engine | None = None,
        workers: int = 4,
        partitions: int = 0,
        cache: bool = True,
        default_timeout: float | None = DEFAULT_TIMEOUT,
        processes: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_queue: int | None = None,
        max_inflight: int | None = None,
        shed_policy: str = "reject-newest",
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ServerError(f"worker count {workers} must be >= 1")
        if processes < 0:
            raise ServerError(f"process count {processes} must be >= 0")
        if max_queue is not None and max_queue < 0:
            raise ServerError(f"max_queue {max_queue} must be >= 0")
        if max_inflight is not None and max_inflight < 1:
            raise ServerError(f"max_inflight {max_inflight} must be >= 1")
        if shed_policy not in SHED_POLICIES:
            raise ServerError(
                f"unknown shed policy {shed_policy!r}; pick one of "
                f"{', '.join(SHED_POLICIES)}"
            )
        self.db = db
        self.engine = engine if engine is not None else SelectionCrackingEngine(db)
        self.workers = workers
        self.partitions = partitions
        self.processes = processes
        self.default_timeout = default_timeout
        self.registry = LockRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        # Shard fan-out gets its own pool: a query worker blocking on its
        # own pool's shard futures can deadlock once every worker does it
        # (all slots waiting, none running).  Shard tasks never re-submit,
        # so a dedicated pool cannot form that cycle.  In process mode the
        # pool must cover the whole process fan-out — its threads only
        # block on pipe I/O (GIL released) while the workers compute.
        fanout = max(workers, processes)
        self._shard_pool = (
            ThreadPoolExecutor(max_workers=fanout, thread_name_prefix="repro-shard")
            if fanout > 1
            else None
        )
        self._partitioned: dict[
            tuple[str, str], "PartitionedColumn | ProcessShardPool"
        ] = {}
        self._partition_mutex = Mutex("executor.partition")
        self._cache_enabled = cache and cache_bytes > 0
        self._cache = ResultCacheLRU(cache_bytes)
        self._cache_mutex = Mutex("executor.cache")
        self._stats_mutex = Mutex("executor.stats")
        self._closed = False
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self.shed_policy = shed_policy
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        # Admission state: waiting requests (ticket -> record, insertion
        # ordered) and the executing count, all under one leaf mutex.
        self._admission_mutex = Mutex("executor.admission")
        self._close_mutex = Mutex("executor.close")
        self._queued: "OrderedDict[int, _Request]" = OrderedDict()
        self._inflight = 0
        self._request_seq = 0
        self._draining = False
        self.shed = 0
        self.abandoned = 0
        self.degraded_served = 0
        self.budget_trims = 0
        self.queries_served = 0
        self.cache_hits = 0
        self.path_counts: dict[str, int] = {}
        self.latencies: list[float] = []
        # Deep sweeps must skip structures busy under another worker's
        # write lock (that worker validates them at its own checkpoint).
        if db.sanitizer is not None:
            db.sanitizer.structure_guard = self.registry.structure_guard
        # Database.close() must tear the executor (and its shared-memory
        # segments) down even if the embedder forgets to.
        db.register_closeable(self)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Graceful drain, then teardown.  Idempotent, and safe under
        concurrent callers: everyone serializes on the close mutex, so a
        second closer blocks until the first finished instead of racing
        the pool shutdowns, and every caller returns to a fully-closed
        executor.

        Drain order: stop admitting, shed what is still queued (those
        waiters see :class:`~repro.errors.ServerOverloaded`), let
        in-flight queries finish, then close the shard pools and unlink
        their shared-memory segments.
        """
        with self._close_mutex:
            if self._closed:
                return
            with self._admission_mutex:
                self._draining = True
                for record in list(self._queued.values()):
                    if record.future is not None and record.future.cancel():
                        self._queued.pop(record.ticket, None)
                        record.deadline.cancel()
                        self.shed += 1
            self._pool.shutdown(wait=True)
            if self._shard_pool is not None:
                self._shard_pool.shutdown(wait=True)
            # Process pools last: their workers may still be draining
            # commands submitted by in-flight queries above.  Closing
            # unlinks every shared-memory segment the pools own.
            with self._partition_mutex:
                pools = [
                    column for column in self._partitioned.values()
                    if isinstance(column, ProcessShardPool)
                ]
            for pool in pools:
                pool.close()
            self._closed = True

    def __enter__(self) -> "ServerExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- partitioning ----------------------------------------------------------

    def partition(
        self, table: str, attr: str, partitions: int | None = None
    ) -> "PartitionedColumn | ProcessShardPool":
        """Range-partition ``table.attr`` into independently-cracked shards.

        With ``processes > 0`` the shards are built as a
        :class:`~repro.server.procpool.ProcessShardPool` — one worker
        process per shard over shared-memory payloads; otherwise as the
        in-process :class:`~repro.server.partition.PartitionedColumn`.

        Thread-safe and idempotent: racing calls agree on one column
        (double-checked under ``_partition_mutex``), and the scatter
        snapshot is built under the table's write lock so it cannot
        interleave with an insert/delete routing rows mid-build.  The
        lock order is table → partition mutex, matching :meth:`insert`.
        """
        key = (table, attr)
        with self._partition_mutex:
            existing = self._partitioned.get(key)
        if existing is not None:
            return existing
        if self.processes > 0:
            count = self.processes if partitions is None else partitions
        else:
            count = self.partitions if partitions is None else partitions
        if count < 1:
            raise ServerError(
                f"cannot partition {table}.{attr}: partition count {count} < 1"
            )
        with self.registry.lock_for(table).write():
            with self._partition_mutex:
                existing = self._partitioned.get(key)
                if existing is not None:
                    return existing
            if self.processes > 0:
                column = ProcessShardPool(
                    self.db.table(table).column(attr), count,
                    table, attr, self.db.recorder,
                    budget=self.db.crack_budget, policy=self.db.crack_policy,
                    crack_seed=self.db.crack_seed,
                    resilience=self.resilience,
                )
            else:
                column = PartitionedColumn(
                    self.db.table(table).column(attr), count, self.registry,
                    table, attr, self.db.recorder,
                    budget=self.db.crack_budget, policy=self.db.crack_policy,
                    crack_seed=self.db.crack_seed,
                )
            with self._partition_mutex:
                self._partitioned[key] = column
        return column

    def _partitioned_for(self, table: str) -> list[tuple[str, PartitionedColumn]]:
        """Snapshot of this table's partitioned columns (mutex-guarded, so
        a concurrent :meth:`partition` call cannot resize mid-iteration)."""
        with self._partition_mutex:
            return [
                (attr, column)
                for (tbl, attr), column in self._partitioned.items()
                if tbl == table
            ]

    # -- submission ------------------------------------------------------------

    def _budget_of(self, served: ServedQuery, timeout: float | None = None) -> float | None:
        if timeout is not None:
            return timeout
        if served.timeout is not None:
            return served.timeout
        return self.default_timeout

    def admit(
        self,
        request: "ServedQuery | Query | str",
        timeout: float | None = None,
        enqueued: float | None = None,
    ) -> _Request:
        """Admission control: queue one request or shed under pressure.

        Builds the request's :class:`~repro.server.resilience.Deadline`
        anchored at ``enqueued`` (so batch members share one clock and
        queue wait counts against the budget), applies the shed policy
        when the bounded queue is full, and submits to the worker pool —
        all under the admission mutex, so a request can never be half
        queued.  Raises :class:`~repro.errors.ServerOverloaded` when this
        request is the one shed.
        """
        served = self._coerce(request)
        now = time.perf_counter()
        deadline = Deadline(
            self._budget_of(served, timeout),
            now if enqueued is None else enqueued,
        )
        with self._admission_mutex:
            if self._closed or self._draining:
                raise ServerError("executor is closed")
            self._maybe_shed(deadline)
            self._request_seq += 1
            record = _Request(
                served=served, deadline=deadline,
                enqueued=now, ticket=self._request_seq,
            )
            self._queued[record.ticket] = record
            # Submit while holding the mutex: _serve pops the record under
            # the same mutex, so a queued entry always has a live future
            # (shed policies rely on future.cancel() deciding ownership).
            record.future = self._pool.submit(self._serve, record)
        return record

    def _maybe_shed(self, incoming: Deadline) -> None:
        """Apply the shed policy (caller holds the admission mutex)."""
        while True:
            over_queue = (
                self.max_queue is not None and len(self._queued) >= self.max_queue
            )
            over_inflight = (
                self.max_inflight is not None
                and len(self._queued) + self._inflight >= self.max_inflight
            )
            if not over_queue and not over_inflight:
                return
            victim = self._pick_victim(incoming)
            if victim is None:
                self.shed += 1
                raise ServerOverloaded(
                    "admission queue is full", policy=self.shed_policy
                )
            # A queued record whose future we managed to cancel never runs;
            # its waiter sees CancelledError -> ServerOverloaded.
            self._queued.pop(victim.ticket, None)
            victim.deadline.cancel()
            self.shed += 1

    def _pick_victim(self, incoming: Deadline) -> "_Request | None":
        """Choose a *queued* request to shed, or ``None`` to refuse the
        newcomer.  Only requests whose future cancels cleanly count — one
        that already started executing is not shed-able."""
        if self.shed_policy == "reject-newest":
            return None
        if self.shed_policy == "reject-oldest":
            for record in self._queued.values():
                if record.future is not None and record.future.cancel():
                    return record
            return None
        # deadline-aware: first shed queued requests that cannot finish in
        # time anyway (remaining budget < observed p50 service time);
        # if everyone still has headroom, refuse the newcomer — and refuse
        # it outright when *it* is the hopeless one.
        p50 = self._observed_p50()
        for record in self._queued.values():
            remaining = record.deadline.remaining()
            if remaining is not None and remaining < p50 \
                    and record.future is not None and record.future.cancel():
                return record
        return None

    def _observed_p50(self) -> float:
        with self._stats_mutex:
            if not self.latencies:
                return 0.0
            ordered = sorted(self.latencies)
            return ordered[len(ordered) // 2]

    def submit(self, request: "ServedQuery | Query | str"):
        """Enqueue one query; returns a ``concurrent.futures.Future``.

        May raise :class:`~repro.errors.ServerOverloaded` at submission
        when admission control sheds the newcomer.
        """
        return self.admit(request).future

    def _await(self, record: _Request) -> ServedResult:
        """Wait out one admitted request, mapping the future's failure
        modes to the wire errors: a cancelled future was shed by a later
        admission (ServerOverloaded); a wait that exceeds the request's
        deadline abandons it (cancel the deadline so workers stop at the
        next boundary, never cache) and raises QueryTimeout."""
        try:
            return record.future.result(timeout=record.deadline.remaining())
        except FutureCancelled:
            raise ServerOverloaded(
                f"query on {record.served.query.table!r} was shed while "
                "queued", policy=self.shed_policy,
            ) from None
        except FutureTimeout:
            self._abandon(record)
            raise QueryTimeout(
                f"query on {record.served.query.table!r} missed its deadline",
                seconds=record.deadline.budget,
            ) from None

    def _abandon(self, record: _Request) -> None:
        """A waiter gave up: flag cooperative cancellation so the pool
        thread stops at its next scatter/probe boundary and its (stale)
        result is never admitted to the cache."""
        record.deadline.cancel()
        with self._stats_mutex:
            self.abandoned += 1

    def run(
        self, request: "ServedQuery | Query | str", timeout: float | None = None
    ) -> ServedResult:
        """Serve one query, blocking up to ``timeout`` seconds."""
        return self._await(self.admit(request, timeout=timeout))

    def run_batch(self, requests) -> list[ServedResult]:
        """Batched admission: serve many queries, deduplicating repeats.

        Identical queries in one batch are executed once and fanned out —
        the serving-side amortization a template-heavy workload earns.
        Results come back in request order.  Every deadline is anchored at
        one shared enqueue timestamp (taken before the first admission),
        so a request's position in the batch does not grant extra budget.
        """
        served = [self._coerce(r) for r in requests]
        batch_enqueued = time.perf_counter()
        records: dict[tuple, _Request] = {}
        for s in served:
            key = _cache_key(s.query)
            if key not in records:
                records[key] = self.admit(s, enqueued=batch_enqueued)
        return [self._await(records[_cache_key(s.query)]) for s in served]

    def _coerce(self, request: "ServedQuery | Query | str") -> ServedQuery:
        if isinstance(request, ServedQuery):
            return request
        if isinstance(request, Query):
            return ServedQuery(request)
        if isinstance(request, str):
            return ServedQuery.from_sql(request, self.db)
        raise ServerError(f"cannot serve a {type(request).__name__}")

    # -- the worker body -------------------------------------------------------

    def _serve(self, record: _Request) -> ServedResult:
        started = time.perf_counter()
        # Leaving the queue: from here on the request counts as in-flight
        # and is no longer shed-able (future.cancel() would fail anyway).
        with self._admission_mutex:
            self._queued.pop(record.ticket, None)
            self._inflight += 1
        try:
            return self._serve_admitted(record, started)
        finally:
            with self._admission_mutex:
                self._inflight -= 1

    def _serve_admitted(self, record: _Request, started: float) -> ServedResult:
        served = record.served
        enqueued = record.enqueued
        deadline = record.deadline
        if deadline.cancelled or deadline.expired():
            # The waiter already gave up (or the queue wait ate the whole
            # budget): stop before touching any structure.
            raise QueryTimeout(
                f"query on {served.query.table!r} overran its budget while "
                "queued", seconds=deadline.budget,
            )
        query = served.query
        base_key = _cache_key(query) if self._cache_enabled else None
        if base_key is not None:
            # Optimistic, lock-free probe.  A hit was *stored* under the
            # version captured inside the table lock that computed it, so
            # it is exact for that version; if an update races past between
            # this read and the return, serving the pre-update answer is
            # still linearizable (the request overlapped the update).  This
            # is the one sanctioned unlocked version read, and deliberately
            # not RaceSan-noted — its correctness argument is versioned
            # immutability, not mutual exclusion.
            version = self.db.data_version  # locksan: allow(unlocked-version-read)
            with self._cache_mutex:
                hit = self._cache.get((*base_key, version))  # refreshes LRU recency
                racesan.note_access("executor.cache", "read")
            if hit is not None:
                result = ServedResult(
                    columns=hit.columns, aggregates=hit.aggregates,
                    row_count=hit.row_count, path="cache", cached=True,
                    elapsed_seconds=time.perf_counter() - started,
                    queue_seconds=started - enqueued,
                    data_version=hit.data_version,
                    _digest=hit.digest(),
                )
                self._note(result)
                return result
        result = self._execute(query, deadline)
        result.queue_seconds = started - enqueued
        result.elapsed_seconds = time.perf_counter() - started
        cacheable = (
            base_key is not None
            and not result.fault_recovered
            and not result.degraded
            # An abandoned request's answer may predate updates its waiter
            # never saw ordered; a timed-out future must leave no trace.
            and not deadline.cancelled
        )
        if cacheable:
            # Keyed on the version _execute read under the table lock —
            # never on a pre-execution sample that a racing update could
            # have invalidated before the query ever touched a structure.
            with self._cache_mutex:
                self._cache.put((*base_key, result.data_version), result)
                racesan.note_access("executor.cache", "write")
        self._note(result)
        return result

    def _note(self, result: ServedResult) -> None:
        with self._stats_mutex:
            self.queries_served += 1
            if result.cached:
                self.cache_hits += 1
            if result.degraded:
                self.degraded_served += 1
            self.path_counts[result.path] = self.path_counts.get(result.path, 0) + 1
            self.latencies.append(result.elapsed_seconds)

    # -- execution paths -------------------------------------------------------

    def _execute(
        self, query: Query, deadline: "Deadline | float | None" = None
    ) -> ServedResult:
        """Run one query, reading ``data_version`` only *inside* the table
        lock that serializes it against updates — the version a result
        carries (and is cached under) is exactly the version it saw.
        ``deadline`` (a :class:`~repro.server.resilience.Deadline`, or
        legacy float seconds) bounds process-backed shard dispatches — a
        worker that misses it surfaces as
        :class:`~repro.errors.QueryTimeout` — and trims the progressive
        crack budget of an engine-path query running low on time."""
        deadline = Deadline.coerce(deadline)
        table_lock = self.registry.lock_for(query.table)
        with table_lock.read():
            version = self._capture_version(query.table)
            scatter = self._try_partition_keys(query, deadline)
            if scatter is not None:
                partition_keys, path, recovered, degraded = scatter
                return self._finish_from_keys(
                    query, partition_keys, path, version,
                    fault_recovered=recovered, degraded=degraded,
                )
            if not query.group_by:
                keys = self._try_read_only_keys(query)
                if keys is not None:
                    return self._finish_from_keys(query, keys, "read", version)
        if deadline.cancelled:
            # Boundary check before the exclusive section: an abandoned
            # request must not take the table's write lock just to compute
            # an answer nobody will read.
            raise QueryTimeout(
                f"query on {query.table!r} cancelled before the engine path",
                seconds=deadline.budget,
            )
        with table_lock.write():
            version = self._capture_version(query.table)
            trimmed = self._trim_budget(query.table, deadline)
            try:
                # The engine call is sanctioned here: cracking *is* the
                # write this exclusive section exists for, and the crack
                # budget caps the hold time.  Everywhere else the rule
                # stands.
                raw = self.engine.run(query)  # locksan: allow(blocking-under-write-lock)
            finally:
                for cracker, budget in trimmed:
                    cracker.set_budget(budget)
            self._note_engine_writes(query.table)
            self._bind_table_structures(query.table, table_lock)
        return self._finish_from_result(query, raw, "engine", version)

    def _trim_budget(self, table: str, deadline: Deadline) -> list[tuple]:
        """Deadline pressure shrinks the progressive crack budget.

        A query that has burned more than ``BUDGET_TRIM_FRACTION`` of its
        budget takes a small per-query allowance on this table's cracker
        columns for the duration of its engine call — it answers via
        hole-carrying resolve now and leaves the remaining partitioning
        work to later, less-pressed queries.  Only *unbudgeted* crackers
        are trimmed (an explicit ``--crack-budget`` is already a cap, and
        raising it here would be wrong).  Returns ``(cracker, previous)``
        pairs for the caller's finally-restore.  Caller holds the table's
        write lock.
        """
        consumed = deadline.consumed_fraction()
        if consumed is None or consumed < BUDGET_TRIM_FRACTION:
            return []
        trim = ProgressiveBudget(elements=BUDGET_TRIM_ELEMENTS)
        trimmed = []
        for (tbl, _attr), cracker in list(self.db._crackers.items()):
            if tbl == table and cracker.budget is None:
                cracker.set_budget(trim)
                trimmed.append((cracker, None))
        if trimmed:
            with self._stats_mutex:
                self.budget_trims += 1
        return trimmed

    def _capture_version(self, table: str) -> int:
        """Read ``data_version`` and tell RaceSan which table's lock guards
        the read.  Every caller sits inside ``table``'s lock; the lockset of
        this access going empty is exactly the PR 6 race class."""
        version = self.db.data_version
        racesan.note_access(
            f"{table}.data_version", "read", seed=self.db.crack_seed
        )
        return version

    def _note_engine_writes(self, table: str) -> None:
        """Mark the engine path's structure mutations for RaceSan (caller
        holds the table's write lock)."""
        for (tbl, _attr), cracker in list(self.db._crackers.items()):
            if tbl == table:
                racesan.note_access(f"cracker[{cracker.label}].pieces", "write")
                racesan.note_access(f"cracker[{cracker.label}].tape", "write")

    def _try_partition_keys(
        self, query: Query, deadline: "Deadline | None" = None
    ) -> "tuple[np.ndarray, str, bool, bool] | None":
        """Scatter-gather path: single-predicate query on a partitioned attr.

        Returns ``(keys, path, fault_recovered, degraded)`` — path
        ``"partition"`` for in-process thread shards, ``"process"`` for
        the shared-memory worker-process backend — or ``None`` when the
        query is not scatter-shaped.  Caller holds the table's read lock,
        so the scatter cannot overlap an :meth:`insert`/:meth:`delete`
        routing pending rows (those hold the table's write lock); shard
        locks (and worker pipes) nest strictly inside.
        """
        if query.group_by or len(query.predicates) != 1:
            return None
        pred = query.predicates[0]
        with self._partition_mutex:
            column = self._partitioned.get((query.table, pred.attr))
        if column is None:
            return None
        if deadline is not None and deadline.cancelled:
            # Scatter boundary: a cancelled request stops here instead of
            # fanning work out to every shard.
            raise QueryTimeout(
                f"query on {query.table!r} cancelled before the scatter",
                seconds=deadline.budget,
            )
        if isinstance(column, ProcessShardPool):
            gathered = column.select(
                pred.interval, deadline=deadline, pool=self._shard_pool
            )
            return gathered.keys, "process", gathered.recovered, gathered.degraded
        shards = column.relevant_shards(pred.interval)
        if len(shards) > 1 and self._shard_pool is not None:
            # Scatter onto the shard pool (each task takes one shard lock)...
            futures = [
                self._shard_pool.submit(column.select_one, shard, pred.interval)
                for shard in shards[1:]
            ]
            parts = [column.select_one(shards[0], pred.interval)]
            parts += [f.result() for f in futures]
        else:
            parts = [column.select_one(shard, pred.interval) for shard in shards]
        pruned = len(column.shards) - len(shards)
        if pruned:
            self.db.recorder.event("index_lookups", pruned)
        if not parts:
            return np.empty(0, dtype=np.int64), "partition", False, False
        # ... and gather.
        keys = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return keys, "partition", False, False

    def _try_read_only_keys(self, query: Query) -> np.ndarray | None:
        """Answer the selection with zero reorganization, or give up.

        Conjunctive: probe any predicate's existing cracker column, refine
        the rest with base-column gathers (order does not matter for
        membership, and results are canonicalized).  Disjunctive: every
        predicate must be probeable.  Caller holds the table's read lock.
        """
        if not query.predicates:
            return np.flatnonzero(~self.db.tombstones(query.table)).astype(np.int64)
        crackers = self.db._crackers
        relation = self.db.table(query.table)
        if query.conjunctive:
            keys = None
            probed_attr = None
            for pred in query.predicates:
                cracker = crackers.get((query.table, pred.attr))
                if cracker is None:
                    continue
                keys = cracker.probe(pred.interval)
                racesan.note_access(f"cracker[{cracker.label}].pieces", "read")
                if keys is not None:
                    probed_attr = pred.attr
                    break
            if keys is None:
                return None
            for pred in query.predicates:
                if pred.attr == probed_attr:
                    continue
                values = random_gather(
                    relation.values(pred.attr), keys, self.db.recorder
                )
                keys = keys[pred.interval.mask(values)]
            return keys
        parts = []
        for pred in query.predicates:
            cracker = crackers.get((query.table, pred.attr))
            if cracker is None:
                return None
            keys = cracker.probe(pred.interval)
            racesan.note_access(f"cracker[{cracker.label}].pieces", "read")
            if keys is None:
                return None
            parts.append(keys)
        self.db.recorder.sequential(sum(len(p) for p in parts))
        return np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)

    def _finish_from_keys(
        self, query: Query, keys: np.ndarray, path: str, version: int,
        fault_recovered: bool = False, degraded: bool = False,
    ) -> ServedResult:
        """Reconstruct, canonicalize, and aggregate from qualifying keys."""
        relation = self.db.table(query.table)
        columns = {
            attr: random_gather(relation.values(attr), keys, self.db.recorder)
            for attr in query.needed_columns
        }
        columns = canonicalize(columns)
        from repro.analysis.sanitizer import checkpoint_query

        checkpoint_query()
        return ServedResult(
            columns=columns,
            aggregates=compute_aggregates(query.aggregates, columns),
            row_count=len(keys),
            path=path,
            data_version=version,
            fault_recovered=fault_recovered,
            degraded=degraded,
        )

    def _finish_from_result(
        self, query: Query, raw: QueryResult, path: str, version: int
    ) -> ServedResult:
        columns = canonicalize(raw.columns)
        if query.group_by:
            aggregates = dict(raw.aggregates)
        else:
            aggregates = compute_aggregates(query.aggregates, columns)
        return ServedResult(
            columns=columns,
            aggregates=aggregates,
            row_count=raw.row_count,
            path=path,
            data_version=version,
            fault_recovered=raw.fault_recovered,
        )

    def _bind_table_structures(self, table: str, lock) -> None:
        """Bind this table's (possibly new) structures to its lock.

        Everything mutated under the table's write lock — cracker columns,
        sideways map sets, partial sets, and their sanitizer-registered
        children — must carry the binding, or a concurrent deep sweep could
        validate a structure mid-crack instead of skipping it.
        """
        for obj in self._table_structures(table):
            if self.registry.lock_of(obj) is None:
                self.registry.bind(obj, lock)

    def _table_structures(self, table: str) -> list[object]:
        out: list[object] = []

        def add(obj: object) -> None:
            if obj is None:
                return
            out.append(obj)
            index = getattr(obj, "index", None)
            if index is not None:
                out.append(index)

        for (tbl, _attr), cracker in list(self.db._crackers.items()):
            if tbl == table:
                add(cracker)
        sideways = self.db._sideways.get(table)
        if sideways is not None:
            for mapset in list(sideways.sets.values()):
                add(mapset)
                for cmap in list(mapset.maps.values()):
                    add(cmap)
        partial = self.db._partial.get(table)
        if partial is not None:
            for pset in list(partial.sets.values()):
                add(pset)
                add(pset.chunkmap)
                for pmap in list(pset.maps.values()):
                    add(pmap)
                    for chunk in list(pmap.chunks.values()):
                        add(chunk)
        return out

    # -- updates ---------------------------------------------------------------

    def insert(self, table: str, rows: dict[str, object]) -> np.ndarray:
        """Route an insert through the database and the partitioned shards.

        The version bump (inside ``db.insert``) and the shard routing both
        happen under the table's write lock, so no query can observe the
        new version while a shard still lacks its pending rows: partition
        and read paths take the table's read lock first.
        """
        with self.registry.lock_for(table).write():
            keys = self.db.insert(table, rows)
            racesan.note_access(
                f"{table}.data_version", "write", seed=self.db.crack_seed
            )
            relation = self.db.table(table)
            for attr, column in self._partitioned_for(table):
                column.add_insertions(relation.values(attr)[keys], keys)
        return keys

    def delete(self, table: str, keys: np.ndarray) -> None:
        with self.registry.lock_for(table).write():
            keys = np.asarray(keys, dtype=np.int64)
            relation = self.db.table(table)
            partitioned = self._partitioned_for(table)
            values = {
                attr: relation.values(attr)[keys] for attr, _ in partitioned
            }
            self.db.delete(table, keys)
            racesan.note_access(
                f"{table}.data_version", "write", seed=self.db.crack_seed
            )
            for attr, column in partitioned:
                column.add_deletions(values[attr], keys)

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict[str, object]:
        """Readiness for load balancers and supervisors (the wire
        ``{"op": "health"}``): admission pressure, breaker states, and
        shard-worker liveness.  ``ready`` means the executor accepts new
        requests; ``degraded`` warns that some shard is currently served
        by its breaker's scan fallback (answers stay exact but slower).
        """
        with self._admission_mutex:
            draining = self._draining or self._closed
            queue_depth = len(self._queued)
            inflight = self._inflight
            shed = self.shed
        with self._stats_mutex:
            abandoned = self.abandoned
        breakers: dict[str, str] = {}
        workers_alive: dict[str, bool] = {}
        with self._partition_mutex:
            partitioned = dict(self._partitioned)
        for (table, attr), column in partitioned.items():
            if not isinstance(column, ProcessShardPool):
                continue
            for worker in column.workers:
                name = f"{table}.{attr}#{worker.index}"
                breakers[name] = worker.breaker.state
                workers_alive[name] = bool(
                    worker.process is not None and worker.process.is_alive()
                )
        degraded = any(state != "closed" for state in breakers.values()) \
            or not all(workers_alive.values())
        return {
            "ready": not draining,
            "draining": draining,
            "degraded": degraded,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "shed": shed,
            "abandoned": abandoned,
            "breakers": breakers,
            "workers_alive": workers_alive,
        }

    def stats(self) -> dict[str, object]:
        with self._stats_mutex:
            latencies = sorted(self.latencies)
            served = self.queries_served
            hits = self.cache_hits
            paths = dict(self.path_counts)
            abandoned = self.abandoned
            degraded = self.degraded_served
            budget_trims = self.budget_trims
        with self._admission_mutex:
            shed = self.shed
            queue_depth = len(self._queued)
            inflight = self._inflight

        def pct(p: float) -> float:
            if not latencies:
                return 0.0
            return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

        lock_stats = self.registry.stats()
        hold_stats = [
            {"label": c.label, **c._tracker.hold_stats()}
            for c in self.db._crackers.values()
        ]
        with self._partition_mutex:
            partitioned = dict(self._partitioned)
        with self._cache_mutex:
            cache_stats = self._cache.stats()
        return {
            "workers": self.workers,
            "processes": self.processes,
            "engine_mode": "process" if self.processes > 0 else "thread",
            "queries_served": served,
            "cache_hits": hits,
            "cache_hit_rate": (hits / served) if served else 0.0,
            "cache": cache_stats,
            "paths": paths,
            "shed": shed,
            "abandoned": abandoned,
            "degraded": degraded,
            "budget_trims": budget_trims,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "admission": {
                "max_queue": self.max_queue,
                "max_inflight": self.max_inflight,
                "shed_policy": self.shed_policy,
            },
            "latency_p50": pct(0.50),
            "latency_p99": pct(0.99),
            "locks": lock_stats,
            "budget_holds": hold_stats,
            "partitioned": {
                f"{t}.{a}": col.stats() for (t, a), col in partitioned.items()
            },
        }
