"""The concurrent query-serving subsystem.

Cracking is write-on-read: answering a selection may physically reorganize
the column it scans, so the classic engines assume one query at a time owns
every structure.  This package layers concurrent serving on top of them:

:mod:`repro.server.locks`
    Per-structure reader-writer coordination.  Read-only scans over
    already-cracked pieces share access; crackers take short exclusive
    sections whose hold time is capped by the progressive budgets of PR 5.
:mod:`repro.server.executor`
    The session/executor front: a thread pool serving SQL or programmatic
    queries with per-query deadlines, statistics, batched admission, and a
    version-keyed result cache; results are canonicalized so concurrent
    interleavings stay bit-identical to a serial run.
:mod:`repro.server.partition`
    Partition-parallel execution: range-partitioned shards of one column,
    each an independently-cracked :class:`~repro.cracking.column.CrackerColumn`
    over shared NumPy arrays, queried with pruning and a scatter-gather
    merge.
:mod:`repro.server.procpool`
    The process backend of the partition path: one long-lived worker
    process per shard over :class:`~repro.storage.shared.SharedBAT`
    segments, driven by a compact command protocol with per-request
    deadlines and deterministic respawn-and-replay on worker death —
    shard cracks on separate cores instead of one GIL.
:mod:`repro.server.serve`
    An asyncio TCP front end speaking newline-delimited JSON, plus an
    in-process handle used by tests and the ``repro serve`` CLI subcommand.
:mod:`repro.server.crashkit`
    The crash-consistency harness: a checkpointing worker loop designed to
    be SIGKILLed mid-workload and recovered from its last atomic snapshot.

``docs/serving.md`` describes the locking protocol, the partition layout,
and how the budget knob doubles as the lock-hold-time knob.
"""

# Re-exports are lazy (PEP 562): `repro.server.locks` is the repo's only
# lock-construction site (the LockSan discipline), so low-level modules —
# pending buffers, the database facade, the sanitizer — import it for
# `Mutex`.  Eagerly importing the executor here would drag the whole engine
# stack into those imports and close a cycle.
__all__ = [
    "LockRegistry",
    "Mutex",
    "PartitionedColumn",
    "ProcessShardPool",
    "ResultCacheLRU",
    "RWLock",
    "ServedQuery",
    "ServedResult",
    "ServerExecutor",
]

_HOMES = {
    "LockRegistry": "repro.server.locks",
    "Mutex": "repro.server.locks",
    "RWLock": "repro.server.locks",
    "PartitionedColumn": "repro.server.partition",
    "ProcessShardPool": "repro.server.procpool",
    "ResultCacheLRU": "repro.server.executor",
    "ServedQuery": "repro.server.executor",
    "ServedResult": "repro.server.executor",
    "ServerExecutor": "repro.server.executor",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)
