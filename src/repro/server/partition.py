"""Partition-parallel cracking: range-sharded columns with scatter-gather.

A :class:`PartitionedColumn` splits one attribute into ``k`` contiguous
value ranges.  Each shard is an ordinary
:class:`~repro.cracking.column.CrackerColumn` built over that range's rows
(values plus their *global* tuple keys, shared-memory NumPy slices of one
scatter pass), so every shard cracks independently under its own
:class:`~repro.server.locks.RWLock` — a hot column no longer serializes all
queries behind one structure-wide critical section.

Queries run as **prune → per-shard select → gather**:

* shards whose value range cannot intersect the interval are pruned without
  taking any lock (the partition bounds are immutable after construction);
* each surviving shard answers under its own lock — shared when its
  :meth:`~repro.cracking.column.CrackerColumn.probe` fast path applies,
  exclusive for the budget-bounded crack otherwise;
* the per-shard key arrays are concatenated (the scatter-gather merge).

Because the shards partition the *value* domain, a shard's result is exactly
the interval's restriction to that range, and the merged multiset of keys is
identical to an unpartitioned column's answer for every interleaving of
concurrent shard cracks — order differs, membership never does.  The
serving layer canonicalizes row order, so partitioned and serial executions
stay bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import racesan
from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.cracking.stochastic import policy_rng
from repro.errors import PlanError
from repro.server.locks import LockRegistry, RWLock
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.bat import BAT


def partition_layout(
    values: np.ndarray, partitions: int
) -> tuple[list[float], np.ndarray, list[tuple[int, int]]]:
    """The quantile scatter both shard backends share.

    Returns ``(edges, order, spans)``: shard value edges (first ``-inf``,
    last ``+inf``), one stable argsort grouping rows by shard while
    preserving tuple order inside each, and the ``[start, end)`` span of
    each shard inside ``order``.  Quantile bounds over the actual data are
    deterministic and balanced under value skew (equal-width bounds would
    not be); duplicate quantiles (low-cardinality data) collapse, so the
    effective shard count can be smaller than requested.
    """
    if partitions < 1:
        raise PlanError(f"partition count {partitions} must be >= 1")
    n = len(values)
    if partitions > 1 and n:
        qs = np.linspace(0, 1, partitions + 1)[1:-1]
        bounds = np.unique(np.quantile(values, qs))
    else:
        bounds = np.empty(0, dtype=np.float64)
    # One scatter pass: classify every row, then one stable argsort groups
    # rows by shard while preserving tuple order inside each.
    if len(bounds):
        part_of = np.searchsorted(bounds, values, side="right")
        order = np.argsort(part_of, kind="stable")
        offsets = np.searchsorted(part_of[order], np.arange(len(bounds) + 1))
    else:
        order = np.arange(n)
        offsets = np.array([0])
    edges = [-np.inf, *(float(b) for b in bounds), np.inf]
    ends = [*offsets[1:], n]
    spans = [(int(s), int(e)) for s, e in zip(offsets, ends)]
    return edges, order, spans


def route_masks(
    values: np.ndarray, edges: list[float]
) -> "list[np.ndarray]":
    """Per-shard boolean masks routing ``values`` by the shard value edges."""
    values = np.asarray(values)
    out = []
    for lo, hi in zip(edges, edges[1:]):
        mask = np.ones(len(values), dtype=bool)
        if lo != -np.inf:
            mask &= values >= lo
        if hi != np.inf:
            mask &= values < hi
        out.append(mask)
    return out


class _Shard:
    """One partition: its value range, cracker column, and lock."""

    __slots__ = ("lo", "hi", "cracker", "lock")

    def __init__(
        self, lo: float, hi: float, cracker: CrackerColumn, lock: RWLock
    ) -> None:
        self.lo = lo  # inclusive lower value bound (-inf for the first shard)
        self.hi = hi  # exclusive upper value bound (+inf for the last shard)
        self.cracker = cracker
        self.lock = lock


class PartitionedColumn:
    """Range-partitioned shards of one attribute, independently cracked.

    Parameters
    ----------
    base:
        The attribute's base :class:`~repro.storage.bat.BAT`.
    partitions:
        Shard count; bounds are value quantiles of the data, so shards are
        balanced even under skew.  Duplicate quantiles (low-cardinality
        data) collapse, so the effective count can be smaller.
    registry:
        The owning server's :class:`~repro.server.locks.LockRegistry`; each
        shard's lock is registered under ``(table, attr, i)`` and bound to
        the shard's cracker so sanitizer sweeps honor it.
    """

    def __init__(
        self,
        base: BAT,
        partitions: int,
        registry: LockRegistry,
        table: str,
        attr: str,
        recorder: StatsRecorder | None = None,
        budget: object = None,
        policy: object = None,
        crack_seed: int = 42,
    ) -> None:
        self.table = table
        self.attr = attr
        self._recorder = recorder or global_recorder()
        values = base.values
        n = len(values)
        edges, order, spans = partition_layout(values, partitions)
        self._recorder.sequential(2 * n)
        self._recorder.write(2 * n)
        self.shards: list[_Shard] = []
        for i, (start, end) in enumerate(spans):
            positions = order[start:end]
            shard_bat = base.gather(positions)  # values + global keys
            cracker = CrackerColumn(
                shard_bat,
                self._recorder,
                policy=policy,
                budget=budget,
                rng=policy_rng(crack_seed, "shard", table, attr, i),
                label=f"shard[{table}.{attr}#{i}]",
            )
            lock = registry.lock_for(table, attr, i)
            registry.bind(cracker, lock)
            self.shards.append(_Shard(edges[i], edges[i + 1], cracker, lock))

    def __len__(self) -> int:
        return sum(len(s.cracker) for s in self.shards)

    @property
    def partition_bounds(self) -> list[float]:
        """The shard edges (first ``-inf`` and last ``+inf`` included)."""
        return [self.shards[0].lo, *(s.hi for s in self.shards)]

    # -- querying ------------------------------------------------------------

    def _relevant(self, interval: Interval) -> list[_Shard]:
        """Shards whose value range can intersect ``interval`` (pruning)."""
        lo = interval.lower_bound()
        hi = interval.upper_bound()
        out = []
        for shard in self.shards:
            if lo is not None and shard.hi != np.inf and lo.value >= shard.hi:
                continue
            if hi is not None and shard.lo != -np.inf and hi.value < shard.lo:
                continue
            out.append(shard)
        return out

    def select(self, interval: Interval) -> np.ndarray:
        """Keys qualifying ``interval``, scatter-gathered across shards.

        Each relevant shard is answered under its own lock — probe first
        under a shared read, then the budget-bounded crack under exclusive
        write — one shard lock at a time.  The serving executor calls this
        while holding the table's *read* lock, which serializes the whole
        scatter-gather against updates (they take the table's write lock);
        the lock hierarchy is strictly table → shard, so no cycle can form.
        """
        relevant = self._relevant(interval)
        pruned = len(self.shards) - len(relevant)
        parts = [self.select_one(shard, interval) for shard in relevant]
        if pruned:
            self._recorder.event("index_lookups", pruned)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def relevant_shards(self, interval: Interval) -> list[_Shard]:
        """The scatter half of scatter-gather: the unpruned shards.

        The executor maps these onto its worker pool (each worker runs
        :meth:`select_one`) and gathers with ``np.concatenate``.
        """
        return self._relevant(interval)

    @staticmethod
    def select_one(shard: _Shard, interval: Interval) -> np.ndarray:
        """One shard's share of a scatter-gather select (pool worker body)."""
        label = shard.cracker.label
        with shard.lock.read():
            # Degenerate shards (quantile collapse on low-cardinality data)
            # answer without ever taking the write side.
            if not len(shard.cracker) and not shard.cracker.pending.has_pending():
                return np.empty(0, dtype=np.int64)
            keys = shard.cracker.probe(interval)
            racesan.note_access(f"{label}.pieces", "read")
        if keys is None:
            with shard.lock.write():
                keys = shard.cracker.select(interval)
                racesan.note_access(f"{label}.pieces", "write")
                racesan.note_access(f"{label}.tape", "write")
                racesan.note_access(f"{label}.pendings", "write")
        return keys

    # -- maintenance ----------------------------------------------------------

    def apply_pending_all(self) -> None:
        """Drain pending updates on every shard (under its write lock)."""
        for shard in self.shards:
            with shard.lock.write():
                shard.cracker.apply_pending()
                racesan.note_access(f"{shard.cracker.label}.pendings", "write")

    def add_insertions(self, values: np.ndarray, keys: np.ndarray) -> None:
        """Route new rows to their shards' pending buffers.

        Each shard's buffer is mutated under that shard's write lock, so
        routing never races a concurrent :meth:`select_one` probing or
        cracking the same shard.  Callers holding the table write lock are
        fine: the lock hierarchy is table → shard everywhere.
        """
        values = np.asarray(values)
        keys = np.asarray(keys, dtype=np.int64)
        masks = route_masks(values, self.partition_bounds)
        for shard, mask in zip(self.shards, masks):
            if mask.any():
                with shard.lock.write():
                    shard.cracker.add_insertions(values[mask], keys[mask])
                    racesan.note_access(
                        f"{shard.cracker.label}.pendings", "write"
                    )

    def add_deletions(self, values: np.ndarray, keys: np.ndarray) -> None:
        """Route deletions to the shards holding the victims (under each
        shard's write lock, like :meth:`add_insertions`)."""
        values = np.asarray(values)
        keys = np.asarray(keys, dtype=np.int64)
        masks = route_masks(values, self.partition_bounds)
        for shard, mask in zip(self.shards, masks):
            if mask.any():
                with shard.lock.write():
                    shard.cracker.add_deletions(values[mask], keys[mask])
                    racesan.note_access(
                        f"{shard.cracker.label}.pendings", "write"
                    )

    def stats(self) -> dict[str, object]:
        return {
            "table": self.table,
            "attr": self.attr,
            "partitions": len(self.shards),
            "rows": len(self),
            "shard_rows": [len(s.cracker) for s in self.shards],
            "locks": [s.lock.stats() for s in self.shards],
        }
