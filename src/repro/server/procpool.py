"""Process-parallel shard workers over shared memory.

The thread-mode scatter-gather of :mod:`repro.server.partition` keeps every
shard crack inside one GIL: shards interleave, they do not overlap.  This
module is the serving layer's *process* backend — real multi-core
scatter-gather:

* one **long-lived worker process per shard**.  At startup the worker maps
  its shard's value/key payload from :class:`~repro.storage.shared.SharedBAT`
  segments (zero-copy; no payload pickling) and builds an ordinary
  :class:`~repro.cracking.column.CrackerColumn` over it, seeded exactly like
  the thread-mode shard (``policy_rng(seed, "shard", table, attr, i)``) so
  the two backends crack identically;
* a compact **command protocol** over one duplex pipe per worker —
  ``probe`` / ``select`` / ``crack`` / ``update`` / ``replay`` /
  ``snapshot`` / ``shutdown``.  Commands and replies are small tuples;
  qualifying keys come back through a per-worker **shared result buffer**
  (the parent reads ``result[:n]``), so result payloads never cross the
  pipe either;
* **per-request deadlines**: the parent bounds every dispatch with
  ``conn.poll(deadline)``.  A worker that misses its deadline is killed and
  deterministically respawned; the caller sees the serving layer's ordinary
  :class:`~repro.errors.QueryTimeout` — one error contract across thread
  and process paths;
* **crash detection + respawn-and-replay**: every state-mutating command
  (a ``select`` that actually cracked, every ``update``) is appended to the
  parent-side *tape* of its shard after the worker acknowledged it.  When a
  worker dies mid-command — a real crash, a deadline kill, or the
  ``procpool.worker`` FaultSan failpoint — the parent spawns a fresh
  process over the same shared segments, replays the tape (deterministic:
  same seeded RNG, same command order), retries the in-flight command once,
  and marks the result ``fault_recovered``;
* **retry with backoff + per-shard circuit breakers**: when even the
  respawn-retried dispatch fails, :meth:`ProcessShardPool.select` retries
  the whole dispatch under the request's remaining
  :class:`~repro.server.resilience.Deadline` budget, pausing with seeded,
  tape-recorded decorrelated jitter.  Each shard worker carries a
  :class:`~repro.server.resilience.CircuitBreaker`; once it opens, the
  parent stops dispatching and serves the shard's range itself from the
  *pristine shared base segment* (``CrackerColumn`` copies its inputs, so
  the segment is never cracked in place) merged with a parent-side mirror
  of routed updates — an exact answer, marked ``degraded`` because it
  scanned instead of cracking.  A half-open probe after the cooldown
  recloses the breaker when the shard recovers.

Lock discipline: the parent serializes each worker's request/response pairs
under a per-worker leaf :class:`~repro.server.locks.Mutex`; the executor
holds the table's read lock around the whole scatter (exactly like thread
mode), so updates can never interleave with a scatter.  Workers themselves
are single-threaded and own their shard exclusively — the in-process lock
hierarchy does not extend into them (``docs/locksan.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cracking.bounds import Interval
from repro.cracking.column import CrackerColumn
from repro.cracking.stochastic import policy_rng, resolve_policy
from repro.errors import (
    InjectedFault,
    QueryTimeout,
    ReproError,
    ServerError,
)
from repro.faults.plan import fault_hook
from repro.server.locks import Mutex
from repro.server.partition import partition_layout, route_masks
from repro.server.resilience import (
    DISPATCH,
    PROBE,
    SHED,
    CircuitBreaker,
    Deadline,
    DecorrelatedJitter,
    ResilienceConfig,
)
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.bat import BAT
from repro.storage.shared import SharedArray, SharedBAT

#: Default per-command deadline (seconds) when the caller supplies none.
DEFAULT_DEADLINE = 30.0

#: Environment override for the multiprocessing start method.  ``fork`` is
#: the default where available (workers inherit the imported interpreter,
#: so spawning a shard worker is milliseconds, not a fresh numpy import);
#: ``spawn`` is the portable fallback.
START_METHOD_ENV = "REPRO_PROCPOOL_START"

#: Exceptions a worker reports as structured error replies.  Anything
#: outside this tuple crashes the worker — deliberately: an unexpected
#: failure mode *is* a worker death, and the parent's respawn-and-replay
#: path is the recovery story for it.
_WORKER_REPORTABLE = (
    ReproError,
    InjectedFault,
    MemoryError,
    ValueError,
    IndexError,
    KeyError,
    OSError,
)


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    preferred = os.environ.get(START_METHOD_ENV, "").strip()
    if not preferred:
        preferred = "fork" if "fork" in methods else "spawn"
    if preferred not in methods:
        raise ServerError(
            f"start method {preferred!r} unavailable; have {methods}"
        )
    return multiprocessing.get_context(preferred)


# ---------------------------------------------------------------------------
# The worker process body.
# ---------------------------------------------------------------------------


def _reset_inherited_state() -> None:
    """Detach a fresh worker from parent-process instrumentation.

    Fork-started workers inherit the parent's armed FaultSan plan, active
    CrackSan sanitizers, and RaceSan detectors.  All three must stay
    parent-side: fault hit counts are only deterministic when every visit
    happens in one process (the ``procpool.worker`` site fires in the
    parent *about* workers), and the sanitizer/detector registries refer to
    parent structures a worker never sees.
    """
    from repro.analysis.racesan import active_detectors
    from repro.analysis.sanitizer import active_sanitizers
    from repro.faults.plan import uninstall_plan

    uninstall_plan()
    for sanitizer in active_sanitizers():
        sanitizer.deactivate()
    for detector in active_detectors():
        detector.deactivate()


def _shard_worker_main(spec: dict, conn) -> None:
    """Long-lived worker loop: map the shard, serve commands until shutdown.

    Replies are ``("ok", rows, meta)`` — ``rows`` qualifying keys sit in
    ``result[:rows]`` when the command produces keys — or
    ``("err", kind, message)`` for reportable failures.  The loop exits on
    ``shutdown``, EOF (parent died), or an unreportable exception (which
    the parent observes as a crash).
    """
    _reset_inherited_state()
    base = SharedBAT.attach(spec["base"])
    result = SharedArray.attach(spec["result"])
    cracker = CrackerColumn(
        base.as_bat(),
        global_recorder(),
        policy=resolve_policy(spec["policy"]),
        budget=spec["budget"],
        rng=policy_rng(spec["seed"], "shard", spec["table"], spec["attr"],
                       spec["index"]),
        label=f"shard[{spec['table']}.{spec['attr']}#{spec['index']}]",
    )
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            op = command[0]
            if op == "shutdown":
                conn.send(("ok", 0, {}))
                break
            started = time.perf_counter()
            try:
                reply = _apply_command(cracker, command, result)
            except _WORKER_REPORTABLE as exc:
                conn.send(("err", type(exc).__name__, str(exc)))
                continue
            if reply[0] == "ok":
                reply[2]["seconds"] = time.perf_counter() - started
            conn.send(reply)
    finally:
        result.close()
        base.close()
        conn.close()


def _apply_command(
    cracker: CrackerColumn, command: tuple, result: SharedArray
) -> tuple:
    """Execute one protocol command against the worker's cracker column."""
    op = command[0]
    if op == "select":
        return _do_select(cracker, command[1], result, force_crack=False)
    if op == "crack":
        return _do_select(cracker, command[1], result, force_crack=True)
    if op == "probe":
        keys = cracker.probe(command[1])
        if keys is None:
            return ("ok", -1, {"path": "miss"})
        n = _write_result(keys, result)
        return ("ok", n, {"path": "probe"})
    if op == "update":
        _, ins_values, ins_keys, del_values, del_keys, remap = command
        if remap is not None:
            # The parent grew the result buffer for the incoming rows;
            # switch attachments before the shard can produce a larger
            # result.  (The old segment is unlinked parent-side.)
            result.close()
            grown = SharedArray.attach(remap)
            result.shm, result.view = grown.shm, grown.view
            result.shape, result.dtype = grown.shape, grown.dtype
            result.owner, result.closed = grown.owner, grown.closed
        if len(ins_values):
            cracker.add_insertions(ins_values, ins_keys)
        if len(del_values):
            cracker.add_deletions(del_values, del_keys)
        return ("ok", 0, {"rows": len(cracker)})
    if op == "apply_pending":
        cracker.apply_pending()
        return ("ok", 0, {"rows": len(cracker)})
    if op == "replay":
        for entry in command[1]:
            _apply_command(cracker, entry, result)
        return ("ok", 0, {"replayed": len(command[1])})
    if op == "snapshot":
        return ("ok", 0, _snapshot(cracker))
    raise ServerError(f"unknown shard-worker command {op!r}")


def _do_select(
    cracker: CrackerColumn,
    interval: Interval,
    result: SharedArray,
    force_crack: bool,
) -> tuple:
    """``select``: probe first, crack when the probe cannot answer."""
    path = "probe"
    keys = None if force_crack else cracker.probe(interval)
    if keys is None:
        # Degenerate shards (quantile collapse) answer empty without
        # cracking, mirroring the thread backend's fast path.
        if not len(cracker) and not cracker.pending.has_pending():
            keys = np.empty(0, dtype=np.int64)
            path = "empty"
        else:
            keys = cracker.select(interval)
            path = "crack"
    n = _write_result(keys, result)
    return ("ok", n, {"path": path})


def _write_result(keys: np.ndarray, result: SharedArray) -> int:
    n = len(keys)
    if n > len(result):
        raise ServerError(
            f"shard result ({n} keys) exceeds the shared result buffer "
            f"({len(result)}); the parent under-sized an update remap"
        )
    result.view[:n] = keys
    return n


def _snapshot(cracker: CrackerColumn) -> dict:
    """A deterministic state fingerprint for respawn/replay verification."""
    return {
        "rows": len(cracker),
        "pieces": cracker.index.piece_count,
        "head_crc": zlib.crc32(np.ascontiguousarray(cracker.head).tobytes()),
        "keys_crc": zlib.crc32(np.ascontiguousarray(cracker.keys).tobytes()),
        "pending_insertions": cracker.pending.insertion_count,
        "pending_deletions": cracker.pending.deletion_count,
        "stochastic_cuts": cracker.stochastic_cuts,
    }


# ---------------------------------------------------------------------------
# Parent-side handles.
# ---------------------------------------------------------------------------


@dataclass
class ShardReply:
    """One decoded worker reply: the keys (if any) plus timing/path meta.

    ``degraded`` marks a reply the parent synthesized from the scan
    fallback because the shard's circuit breaker was open (or its retries
    were exhausted) — exact keys, but served without cracking.
    """

    keys: np.ndarray | None
    meta: dict
    recovered: bool = False
    degraded: bool = False
    dispatch_seconds: float = 0.0


@dataclass(frozen=True)
class GatherResult:
    """What one scatter-gather :meth:`ProcessShardPool.select` produced.

    ``recovered`` — at least one shard died and was respawn-and-replayed;
    ``degraded`` — at least one shard's range was answered by the parent's
    scan fallback (breaker open / retries exhausted).  Either flag keeps
    the result out of the executor's cache; ``degraded`` additionally
    surfaces in the wire payload so clients know the answer skipped the
    cracking path.
    """

    keys: np.ndarray
    recovered: bool = False
    degraded: bool = False


class _ShardWorker:
    """Parent-side handle of one shard worker: process, pipe, tape, buffer."""

    def __init__(
        self,
        pool: "ProcessShardPool",
        index: int,
        lo: float,
        hi: float,
        base: SharedBAT,
    ) -> None:
        self.pool = pool
        self.index = index
        self.lo = lo  # inclusive lower value bound (-inf for the first shard)
        self.hi = hi  # exclusive upper value bound (+inf for the last shard)
        self.base = base
        self.rows = len(base)
        # Max rows any future select can return: initial rows plus every
        # routed insertion (deletions only shrink).  Governs result sizing.
        self.capacity = max(1, self.rows)
        self.result = SharedArray.zeros(self.capacity, np.int64)
        #: The shard's mutation tape: every acknowledged state-mutating
        #: command, in dispatch order.  Replaying it over a fresh worker
        #: reproduces the cracked state exactly (same seeded RNG).
        self.tape: list[tuple] = []
        self.mutex = Mutex(f"procworker[{pool.table}.{pool.attr}#{index}]")
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.respawns = 0
        self.commands = 0
        self.closed = False
        config = pool.resilience
        self.breaker = CircuitBreaker.from_config(
            f"{pool.table}.{pool.attr}#{index}", config
        )
        # Retry pauses come from a generator seeded exactly like the
        # shard's cracker RNG family, so a chaos run's backoff schedule
        # replays bit for bit under the same crack seed.
        self.backoff = DecorrelatedJitter(
            policy_rng(pool.crack_seed, "retry", pool.table, pool.attr, index),
            base=config.backoff_base,
            cap=config.backoff_cap,
        )
        self.retries = 0
        self.degraded_serves = 0
        # Parent-side mirror of routed updates.  The shared base segment is
        # never mutated (the worker's CrackerColumn copies it), so base +
        # mirrored insertions - mirrored deletions is an exact picture of
        # the shard — the data the scan fallback answers from when the
        # breaker routes around a sick worker.
        self.mirror_ins_values: list[np.ndarray] = []
        self.mirror_ins_keys: list[np.ndarray] = []
        self.mirror_del_keys: list[np.ndarray] = []
        self._spawn()

    # -- process lifecycle ---------------------------------------------------

    def _spec(self) -> dict:
        return {
            "base": self.base.meta(),
            "result": self.result.meta,
            "table": self.pool.table,
            "attr": self.pool.attr,
            "index": self.index,
            "seed": self.pool.crack_seed,
            "policy": self.pool.policy_name,
            "budget": self.pool.budget,
        }

    def _spawn(self) -> None:
        parent_conn, child_conn = self.pool.context.Pipe(duplex=True)
        process = self.pool.context.Process(
            target=_shard_worker_main,
            args=(self._spec(), child_conn),
            name=f"repro-shard-{self.pool.table}.{self.pool.attr}#{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def _kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.process is not None:
            self.process.join(timeout=5.0)
        if self.conn is not None:
            self.conn.close()
        self.conn = None

    def _respawn_and_replay(self) -> None:
        """Deterministic recovery: fresh process, same segments, same tape."""
        self._kill()
        self.respawns += 1
        self._spawn()
        if self.tape:
            reply = self._roundtrip(("replay", list(self.tape)), None)
            if reply[0] != "ok":
                raise ServerError(
                    f"shard {self.index} replay failed after respawn: "
                    f"{reply[1]}: {reply[2]}"
                )

    # -- dispatch ------------------------------------------------------------

    def _roundtrip(self, command: tuple, deadline: float | None) -> tuple:
        """One raw send/recv (caller holds ``self.mutex``).  Raises
        ``ConnectionError``-family on a dead worker, ``QueryTimeout`` on a
        missed deadline (after killing the straggler so its late reply can
        never corrupt the next request/response pairing).

        The deadline is a wall-clock budget measured from before the send:
        a reply that lands after the budget elapsed is still an expiry,
        even if it is sitting in the pipe by the time we look.  Anything
        weaker would make tiny deadlines depend on scheduler timing.
        """
        expires_at = (
            None if deadline is None else time.perf_counter() + deadline
        )
        self.conn.send(command)
        if command[0] != "replay":
            # The internal recovery replay is exempt: shots must count
            # client-visible dispatches only, or a multi-shot plan's hit
            # arithmetic would depend on tape length (and an injected
            # death mid-replay would escape the recovery path itself).
            try:
                fault_hook("procpool.worker")
            except InjectedFault as exc:
                # The armed worker-death failpoint: SIGKILL the worker
                # mid-command and surface the crash the way an organic
                # death would, so the ordinary respawn-and-replay path
                # recovers.
                self._kill()
                raise BrokenPipeError("injected shard-worker death") from exc
        if expires_at is not None:
            remaining = expires_at - time.perf_counter()
            if not self.conn.poll(max(0.0, remaining)) \
                    or time.perf_counter() > expires_at:
                self._respawn_and_replay()
                raise QueryTimeout(
                    f"shard worker {self.pool.table}.{self.pool.attr}#"
                    f"{self.index} missed its deadline",
                    seconds=deadline,
                )
        return self.conn.recv()

    def dispatch(self, command: tuple, deadline: float | None) -> ShardReply:
        """Send one command; handle crash recovery, deadlines, and the tape.

        Serialized per worker under ``self.mutex`` so concurrent queries
        can never interleave one worker's request/response pairs.
        """
        mutating = command[0] in ("update", "apply_pending")
        started = time.perf_counter()
        with self.mutex:
            if self.closed:
                raise ServerError("shard worker pool is closed")
            self.commands += 1
            recovered = False
            try:
                if self.conn is None:
                    # A prior dispatch killed the worker and gave up (the
                    # "died twice" path below): revive it before sending so
                    # a caller-level retry reaches a live worker.
                    self._respawn_and_replay()
                    recovered = True
                reply = self._roundtrip(command, deadline)
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                # Worker death (organic or injected): rebuild and retry the
                # in-flight command exactly once.
                self._respawn_and_replay()
                try:
                    reply = self._roundtrip(command, deadline)
                except (EOFError, BrokenPipeError, ConnectionResetError,
                        OSError) as exc:
                    # The respawned worker died on the same command: a
                    # deterministic crash, not a transient fault.
                    raise ServerError(
                        f"shard worker {self.index} died twice running "
                        f"{command[0]!r}; giving up after one respawn"
                    ) from exc
                recovered = True
            if reply[0] == "err":
                raise ServerError(
                    f"shard worker {self.index} failed {command[0]!r}: "
                    f"{reply[1]}: {reply[2]}"
                )
            _, rows, meta = reply
            if mutating or meta.get("path") == "crack":
                self.tape.append(command)
            keys = None
            if command[0] in ("select", "crack", "probe") and rows >= 0:
                keys = np.array(self.result.view[:rows])
            return ShardReply(
                keys=keys,
                meta=meta,
                recovered=recovered,
                dispatch_seconds=time.perf_counter() - started,
            )

    def grow_result(self, extra_rows: int) -> dict | None:
        """Reserve result capacity for routed insertions.

        Returns the remap descriptor to ship with the update command when
        the buffer had to grow (the old segment is unlinked once the worker
        acknowledges the update), else ``None``.  Caller holds the mutex
        via :meth:`dispatch`'s update path.
        """
        self.capacity += extra_rows
        if self.capacity <= len(self.result):
            return None
        grown = SharedArray.zeros(
            max(self.capacity, int(len(self.result) * 1.5) + 1), np.int64
        )
        self._stale_result = self.result
        self.result = grown
        return grown.meta

    def finish_grow(self) -> None:
        stale = getattr(self, "_stale_result", None)
        if stale is not None:
            stale.close()
            self._stale_result = None

    def close(self) -> None:
        with self.mutex:
            if self.closed:
                return
            self.closed = True
            try:
                if self.conn is not None and self.process is not None \
                        and self.process.is_alive():
                    self.conn.send(("shutdown",))
                    self.conn.poll(2.0)
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass
            self._kill()
            self.result.close()
            self.finish_grow()


class ProcessShardPool:
    """Range-partitioned shards, each owned by one worker process.

    The process backend of the executor's partition path: same quantile
    layout, same per-shard seeding, and the same prune → per-shard select →
    gather shape as :class:`~repro.server.partition.PartitionedColumn`, but
    every shard's probe/crack runs on its own core.  The executor calls
    :meth:`select` while holding the table's *read* lock and routes updates
    under the table's *write* lock — identical serialization to threads.
    """

    def __init__(
        self,
        base: BAT,
        partitions: int,
        table: str,
        attr: str,
        recorder: StatsRecorder | None = None,
        budget: object = None,
        policy: object = None,
        crack_seed: int = 42,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.table = table
        self.attr = attr
        self._recorder = recorder or global_recorder()
        self.crack_seed = crack_seed
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        # Workers rebuild policy/budget from specs: policy objects carry
        # per-structure state that must live worker-side, so only the name
        # crosses the process boundary.
        policy = resolve_policy(policy)
        self.policy_name = None if policy is None else policy.name
        self.budget = budget
        self.context = _mp_context()
        values = base.values
        n = len(values)
        edges, order, spans = partition_layout(values, partitions)
        self._recorder.sequential(2 * n)
        self._recorder.write(2 * n)
        self.edges = edges
        self.workers: list[_ShardWorker] = []
        self._closed = False
        self._stats_mutex = Mutex(f"procpool[{table}.{attr}].stats")
        self.dispatch_seconds = 0.0
        self.worker_seconds = 0.0
        self.gather_seconds = 0.0
        self.selects = 0
        self.probe_hits = 0
        self.recoveries = 0
        self.degraded = 0
        spawned = False
        try:
            for i, (start, end) in enumerate(spans):
                shard_bat = base.gather(order[start:end])
                shared = SharedBAT.from_bat(shard_bat)
                self.workers.append(
                    _ShardWorker(self, i, edges[i], edges[i + 1], shared)
                )
            spawned = True
        finally:
            # A mid-construction failure must not leak the segments (or
            # the worker processes) of the shards already built.
            if not spawned:
                self.close()

    def __len__(self) -> int:
        return sum(w.rows for w in self.workers)

    @property
    def partition_bounds(self) -> list[float]:
        return list(self.edges)

    # -- querying ------------------------------------------------------------

    def relevant_workers(self, interval: Interval) -> list[_ShardWorker]:
        """The scatter half: workers whose value range can intersect."""
        lo = interval.lower_bound()
        hi = interval.upper_bound()
        out = []
        for worker in self.workers:
            if lo is not None and worker.hi != np.inf and lo.value >= worker.hi:
                continue
            if hi is not None and worker.lo != -np.inf and hi.value < worker.lo:
                continue
            out.append(worker)
        return out

    def select(
        self,
        interval: Interval,
        deadline: "Deadline | float | None" = DEFAULT_DEADLINE,
        pool=None,
    ) -> GatherResult:
        """Scatter-gather one interval across the worker processes.

        ``pool`` (a thread pool) overlaps the dispatches so all workers
        compute concurrently — the dispatching threads merely block on pipe
        I/O with the GIL released.  ``deadline`` may be a
        :class:`~repro.server.resilience.Deadline` (the executor threads
        the per-request budget through) or legacy float seconds.
        """
        if self._closed:
            raise ServerError("shard worker pool is closed")
        deadline = Deadline.coerce(deadline)
        relevant = self.relevant_workers(interval)
        pruned = len(self.workers) - len(relevant)
        if pruned:
            self._recorder.event("index_lookups", pruned)
        if not relevant:
            return GatherResult(np.empty(0, dtype=np.int64))
        if pool is not None and len(relevant) > 1:
            futures = [
                pool.submit(self._worker_select, worker, interval, deadline)
                for worker in relevant[1:]
            ]
            replies = [self._worker_select(relevant[0], interval, deadline)]
            replies += [f.result() for f in futures]
        else:
            replies = [
                self._worker_select(worker, interval, deadline)
                for worker in relevant
            ]
        gather_started = time.perf_counter()
        parts = [r.keys for r in replies if r.keys is not None]
        keys = parts[0] if len(parts) == 1 else np.concatenate(parts)
        self._note_replies(replies, time.perf_counter() - gather_started)
        return GatherResult(
            keys,
            recovered=any(r.recovered for r in replies),
            degraded=any(r.degraded for r in replies),
        )

    def _worker_select(
        self, worker: _ShardWorker, interval: Interval, deadline: Deadline
    ) -> ShardReply:
        """One shard's select under the full resilience machinery.

        The inner ``dispatch`` already absorbs a *single* worker death via
        respawn-and-replay; this loop handles everything beyond that —
        a worker that died twice (``ServerError``), an injected fault from
        the retry/breaker failpoints — by retrying under the remaining
        deadline budget with decorrelated-jitter pauses, and by consulting
        the shard's circuit breaker before every dispatch.  When the
        breaker says shed (or retries are exhausted), the shard's range is
        answered by :meth:`_fallback_scan` and marked ``degraded``.
        """
        command = ("select", interval)
        config = self.resilience
        attempts = 0
        while True:
            if deadline.cancelled:
                raise QueryTimeout(
                    f"request cancelled before shard "
                    f"{self.table}.{self.attr}#{worker.index} dispatched"
                )
            gate = worker.breaker.admit()
            if gate == SHED:
                return self._fallback_scan(worker, interval)
            try:
                if attempts:
                    # Armed in chaos plans to fail the retry itself.
                    fault_hook("procpool.retry")
                if gate == PROBE:
                    # Armed in chaos plans to fail the half-open probe.
                    fault_hook("procpool.breaker")
                reply = worker.dispatch(command, deadline.remaining())
            except QueryTimeout:
                worker.breaker.record_failure()
                raise
            except (ServerError, InjectedFault, MemoryError, EOFError, OSError):
                worker.breaker.record_failure()
                attempts += 1
                if attempts > config.retry_attempts:
                    return self._fallback_scan(worker, interval)
                pause = worker.backoff.next_pause()
                remaining = deadline.remaining()
                if remaining is not None and pause >= remaining:
                    return self._fallback_scan(worker, interval)
                worker.retries += 1
                time.sleep(pause)
                continue
            worker.breaker.record_success()
            worker.backoff.reset()
            return reply

    def _fallback_scan(
        self, worker: _ShardWorker, interval: Interval
    ) -> ShardReply:
        """Answer one shard's range without its worker: scan the pristine
        shared base segment, merge the parent's update mirror.

        Exact — the worker's ``CrackerColumn`` copies the segment at
        startup and every routed update is mirrored parent-side — but
        *degraded*: it scanned O(shard) instead of cracking, and it must
        never be cached (a recovered worker would then serve stale hits).
        """
        started = time.perf_counter()
        with worker.mutex:
            bat = worker.base.as_bat()
            keys = bat.materialized_keys()[interval.mask(bat.values)]
            if worker.mirror_ins_values:
                ins_values = np.concatenate(worker.mirror_ins_values)
                ins_keys = np.concatenate(worker.mirror_ins_keys)
                keys = np.concatenate([keys, ins_keys[interval.mask(ins_values)]])
            if worker.mirror_del_keys:
                deleted = np.concatenate(worker.mirror_del_keys)
                keys = keys[~np.isin(keys, deleted)]
            worker.degraded_serves += 1
        return ShardReply(
            keys=keys,
            meta={"path": "fallback"},
            degraded=True,
            dispatch_seconds=time.perf_counter() - started,
        )

    def _note_replies(self, replies: list[ShardReply], gather: float) -> None:
        with self._stats_mutex:
            self.selects += 1
            self.gather_seconds += gather
            for r in replies:
                self.dispatch_seconds += r.dispatch_seconds
                self.worker_seconds += r.meta.get("seconds", 0.0)
                if r.meta.get("path") == "probe":
                    self.probe_hits += 1
                if r.recovered:
                    self.recoveries += 1
                if r.degraded:
                    self.degraded += 1

    # -- maintenance ----------------------------------------------------------

    def add_insertions(self, values: np.ndarray, keys: np.ndarray) -> None:
        """Route new rows to their shards (caller holds the table write lock)."""
        self._route_update(values, keys, insert=True)

    def add_deletions(self, values: np.ndarray, keys: np.ndarray) -> None:
        self._route_update(values, keys, insert=False)

    def _route_update(
        self, values: np.ndarray, keys: np.ndarray, insert: bool
    ) -> None:
        values = np.asarray(values)
        keys = np.asarray(keys, dtype=np.int64)
        empty_v = values[:0]
        empty_k = keys[:0]
        for worker, mask in zip(self.workers, route_masks(values, self.edges)):
            if not mask.any():
                continue
            shard_values, shard_keys = values[mask], keys[mask]
            remap = worker.grow_result(len(shard_values)) if insert else None
            if insert:
                command = ("update", shard_values, shard_keys,
                           empty_v, empty_k, remap)
            else:
                command = ("update", empty_v, empty_k,
                           shard_values, shard_keys, remap)
            worker.dispatch(command, DEFAULT_DEADLINE)
            worker.finish_grow()
            # Mirror the acknowledged update parent-side so the breaker's
            # scan fallback stays exact (base segment + mirror = shard).
            if insert:
                worker.mirror_ins_values.append(np.array(shard_values))
                worker.mirror_ins_keys.append(np.array(shard_keys))
            else:
                worker.mirror_del_keys.append(np.array(shard_keys))

    def apply_pending_all(self) -> None:
        for worker in self.workers:
            worker.dispatch(("apply_pending",), DEFAULT_DEADLINE)

    def snapshot(self) -> list[dict]:
        """Per-shard state fingerprints (tests compare across respawns)."""
        out = []
        for worker in self.workers:
            meta = dict(worker.dispatch(("snapshot",), DEFAULT_DEADLINE).meta)
            meta.pop("seconds", None)  # wall time is not part of the state
            out.append(meta)
        return out

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and unlink every shared segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.close()
        for worker in self.workers:
            worker.base.release()

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> dict[str, object]:
        with self._stats_mutex:
            timings = {
                "selects": self.selects,
                "probe_hits": self.probe_hits,
                "recoveries": self.recoveries,
                "degraded": self.degraded,
                "dispatch_seconds": self.dispatch_seconds,
                "worker_seconds": self.worker_seconds,
                "gather_seconds": self.gather_seconds,
            }
        return {
            "table": self.table,
            "attr": self.attr,
            "engine": "process",
            "partitions": len(self.workers),
            "rows": len(self),
            "shard_rows": [w.rows for w in self.workers],
            "respawns": [w.respawns for w in self.workers],
            "commands": [w.commands for w in self.workers],
            "tape_lengths": [len(w.tape) for w in self.workers],
            "retries": [w.retries for w in self.workers],
            "degraded_serves": [w.degraded_serves for w in self.workers],
            "breakers": {
                f"{self.table}.{self.attr}#{w.index}": w.breaker.stats()
                for w in self.workers
            },
            "jitter_tapes": [list(w.backoff.tape) for w in self.workers],
            **timings,
        }
