"""The network front: an asyncio TCP server speaking line-delimited JSON.

The wire protocol is one JSON object per line, both ways.  Requests:

``{"sql": "select ... from ... where ...", "timeout": 5.0}``
    Serve one query; ``timeout`` (seconds) is optional.
``{"op": "stats"}``
    The executor's serving statistics (latencies, cache hits, lock stats).
``{"op": "ping"}``
    Liveness probe.
``{"op": "health"}``
    Readiness probe: admission pressure, circuit-breaker states, and
    shard-worker liveness (see ``ServerExecutor.health``).

Overload surfaces as a typed error frame: a shed request answers
``{"ok": false, "kind": "ServerOverloaded", ...}`` so clients back off
instead of retrying hot; a query served around a sick shard carries
``"degraded": true`` in its result payload.

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
"...", "kind": "<exception class>"}``.  One connection may pipeline many
requests; responses come back in request order per connection, while
different connections are served concurrently by the executor's worker
pool (the asyncio loop never blocks on query work — futures from the
thread pool are awaited with :func:`asyncio.wrap_future`).

:class:`ServerHandle` is the in-process twin: the same request/response
dictionaries without sockets, used by tests and embedders.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.engine.database import Database
from repro.errors import QueryTimeout, ReproError, ServerError, ServerOverloaded
from repro.server.executor import ServedQuery, ServedResult, ServerExecutor

#: Refuse absurd frames instead of buffering them (a malformed client
#: could otherwise stream an unbounded "line").
MAX_FRAME_BYTES = 4 * 1024 * 1024


def _error_payload(exc: BaseException) -> dict[str, object]:
    return {"ok": False, "error": str(exc), "kind": type(exc).__name__}


class ServerHandle:
    """In-process serving endpoint: the protocol without the socket.

    Wraps a :class:`~repro.server.executor.ServerExecutor` and answers the
    same JSON-shaped request dictionaries the TCP front accepts.  Useful for
    tests and for embedding the serving layer without networking.
    """

    def __init__(
        self,
        db: Database,
        workers: int = 4,
        partitions: int = 0,
        engine=None,
        cache: bool = True,
        partition_attrs: "tuple[tuple[str, str], ...] | list" = (),
        processes: int = 0,
        cache_bytes: "int | None" = None,
        max_queue: "int | None" = None,
        max_inflight: "int | None" = None,
        shed_policy: str = "reject-newest",
        resilience=None,
    ) -> None:
        from repro.server.executor import DEFAULT_CACHE_BYTES

        self.executor = ServerExecutor(
            db, engine=engine, workers=workers, partitions=partitions,
            cache=cache, processes=processes,
            cache_bytes=DEFAULT_CACHE_BYTES if cache_bytes is None else cache_bytes,
            max_queue=max_queue, max_inflight=max_inflight,
            shed_policy=shed_policy, resilience=resilience,
        )
        for table, attr in partition_attrs:
            self.executor.partition(table, attr)

    def query(self, sql: str, timeout: float | None = None) -> ServedResult:
        return self.executor.run(sql, timeout=timeout)

    def request(self, message: dict[str, object]) -> dict[str, object]:
        """Answer one protocol request dictionary (never raises)."""
        try:
            op = message.get("op", "query")
            if op == "ping":
                return {"ok": True, "result": "pong"}
            if op == "stats":
                return {"ok": True, "result": self.executor.stats()}
            if op == "health":
                return {"ok": True, "result": self.executor.health()}
            if op == "query":
                sql = message.get("sql")
                if not isinstance(sql, str):
                    raise ServerError("a query request needs an 'sql' string")
                timeout = message.get("timeout")
                if timeout is not None and not isinstance(timeout, (int, float)):
                    raise ServerError("'timeout' must be a number of seconds")
                result = self.query(sql, timeout=timeout)
                return {"ok": True, "result": result.as_payload()}
            raise ServerError(f"unknown op {op!r}")
        except ReproError as exc:
            return _error_payload(exc)

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CrackServer:
    """The asyncio TCP server over one :class:`ServerHandle`."""

    def __init__(self, handle: ServerHandle, host: str = "127.0.0.1", port: int = 0):
        self.handle = handle
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self.connections = 0

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError, asyncio.LimitOverrunError) as exc:
                    # readline signals an over-limit line as ValueError (it
                    # swallows LimitOverrunError internally); catch both so
                    # an oversized frame gets an error response, not an
                    # unhandled-task crash.
                    response = _error_payload(
                        ServerError(f"frame too large or connection broken: {exc}")
                    )
                    writer.write(json.dumps(response).encode() + b"\n")
                    break
                if not line:
                    break
                text = line.decode(errors="replace").strip()
                if not text:
                    continue
                try:
                    message = json.loads(text)
                    if not isinstance(message, dict):
                        raise ServerError("each frame must be a JSON object")
                except json.JSONDecodeError as exc:
                    response = _error_payload(ServerError(f"malformed frame: {exc}"))
                except ServerError as exc:
                    response = _error_payload(exc)
                else:
                    response = await self._dispatch(message)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # The peer vanished or the server is stopping mid-close;
                # either way this connection is finished.
                pass

    async def _dispatch(self, message: dict[str, object]) -> dict[str, object]:
        """Answer one frame without ever blocking the event loop.

        Query work is submitted to the executor's worker pool and *awaited*
        (never nested: a pool worker waiting on another pool task would
        deadlock a saturated pool), so many connections share the workers.
        """
        executor = self.handle.executor
        try:
            op = message.get("op", "query")
            if op == "ping":
                return {"ok": True, "result": "pong"}
            if op == "stats":
                return {"ok": True, "result": executor.stats()}
            if op == "health":
                return {"ok": True, "result": executor.health()}
            if op != "query":
                raise ServerError(f"unknown op {op!r}")
            sql = message.get("sql")
            if not isinstance(sql, str):
                raise ServerError("a query request needs an 'sql' string")
            timeout = message.get("timeout")
            if timeout is not None and not isinstance(timeout, (int, float)):
                raise ServerError("'timeout' must be a number of seconds")
            deadline = timeout if timeout is not None else executor.default_timeout
            # The timeout rides inside the request too, so the executor's
            # admission deadline matches the wait below (one budget,
            # measured from one clock — not two racing timers).
            served = ServedQuery.from_sql(sql, executor.db, timeout=timeout)
            future = asyncio.wrap_future(executor.submit(served))
            try:
                result = await asyncio.wait_for(future, deadline)
            except asyncio.TimeoutError:
                raise QueryTimeout(
                    f"query on {served.query.table!r} missed its deadline",
                    seconds=deadline,
                ) from None
            except asyncio.CancelledError:
                # A later admission shed this queued request (its future
                # was cancelled under the admission mutex).  A cancellation
                # of *this coroutine* must keep propagating, though.
                if future.cancelled():
                    raise ServerOverloaded(
                        f"query on {served.query.table!r} was shed while "
                        "queued", policy=executor.shed_policy,
                    ) from None
                raise
            return {"ok": True, "result": result.as_payload()}
        except ReproError as exc:
            return _error_payload(exc)


async def client_request(
    host: str, port: int, message: dict[str, object]
) -> dict[str, object]:
    """One-shot protocol client (used by tests and simple tooling)."""
    reader, writer = await asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)
    try:
        writer.write(json.dumps(message).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ServerError("server closed the connection without a response")
        return json.loads(line.decode())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def run_server(
    db: Database,
    host: str = "127.0.0.1",
    port: int = 7077,
    workers: int = 4,
    partitions: int = 0,
    partition_attrs: "tuple[tuple[str, str], ...] | list" = (),
    ready_callback=None,
    processes: int = 0,
    cache_bytes: "int | None" = None,
    max_queue: "int | None" = None,
    max_inflight: "int | None" = None,
    shed_policy: str = "reject-newest",
) -> None:
    """Blocking entry point for ``repro serve``: run until interrupted.

    SIGTERM and SIGINT both trigger a graceful shutdown: the listener
    closes, then ``ServerHandle.close()`` runs — which matters in process
    mode, where skipping it would strand shard worker processes and leak
    their ``/dev/shm`` segments (the kernel never reclaims those on
    process death; only an explicit unlink does).
    """

    async def _main() -> None:
        handle = ServerHandle(
            db, workers=workers, partitions=partitions,
            partition_attrs=partition_attrs,
            processes=processes, cache_bytes=cache_bytes,
            max_queue=max_queue, max_inflight=max_inflight,
            shed_policy=shed_policy,
        )
        server = CrackServer(handle, host, port)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        hooked = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stopping.set)
                hooked.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or platform without signal support
        # Handlers are armed before readiness is announced: a supervisor
        # that stops the service the instant it reports its port must
        # still get the graceful (segment-unlinking) shutdown.
        bound_host, bound_port = await server.start()
        if ready_callback is not None:
            ready_callback(bound_host, bound_port)
        forever = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait(
                {forever, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (forever, waiter):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError):
                    pass
            for sig in hooked:
                loop.remove_signal_handler(sig)
            await server.stop()
            handle.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
