"""The crash-consistency harness: a checkpointing worker built to be killed.

A serving deployment must survive losing its process at any instant.  This
module provides the workload half of that contract:

* :func:`run_worker` executes a deterministic, seeded workload — each step
  performs one batch of updates and one query over a shared database, then
  persists the whole database to an **atomic** snapshot (write to a
  temporary file in the same directory, ``fsync``, then ``os.replace``).
  The step counter travels *inside* the snapshot as the single-row
  ``__crash_progress__`` table, so snapshot payload and progress can never
  disagree — they are one ``os.replace``.
* ``python -m repro.server.crashkit <path> --steps N --seed S`` runs the
  worker standalone.  The crash test ``Popen``\\ s it, waits for a few
  checkpoint lines on stdout, delivers ``SIGKILL``, reloads the snapshot,
  and differentially replays the remaining steps in-process: the recovered
  run must end bit-identical to an uninterrupted serial run of the same
  seed.

The harness deliberately persists through the ordinary
:mod:`repro.storage.persist` checksummed format: a torn snapshot (the
``os.replace`` never happened) leaves the previous complete snapshot in
place, and a damaged one fails loudly with :class:`~repro.errors.PersistError`
instead of resurrecting silently corrupt data.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

import numpy as np

from repro.engine.database import Database
from repro.engine.query import Predicate, Query
from repro.cracking.bounds import Interval
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.storage.persist import load_database, save_database

PROGRESS_TABLE = "__crash_progress__"
TABLE = "R"
VALUE_DOMAIN = 100_000


def seed_database(rows: int, seed: int) -> Database:
    """The workload's deterministic starting state (plus step counter 0)."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table(TABLE, {
        "A": rng.integers(0, VALUE_DOMAIN, rows).astype(np.int64),
        "B": rng.integers(0, VALUE_DOMAIN, rows).astype(np.int64),
    })
    db.create_table(PROGRESS_TABLE, {"step": np.array([0], dtype=np.int64)})
    return db


def completed_steps(db: Database) -> int:
    """How many workload steps the snapshot has fully absorbed."""
    live = np.flatnonzero(~db.tombstones(PROGRESS_TABLE))
    return int(db.table(PROGRESS_TABLE).values("step")[live[-1]])


def _advance_progress(db: Database, step: int) -> None:
    # The progress table is single-row by construction: tombstone the old
    # row and append the new one (update = delete + insert, like the paper).
    live = np.flatnonzero(~db.tombstones(PROGRESS_TABLE)).astype(np.int64)
    db.delete(PROGRESS_TABLE, live)
    db.insert(PROGRESS_TABLE, {"step": np.array([step], dtype=np.int64)})


def apply_step(db: Database, engine: SelectionCrackingEngine, step: int, seed: int) -> int:
    """One deterministic workload step: insert, delete, query.

    The per-step RNG is a pure function of ``(seed, step)``, so a recovered
    run replays exactly the steps the crashed process had not yet absorbed.
    Returns the query's row count (a cheap progress signal for logs).
    """
    rng = np.random.default_rng((seed, step))
    ins = rng.integers(0, VALUE_DOMAIN, 8)
    keys = db.insert(TABLE, {
        "A": ins.astype(np.int64),
        "B": rng.integers(0, VALUE_DOMAIN, 8).astype(np.int64),
    })
    live = np.flatnonzero(~db.tombstones(TABLE))
    victims = rng.choice(live, size=min(4, len(live)), replace=False)
    db.delete(TABLE, np.asarray(victims, dtype=np.int64))
    lo = int(rng.integers(0, VALUE_DOMAIN - 10_000))
    query = Query(
        TABLE,
        (Predicate("A", Interval.open(lo, lo + 10_000)),),
        projections=("A", "B"),
        aggregates=(("sum", "B"), ("count", "A")),
    )
    result = engine.run(query)
    del keys
    return result.row_count


def checkpoint(db: Database, path: "str | pathlib.Path") -> None:
    """Atomically replace the snapshot at ``path`` with the current state.

    The temporary lives in the target's directory so ``os.replace`` is a
    same-filesystem rename — atomic on POSIX.  A crash before the replace
    leaves the previous snapshot untouched; a crash after it leaves the new
    one complete.  Either way there is always exactly one valid snapshot.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        save_database(db, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def run_worker(
    path: "str | pathlib.Path",
    steps: int,
    seed: int,
    rows: int = 20_000,
    checkpoint_every: int = 1,
    log=None,
) -> Database:
    """Run (or resume) the workload, checkpointing as it goes.

    Starting from an existing snapshot resumes after its recorded step —
    crash recovery is simply calling :func:`run_worker` again with the same
    arguments.  Returns the final database state.
    """
    path = pathlib.Path(path)
    if path.exists():
        db = load_database(path)
    else:
        db = seed_database(rows, seed)
        checkpoint(db, path)
    engine = SelectionCrackingEngine(db)
    start = completed_steps(db)
    for step in range(start + 1, steps + 1):
        rows_hit = apply_step(db, engine, step, seed)
        _advance_progress(db, step)
        if step % checkpoint_every == 0 or step == steps:
            checkpoint(db, path)
        if log is not None:
            log(f"step {step}/{steps} rows={rows_hit}")
    return db


def state_signature(db: Database) -> tuple:
    """A comparable fingerprint of the logical database state.

    Everything a client can observe: live keys and their values per table.
    Two runs with equal signatures are indistinguishable, however their
    crackers were organized (auxiliary structures are not logical state —
    after a crash they are rebuilt lazily from base columns).
    """
    out = []
    for relation in sorted(db.catalog, key=lambda r: r.name):
        live = np.flatnonzero(~db.tombstones(relation.name))
        for attr in sorted(relation.attributes):
            values = relation.values(attr)[live]
            out.append((relation.name, attr, live.tobytes(), values.tobytes()))
    return tuple(out)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-consistency workload worker (designed to be SIGKILLed)"
    )
    parser.add_argument("path", help="snapshot file to checkpoint into")
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--checkpoint-every", type=int, default=1)
    args = parser.parse_args(argv)

    def log(message: str) -> None:
        print(message, flush=True)

    run_worker(
        args.path, args.steps, args.seed, rows=args.rows,
        checkpoint_every=args.checkpoint_every, log=log,
    )
    print("done", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
