"""Overload-resilience primitives for the serving layer.

Three small, composable pieces used by :mod:`repro.server.executor` and
:mod:`repro.server.procpool`:

:class:`Deadline`
    A per-request wall-clock budget with a cooperative cancellation flag.
    Created once at admission, threaded through ``_serve`` / ``_execute`` /
    scatter-gather into procpool dispatch, so every layer measures the
    *same* budget from the *same* enqueue instant (no per-hop skew).  A
    client that gives up calls :meth:`Deadline.cancel`; workers check the
    flag at scatter/probe boundaries and stop early instead of burning
    shard workers on an answer nobody is waiting for.

:class:`DecorrelatedJitter`
    Retry backoff, AWS decorrelated-jitter style:
    ``pause_{k+1} = min(cap, U(base, 3 * pause_k))``.  The generator is a
    *seeded* ``numpy`` Generator (repo contract: no unseeded randomness)
    and every drawn pause is appended to a tape, so a chaos run's retry
    timing is reproducible and reportable bit for bit.

:class:`CircuitBreaker`
    A per-shard-worker breaker: *closed* (dispatch normally) → *open* on a
    failure-rate threshold over a sliding window (route around the sick
    shard) → *half-open* after a cooldown (exactly one probe dispatch; a
    success recloses, a failure reopens).  While a breaker is open the
    executor serves the shard's range via the parent-side scan fallback
    and marks the result ``degraded`` — honest, never cached.

All three are deliberately free of table/shard locks: the breaker guards
its window with a leaf :class:`~repro.server.locks.Mutex`, the deadline's
cancellation flag is a one-way boolean (atomic under the GIL; readers that
observe it a beat late merely cancel one check later).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ServerError
from repro.server.locks import Mutex

#: Breaker states (:attr:`CircuitBreaker.state`).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

#: What :meth:`CircuitBreaker.admit` tells a dispatcher to do.
DISPATCH, PROBE, SHED = "dispatch", "probe", "shed"


class Deadline:
    """A wall-clock budget measured from one fixed enqueue instant.

    ``budget`` is seconds (``None`` = unbounded); ``started`` defaults to
    *now* but admission passes the enqueue timestamp so queue wait counts
    against the budget.  :meth:`cancel` flips the one-way cooperative
    cancellation flag.
    """

    __slots__ = ("budget", "started", "_cancelled")

    def __init__(self, budget: float | None, started: float | None = None) -> None:
        self.budget = None if budget is None else float(budget)
        self.started = time.perf_counter() if started is None else started
        self._cancelled = False

    @classmethod
    def coerce(cls, value: "Deadline | float | None") -> "Deadline":
        """Accept the legacy float-seconds deadline (or ``None``) anywhere a
        :class:`Deadline` is now threaded; floats start their budget now."""
        if isinstance(value, Deadline):
            return value
        return cls(value)

    def remaining(self) -> float | None:
        """Seconds of budget left (may be negative), or ``None`` if unbounded."""
        if self.budget is None:
            return None
        return self.budget - (time.perf_counter() - self.started)

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def cancel(self) -> None:
        """Cooperative cancellation: workers poll :attr:`cancelled` at
        scatter/probe boundaries and abandon the request early."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def consumed_fraction(self) -> float | None:
        """Fraction of the budget already spent, or ``None`` if unbounded."""
        if self.budget is None:
            return None
        if self.budget <= 0.0:
            return 1.0
        return (time.perf_counter() - self.started) / self.budget

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else f"remaining={self.remaining()}"
        return f"Deadline(budget={self.budget}, {state})"


class DecorrelatedJitter:
    """Seeded, tape-recorded decorrelated-jitter backoff.

    Each :meth:`next_pause` draws ``min(cap, U(base, 3 * previous))`` from
    the supplied seeded generator and appends it to :attr:`tape`; two
    backoffs built over identically-seeded generators replay the exact
    same pause sequence (the exp19 determinism contract).
    """

    __slots__ = ("base", "cap", "tape", "_rng", "_prev")

    def __init__(
        self, rng: np.random.Generator, base: float = 0.002, cap: float = 0.050
    ) -> None:
        if base <= 0.0 or cap < base:
            raise ServerError(
                f"backoff wants 0 < base <= cap, got base={base} cap={cap}"
            )
        self.base = base
        self.cap = cap
        self.tape: list[float] = []
        self._rng = rng
        self._prev = base

    def next_pause(self) -> float:
        high = max(self.base, self._prev * 3.0)
        pause = min(self.cap, float(self._rng.uniform(self.base, high)))
        self._prev = pause
        self.tape.append(pause)
        return pause

    def reset(self) -> None:
        """A success ends the incident: the next pause starts small again."""
        self._prev = self.base


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the procpool retry/breaker machinery (one bundle so the
    executor, CLI, and benchmarks pass a single object through)."""

    #: Re-dispatches after the first failed attempt (0 disables retries).
    retry_attempts: int = 2
    backoff_base: float = 0.002
    backoff_cap: float = 0.050
    #: Sliding failure window: breaker opens once ``min_calls`` outcomes
    #: are in the window and the failure fraction reaches ``threshold``.
    breaker_window: int = 8
    breaker_min_calls: int = 3
    breaker_threshold: float = 0.5
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_cooldown: float = 0.25


class CircuitBreaker:
    """closed → open (failure rate) → half-open (single probe) → closed.

    Callers ask :meth:`admit` before dispatching: ``"dispatch"`` means the
    breaker is closed, ``"probe"`` means this caller owns the one
    half-open probe, ``"shed"`` means route around the shard (serve its
    range degraded).  Every dispatch outcome is reported back through
    :meth:`record_success` / :meth:`record_failure`.  ``clock`` is
    injectable so tests drive the cooldown without sleeping.
    """

    def __init__(
        self,
        name: str,
        window: int = 8,
        min_calls: int = 3,
        threshold: float = 0.5,
        cooldown: float = 0.25,
        clock=time.perf_counter,
    ) -> None:
        if window < 1 or min_calls < 1:
            raise ServerError(
                f"breaker wants window >= 1 and min_calls >= 1, got "
                f"window={window} min_calls={min_calls}"
            )
        if not 0.0 < threshold <= 1.0:
            raise ServerError(f"breaker threshold {threshold} must be in (0, 1]")
        self.name = name
        self.min_calls = min_calls
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._mutex = Mutex(f"breaker[{name}]")
        self._window: deque[bool] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0
        self.probes = 0
        self.failures = 0
        self.successes = 0

    @classmethod
    def from_config(cls, name: str, config: ResilienceConfig,
                    clock=time.perf_counter) -> "CircuitBreaker":
        return cls(
            name,
            window=config.breaker_window,
            min_calls=config.breaker_min_calls,
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            clock=clock,
        )

    @property
    def state(self) -> str:
        with self._mutex:
            return self._state

    def admit(self) -> str:
        """What should a dispatcher do right now? (see class docstring)"""
        with self._mutex:
            if self._state == CLOSED:
                return DISPATCH
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = HALF_OPEN
                    self._probing = True
                    self.probes += 1
                    return PROBE
                return SHED
            # half-open: exactly one probe is in flight; everyone else
            # keeps routing around until it reports back.
            return SHED

    def record_success(self) -> None:
        with self._mutex:
            self.successes += 1
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probing = False
                self._window.clear()
                return
            self._window.append(True)

    def record_failure(self) -> None:
        with self._mutex:
            self.failures += 1
            if self._state == HALF_OPEN:
                # The probe found the shard still sick: reopen, restart
                # the cooldown from this failure.
                self._state = OPEN
                self._probing = False
                self._opened_at = self._clock()
                return
            self._window.append(False)
            if self._state == CLOSED and len(self._window) >= self.min_calls:
                failed = sum(1 for ok in self._window if not ok)
                if failed / len(self._window) >= self.threshold:
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self.opens += 1

    def stats(self) -> dict[str, object]:
        with self._mutex:
            return {
                "state": self._state,
                "opens": self.opens,
                "probes": self.probes,
                "failures": self.failures,
                "successes": self.successes,
                "window": list(self._window),
            }
