"""Exception hierarchy for the repro column-store.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A relation or attribute was not found, or a name clashed."""


class SchemaError(ReproError):
    """Column shapes, dtypes, or schema definitions are inconsistent."""


class PredicateError(ReproError):
    """A selection predicate is malformed (e.g. empty or inverted range)."""


class CrackError(ReproError):
    """A cracking operation violated a structural invariant."""


class AlignmentError(CrackError):
    """A cracker map's tape cursor or replay state is inconsistent."""


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to reproduce and debug it.

    ``structure`` identifies the live structure (``M_A,B``, ``S_A``,
    ``H_A``, ``cracker_column[R.A]``, ...), ``invariant`` names the catalog
    entry that failed (see :mod:`repro.analysis.invariants`), ``context``
    carries piece/area positions and bounds, and ``seed`` is the crack seed
    of the owning database when known, so a violating run can be replayed.
    """

    structure: str
    invariant: str
    detail: str
    context: tuple = field(default_factory=tuple)
    seed: int | None = None

    def describe(self) -> str:
        parts = [f"[{self.structure}] {self.invariant}: {self.detail}"]
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context)
            parts.append(f"({ctx})")
        if self.seed is not None:
            parts.append(f"(crack_seed={self.seed})")
        return " ".join(parts)


class InvariantError(CrackError):
    """A catalogued physical invariant does not hold.

    Raised by the unified ``check_invariants`` methods and by the CrackSan
    sanitizer in strict mode; carries the structured
    :class:`InvariantViolation` records instead of a bare assertion message.
    """

    def __init__(self, message: str, violations: Iterable[InvariantViolation] = ()) -> None:
        super().__init__(message)
        self.violations: tuple[InvariantViolation, ...] = tuple(violations)

    @classmethod
    def from_violations(cls, violations: Iterable[InvariantViolation]) -> "InvariantError":
        violations = tuple(violations)
        lines = [v.describe() for v in violations]
        count = len(violations)
        header = f"{count} invariant violation{'s' if count != 1 else ''}"
        return cls("\n".join([header] + lines), violations)


class StorageBudgetError(ReproError):
    """The storage manager cannot satisfy an allocation within its budget."""


class UpdateError(ReproError):
    """A pending-update merge failed or saw inconsistent keys."""


class PlanError(ReproError):
    """The planner could not build an execution plan for a query."""
