"""Exception hierarchy for the repro column-store.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A relation or attribute was not found, or a name clashed."""


class SchemaError(ReproError):
    """Column shapes, dtypes, or schema definitions are inconsistent."""


class PredicateError(ReproError):
    """A selection predicate is malformed (e.g. empty or inverted range)."""


class CrackError(ReproError):
    """A cracking operation violated a structural invariant."""


class AlignmentError(CrackError):
    """A cracker map's tape cursor or replay state is inconsistent."""


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to reproduce and debug it.

    ``structure`` identifies the live structure (``M_A,B``, ``S_A``,
    ``H_A``, ``cracker_column[R.A]``, ...), ``invariant`` names the catalog
    entry that failed (see :mod:`repro.analysis.invariants`), ``context``
    carries piece/area positions and bounds, and ``seed`` is the crack seed
    of the owning database when known, so a violating run can be replayed.
    """

    structure: str
    invariant: str
    detail: str
    context: tuple = field(default_factory=tuple)
    seed: int | None = None

    def describe(self) -> str:
        parts = [f"[{self.structure}] {self.invariant}: {self.detail}"]
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context)
            parts.append(f"({ctx})")
        if self.seed is not None:
            parts.append(f"(crack_seed={self.seed})")
        return " ".join(parts)


class InvariantError(CrackError):
    """A catalogued physical invariant does not hold.

    Raised by the unified ``check_invariants`` methods and by the CrackSan
    sanitizer in strict mode; carries the structured
    :class:`InvariantViolation` records instead of a bare assertion message.
    """

    def __init__(self, message: str, violations: Iterable[InvariantViolation] = ()) -> None:
        super().__init__(message)
        self.violations: tuple[InvariantViolation, ...] = tuple(violations)

    @classmethod
    def from_violations(cls, violations: Iterable[InvariantViolation]) -> "InvariantError":
        violations = tuple(violations)
        lines = [v.describe() for v in violations]
        count = len(violations)
        header = f"{count} invariant violation{'s' if count != 1 else ''}"
        return cls("\n".join([header] + lines), violations)


@dataclass(frozen=True)
class RaceViolation:
    """One concurrency-discipline violation found by RaceSan.

    The dynamic twin of :class:`InvariantViolation`, sharing its shape:
    ``kind`` is the catalog entry (``data-race`` or ``lock-order-cycle``),
    ``subject`` identifies the racing variable (``"R.data_version"``,
    ``"shard[R.A#2].pieces"``) or the lock cycle, ``detail`` is the
    human-readable story, ``context`` carries threads/locksets, ``stacks``
    the captured acquisition/access stacks, and ``seed`` the owning
    database's crack seed so a stochastic schedule can be replayed.
    """

    kind: str
    subject: str
    detail: str
    context: tuple = field(default_factory=tuple)
    stacks: tuple = field(default_factory=tuple)
    seed: int | None = None

    def describe(self) -> str:
        parts = [f"[{self.subject}] {self.kind}: {self.detail}"]
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context)
            parts.append(f"({ctx})")
        if self.seed is not None:
            parts.append(f"(crack_seed={self.seed})")
        return " ".join(parts)

    def describe_full(self) -> str:
        lines = [self.describe()]
        for title, stack in self.stacks:
            lines.append(f"  -- {title} --")
            lines.extend(f"    {frame}" for frame in stack)
        return "\n".join(lines)


class RaceError(ReproError):
    """RaceSan found a data race or a potential deadlock (strict mode).

    Carries the structured :class:`RaceViolation` records, mirroring
    :class:`InvariantError` for CrackSan.
    """

    def __init__(self, message: str, violations: Iterable[RaceViolation] = ()) -> None:
        super().__init__(message)
        self.violations: tuple[RaceViolation, ...] = tuple(violations)

    @classmethod
    def from_violations(cls, violations: Iterable[RaceViolation]) -> "RaceError":
        violations = tuple(violations)
        count = len(violations)
        header = f"{count} concurrency violation{'s' if count != 1 else ''}"
        lines = [v.describe_full() for v in violations]
        return cls("\n".join([header] + lines), violations)


class StorageBudgetError(ReproError):
    """The storage manager cannot satisfy an allocation within its budget."""


class PersistError(ReproError):
    """A persisted database image is truncated, corrupted, or unreadable.

    Carries the offending ``path`` and, when known, the archive ``member``
    and byte ``offset`` where the damage was detected, so a corrupt snapshot
    can be diagnosed without re-running the load under a debugger.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        member: str | None = None,
        offset: int | None = None,
    ) -> None:
        parts = [message]
        if path is not None:
            parts.append(f"path={path}")
        if member is not None:
            parts.append(f"member={member}")
        if offset is not None:
            parts.append(f"offset={offset}")
        super().__init__(" ".join(parts))
        self.path = path
        self.member = member
        self.offset = offset


class FaultError(ReproError):
    """A fault (injected or real) could not be recovered transparently.

    Raised by the engine layer when rollback, quarantine-rebuild, *and* the
    scan fallback all failed to produce a correct answer.  The original
    failure is chained as ``__cause__``; ``site`` names the failpoint when
    the fault was injected by :mod:`repro.faults`.
    """

    def __init__(self, message: str, *, site: str | None = None) -> None:
        if site is not None:
            message = f"{message} (site={site})"
        super().__init__(message)
        self.site = site


class InjectedFault(Exception):
    """A deterministic fault raised by an armed :class:`repro.faults.FaultPlan`.

    Deliberately *not* a :class:`ReproError`: library code that catches
    ``ReproError`` (or any typed subset) can never swallow an injected fault
    by accident — only the recovery guard and the engine fallback handle it.
    """

    def __init__(self, site: str, hit: int, kind: str = "error") -> None:
        super().__init__(f"injected fault at {site} (hit #{hit}, kind={kind})")
        self.site = site
        self.hit = hit
        self.kind = kind


class ArenaPressure(MemoryError):
    """Simulated (or real) allocation failure inside a :class:`KernelArena`.

    Subclasses :class:`MemoryError` so generic out-of-memory handling
    applies; the fused-kernel dispatchers catch it *before any array is
    mutated* and transparently retry on the allocation-free ``reference``
    backend.
    """

    def __init__(self, site: str = "arena.alloc", detail: str = "") -> None:
        super().__init__(f"arena allocation failure at {site}" + (f": {detail}" if detail else ""))
        self.site = site


class UpdateError(ReproError):
    """A pending-update merge failed or saw inconsistent keys."""


class PlanError(ReproError):
    """The planner could not build an execution plan for a query."""


class ServerError(ReproError):
    """The concurrent serving layer hit a coordination failure.

    Raised for protocol violations (malformed client frames), lock
    acquisitions that exceed their deadline, and submissions to a stopped
    executor.
    """


class ServerOverloaded(ServerError):
    """The executor shed this request under admission control.

    Raised when the bounded admission queue is full (``max_queue`` /
    ``max_inflight``) and the configured shed policy decided this request
    is the one to drop — at submission for ``reject-newest``, or while
    waiting for a future that a later admission cancelled
    (``reject-oldest`` / ``deadline-aware``).  A typed wire error: clients
    see ``kind: "ServerOverloaded"`` and should back off, not retry hot.
    """

    def __init__(self, message: str, *, policy: str | None = None) -> None:
        if policy is not None:
            message = f"{message} (policy={policy})"
        super().__init__(message)
        self.policy = policy


class QueryTimeout(ServerError):
    """A served query did not finish within its deadline.

    The timeout bounds the *client's* wait, not the work (there is no safe
    way to preempt a cracker mid-partition, and rollback is FaultSan's
    job) — but an abandoned request is marked *cancelled*: the worker
    checks the flag at scatter/probe boundaries and stops early instead of
    burning shard workers, and a result computed anyway is never admitted
    to the result cache.
    """

    def __init__(self, message: str, *, seconds: float | None = None) -> None:
        if seconds is not None:
            message = f"{message} (timeout={seconds:g}s)"
        super().__init__(message)
        self.seconds = seconds
