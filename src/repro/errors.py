"""Exception hierarchy for the repro column-store.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A relation or attribute was not found, or a name clashed."""


class SchemaError(ReproError):
    """Column shapes, dtypes, or schema definitions are inconsistent."""


class PredicateError(ReproError):
    """A selection predicate is malformed (e.g. empty or inverted range)."""


class CrackError(ReproError):
    """A cracking operation violated a structural invariant."""


class AlignmentError(CrackError):
    """A cracker map's tape cursor or replay state is inconsistent."""


class StorageBudgetError(ReproError):
    """The storage manager cannot satisfy an allocation within its budget."""


class UpdateError(ReproError):
    """A pending-update merge failed or saw inconsistent keys."""


class PlanError(ReproError):
    """The planner could not build an execution plan for a query."""
