"""Cracker tapes.

A tape logs, in order of occurrence, every physical-reorganization event on a
map set (or, for partial maps, on one fetched chunk-map area):

* :class:`CrackEntry` — a range predicate that cracked some map;
* :class:`InsertEntry` — a batch of pending insertions merged into some map;
* :class:`DeleteEntry` — a batch of pending deletions applied to some map;
* :class:`SortEntry` — a piece was stable-sorted (head-drop preparation).

Every map carries a *cursor*: the number of tape entries it has applied.
Aligning a map means replaying entries from its cursor to the tape's end.
Because every event is implemented by a deterministic kernel, two maps that
replayed the same prefix from the same start snapshot are physically aligned.

``DeleteEntry`` caches the victim *positions* once the first map (always via
the set's ``M_Akey``) locates them: any map aligned to just-before the entry
has the identical permutation, so the positions are valid for all replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cracking.bounds import Bound, Interval
from repro.faults.plan import fault_hook


@dataclass
class CrackEntry:
    """A selection predicate that triggered cracking."""

    interval: Interval


@dataclass
class InsertEntry:
    """Insertions merged on demand: head values plus tuple keys.

    Tail values are *not* stored — each map fetches its own tail attribute
    from the base column via the keys when it replays the entry.
    """

    values: np.ndarray
    keys: np.ndarray


@dataclass
class DeleteEntry:
    """Deletions applied on demand: old head values plus victim keys.

    ``positions`` is filled in by the first applier (via ``M_Akey``) and
    reused verbatim by every later replay.
    """

    values: np.ndarray
    keys: np.ndarray
    positions: np.ndarray | None = None


@dataclass
class SortEntry:
    """A piece, identified by its bounding cracks, was stable-sorted."""

    lo_bound: Bound | None
    hi_bound: Bound | None


@dataclass
class ProgressiveCrackEntry:
    """One budgeted partition step toward making ``bound`` a boundary.

    ``step`` is the window size the step classified; ``None`` marks a
    force-finish (run the pending crack to completion), appended before any
    insert/delete/sort entry so replays never interleave a half-applied cut
    with a structural change.  Replay is deterministic: the pending state is
    reconstructed from the enclosing piece on first sight and every map
    applies the identical step sequence (see
    :func:`repro.cracking.progressive.replay_progressive`).
    """

    bound: Bound
    step: int | None


TapeEntry = CrackEntry | InsertEntry | DeleteEntry | SortEntry | ProgressiveCrackEntry


@dataclass
class CrackerTape:
    """An append-only log of reorganization events.

    ``min_safe_cursor`` is the earliest cursor a *partially aligned* map may
    stop at: one past the last insert/delete entry.  Crack and sort entries
    only permute tuples, so maps that are mutually aligned to a common cursor
    past all updates agree on membership; skipping an update entry would make
    a map miss (or retain) tuples.
    """

    entries: list[TapeEntry] = field(default_factory=list)
    min_safe_cursor: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, entry: TapeEntry) -> int:
        """Append ``entry``; returns its index."""
        fault_hook("tape.append")
        self.entries.append(entry)
        if isinstance(entry, (InsertEntry, DeleteEntry)):
            self.min_safe_cursor = len(self.entries)
        return len(self.entries) - 1

    def truncate(self, length: int) -> None:
        """Drop entries past ``length`` (journal rollback only).

        The tape is append-only from the structures' point of view; the fault
        journal truncates it back to a snapshot boundary when an operation
        rolls back, recomputing ``min_safe_cursor`` from the surviving
        entries.
        """
        if length >= len(self.entries):
            return
        del self.entries[length:]
        self.min_safe_cursor = 0
        for i in range(len(self.entries) - 1, -1, -1):
            if isinstance(self.entries[i], (InsertEntry, DeleteEntry)):
                self.min_safe_cursor = i + 1
                break

    def append_crack(self, interval: Interval) -> int:
        """Append a crack entry, deduplicating an immediate repeat.

        Consecutive identical predicates arise when one query runs several
        sideways operators over the same selection; replaying the duplicate
        would be a no-op, so it is elided.
        """
        if self.entries:
            last = self.entries[-1]
            if isinstance(last, CrackEntry) and last.interval == interval:
                return len(self.entries) - 1
        return self.append(CrackEntry(interval))

    def since(self, cursor: int) -> list[TapeEntry]:
        """Entries not yet applied by a map whose cursor is ``cursor``."""
        return self.entries[cursor:]

    def __getitem__(self, idx: int) -> TapeEntry:
        return self.entries[idx]
