"""Piece-exploiting aggregates (a paper §3.4 future-work item).

"Potentially, many operators can exploit the clustering information in the
maps, e.g., a max can consider only the last piece of a map" — this module
implements that idea for ``max``/``min`` over a selection's qualifying area:

The qualifying area ``w`` of a cracked map is itself partitioned into pieces
whose *value ranges* are known from the cracker index.  For a ``max`` over
the head attribute, only the last piece of ``w`` can contain the maximum;
for a ``min``, only the first.  The scan shrinks from ``|w|`` to the size of
one piece — and keeps shrinking as the workload cracks further.

Tail aggregates cannot exploit head clustering (tail values are unordered
within pieces), so they fall back to a full scan of ``w``.
"""

from __future__ import annotations

from repro.core.map import CrackerMap
from repro.cracking.bounds import Interval
from repro.stats.counters import StatsRecorder, global_recorder


def head_max(
    cmap: CrackerMap,
    lo: int,
    hi: int,
    recorder: StatsRecorder | None = None,
) -> float:
    """``max`` of the head attribute over the qualifying area ``[lo, hi)``.

    Scans only the last non-empty piece inside the area; correctness follows
    from the piece invariant (every piece's values dominate every earlier
    piece's values up to the boundary predicate).
    """
    recorder = recorder or global_recorder()
    if hi <= lo:
        return float("nan")
    last_piece = None
    for piece in cmap.index.pieces(len(cmap)):
        if piece.hi_pos <= lo or piece.lo_pos >= hi:
            continue
        clipped = (max(piece.lo_pos, lo), min(piece.hi_pos, hi))
        if clipped[1] > clipped[0]:
            last_piece = clipped
    assert last_piece is not None
    recorder.sequential(last_piece[1] - last_piece[0])
    return float(cmap.head[last_piece[0]:last_piece[1]].max())


def head_min(
    cmap: CrackerMap,
    lo: int,
    hi: int,
    recorder: StatsRecorder | None = None,
) -> float:
    """``min`` of the head attribute over ``[lo, hi)``: first piece only."""
    recorder = recorder or global_recorder()
    if hi <= lo:
        return float("nan")
    for piece in cmap.index.pieces(len(cmap)):
        if piece.hi_pos <= lo or piece.lo_pos >= hi:
            continue
        clip_lo = max(piece.lo_pos, lo)
        clip_hi = min(piece.hi_pos, hi)
        if clip_hi > clip_lo:
            recorder.sequential(clip_hi - clip_lo)
            return float(cmap.head[clip_lo:clip_hi].min())
    return float("nan")


def selection_max(
    cracker, head_attr: str, interval: Interval, recorder: StatsRecorder | None = None
) -> float:
    """``select max(head_attr) from R where interval(head_attr)``.

    Uses (and cracks) the set's key map, then reads only the last piece.
    The fallback scan over ``w`` would touch ``hi - lo`` elements; this
    touches one piece.
    """
    mapset = cracker.set_for(head_attr)
    cmap, lo, hi = mapset.select("@key", interval)
    return head_max(cmap, lo, hi, recorder)


def selection_min(
    cracker, head_attr: str, interval: Interval, recorder: StatsRecorder | None = None
) -> float:
    """``select min(head_attr) from R where interval(head_attr)``."""
    mapset = cracker.set_for(head_attr)
    cmap, lo, hi = mapset.select("@key", interval)
    return head_min(cmap, lo, hi, recorder)
