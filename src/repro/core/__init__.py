"""Sideways cracking: the paper's primary contribution.

* :mod:`~repro.core.tape` — cracker tapes: ordered logs of crack / insert /
  delete / sort events; a map's *cursor* into its tape defines its alignment
  state.
* :mod:`~repro.core.map` — cracker maps ``M_AB`` (head = selection attribute,
  tail = projection attribute).
* :mod:`~repro.core.mapset` — map sets ``S_A``: all maps headed by one
  attribute, the shared tape, the ``M_Akey`` map, pending updates, and
  adaptive alignment.
* :mod:`~repro.core.bitvector` — bit-vector filtering for multi-selection
  plans.
* :mod:`~repro.core.histogram` — cracker indices as self-organizing
  histograms (map-set choice / selectivity estimation).
* :mod:`~repro.core.sideways` — the sideways operators
  (``select``, ``select_create_bv``, ``select_refine_bv``, ``reconstruct``)
  over full maps.
* :mod:`~repro.core.partial` — partial sideways cracking (Section 4).
"""

from repro.core.map import CrackerMap
from repro.core.mapset import MapSet
from repro.core.sideways import SidewaysCracker
from repro.core.tape import CrackEntry, CrackerTape, DeleteEntry, InsertEntry, SortEntry

__all__ = [
    "CrackerMap",
    "MapSet",
    "SidewaysCracker",
    "CrackerTape",
    "CrackEntry",
    "InsertEntry",
    "DeleteEntry",
    "SortEntry",
]
