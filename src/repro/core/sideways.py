"""The sideways-cracking query operators over full maps (Section 3).

:class:`SidewaysCracker` owns the map sets of one relation and implements the
paper's operator suite:

* ``sideways.select`` — single selection, one projection per map
  (:meth:`SidewaysCracker.select_project`);
* ``sideways.select_create_bv`` / ``select_refine_bv`` / ``reconstruct`` —
  conjunctive multi-selection plans over one *aligned* map set, filtering
  false candidates with a bit vector (:meth:`SidewaysCracker.query`);
* the symmetric disjunctive plan;
* map-set choice driven by the cracker indices acting as self-organizing
  histograms (most selective predicate for conjunctions, least selective for
  disjunctions).
"""

from __future__ import annotations

import numpy as np

from repro.core.bitvector import BitVector
from repro.core.histogram import estimate_result_size
from repro.core.mapset import FullMapStorage, MapSet
from repro.cracking.bounds import Interval
from repro.cracking.stochastic import CrackPolicy, is_stochastic, policy_rng
from repro.errors import PlanError
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.relation import Relation


class SidewaysCracker:
    """Sideways cracking (full maps) over one relation."""

    def __init__(
        self,
        relation: Relation,
        recorder: StatsRecorder | None = None,
        storage: FullMapStorage | None = None,
        tombstone_keys=None,
        policy: CrackPolicy | None = None,
        crack_seed: int = 0,
        crack_budget=None,
    ) -> None:
        self.relation = relation
        self._recorder = recorder or global_recorder()
        self._storage = storage
        self._tombstone_keys = tombstone_keys
        self.policy = policy
        self.crack_seed = crack_seed
        self.crack_budget = crack_budget
        self.sets: dict[str, MapSet] = {}
        self._domain_cache: dict[str, tuple[float, float]] = {}

    # -- map-set management ------------------------------------------------------

    def set_crack_budget(self, budget) -> None:
        """Install a progressive budget on every (current and future) set."""
        self.crack_budget = budget
        for mapset in self.sets.values():
            mapset.set_budget(budget)

    def set_for(self, head_attr: str) -> MapSet:
        mapset = self.sets.get(head_attr)
        if mapset is None:
            mapset = MapSet(
                self.relation, head_attr, self._recorder, self._storage,
                policy=self.policy,
                rng=policy_rng(self.crack_seed, "mapset", self.relation.name, head_attr),
                budget=self.crack_budget,
            )
            if self._tombstone_keys is not None:
                dead = np.asarray(self._tombstone_keys(), dtype=np.int64)
                if len(dead):
                    mapset.exclude_from_snapshot(dead)
            self.sets[head_attr] = mapset
        return mapset

    def notify_insertions(self, rows: dict[str, np.ndarray], keys: np.ndarray) -> None:
        """Register appended tuples as pending insertions with every set."""
        for head_attr, mapset in self.sets.items():
            mapset.add_insertions(np.asarray(rows[head_attr]), keys)

    def notify_deletions(self, values_by_attr: dict[str, np.ndarray], keys: np.ndarray) -> None:
        """Register deleted tuples (old values per attribute) with every set."""
        for head_attr, mapset in self.sets.items():
            mapset.add_deletions(np.asarray(values_by_attr[head_attr]), keys)

    # -- selectivity estimation ----------------------------------------------------

    def _domain(self, attr: str) -> tuple[float, float]:
        cached = self._domain_cache.get(attr)
        if cached is None:
            values = self.relation.values(attr)
            self._recorder.sequential(len(values))
            cached = (float(values.min()), float(values.max())) if len(values) else (0.0, 0.0)
            self._domain_cache[attr] = cached
        return cached

    def estimate_count(self, attr: str, interval: Interval) -> float:
        """Estimated number of qualifying tuples for a predicate on ``attr``.

        Uses the most-aligned map of ``S_attr`` as a self-organizing
        histogram; falls back to a uniform assumption over the attribute
        domain when no map exists yet.
        """
        lo, hi = self._domain(attr)
        n = len(self.relation)
        mapset = self.sets.get(attr)
        cmap = mapset.most_aligned_map() if mapset is not None else None
        if cmap is not None and len(cmap.index):
            return estimate_result_size(cmap.index, len(cmap), interval, lo, hi).value
        # Uniform fallback over [lo, hi].
        span = hi - lo
        if span <= 0:
            return float(n)
        plo = lo if interval.lo is None else max(lo, min(hi, interval.lo))
        phi = hi if interval.hi is None else max(lo, min(hi, interval.hi))
        return max(0.0, (phi - plo) / span * n)

    def choose_head(
        self, predicates: dict[str, Interval], conjunctive: bool = True
    ) -> str:
        """Pick the map set for a multi-selection plan.

        Conjunctions want the most selective predicate (smallest bit vector);
        disjunctions the least selective (smallest area outside ``w``).
        """
        if not predicates:
            raise PlanError("a multi-selection plan needs at least one predicate")
        scored = sorted(
            (self.estimate_count(attr, iv), attr) for attr, iv in predicates.items()
        )
        return scored[0][1] if conjunctive else scored[-1][1]

    # -- single-selection, multi-projection (Section 3.2) ----------------------------

    def _pin(self, head_attr: str, tail_attrs: list[str]) -> None:
        """Protect the running plan's maps (and ``M_Akey``) from eviction."""
        if self._storage is not None:
            pairs = {(head_attr, attr) for attr in tail_attrs}
            pairs.add((head_attr, "@key"))
            self._storage.pin(pairs)

    def _unpin(self) -> None:
        if self._storage is not None:
            self._storage.unpin()

    def select_project(
        self, head_attr: str, interval: Interval, projections: list[str]
    ) -> dict[str, np.ndarray]:
        """``select p1, .., pk from R where interval(head_attr)``.

        One ``sideways.select`` per projection; adaptive alignment keeps the
        result slices positionally aligned across maps.
        """
        mapset = self.set_for(head_attr)
        self._pin(head_attr, projections)
        try:
            out: dict[str, np.ndarray] = {}
            selector = self._plan_selector(mapset, interval)
            for attr in projections:
                cmap, lo, hi, holes = selector(attr)
                self._recorder.sequential(hi - lo)
                # Copy: the map keeps reorganizing under future queries.
                out[attr] = self._gather(cmap, lo, hi, holes, interval).copy()
            return out
        finally:
            self._unpin()

    def _plan_selector(self, mapset: MapSet, interval: Interval):
        """One query plan's map accessor: leader cracks, followers resolve.

        Without progressive state this is the classic per-map ``select``
        (bit-identical behavior and tape).  With a budget, only the first
        access spends it; later maps of the same plan replay the leader's
        taped work and resolve the identical window, so one query costs one
        budget however many maps it touches.
        """
        if not mapset.progressive_active:
            def _legacy(attr: str):
                cmap, lo, hi = mapset.select(attr, interval)
                return cmap, lo, hi, []
            return _legacy

        state = {"first": True}

        def _progressive(attr: str):
            if state["first"]:
                state["first"] = False
                return mapset.select_window(attr, interval)
            return mapset.window_of(attr, interval)

        return _progressive

    def _gather(
        self,
        cmap,
        lo: int,
        hi: int,
        holes: list[tuple[int, int]],
        interval: Interval,
    ) -> np.ndarray:
        """Tail values qualifying ``interval``: certain window + holes.

        Hole positions are undecided by position alone; their head values
        are filtered explicitly.  Every aligned map yields the same hole
        masks, so concatenation order is positionally consistent across the
        maps of one plan.
        """
        if not holes:
            return cmap.tail[lo:hi]
        parts = [cmap.tail[lo:hi]]
        for h_lo, h_hi in holes:
            self._recorder.sequential(2 * (h_hi - h_lo))
            qual = interval.mask(cmap.head[h_lo:h_hi])
            parts.append(cmap.tail[h_lo:h_hi][qual])
        return np.concatenate(parts)

    # -- multi-selection plans (Section 3.3) --------------------------------------------

    def query(
        self,
        predicates: dict[str, Interval],
        projections: list[str],
        conjunctive: bool = True,
        head_attr: str | None = None,
    ) -> dict[str, np.ndarray]:
        """A full multi-selection / multi-projection sideways plan.

        Returns positionally aligned projection arrays of the qualifying
        tuples.  ``head_attr`` overrides the histogram-driven map-set choice
        (used by the ablation benchmarks).
        """
        if head_attr is None:
            head_attr = self.choose_head(predicates, conjunctive)
        if head_attr not in predicates:
            raise PlanError(f"head attribute {head_attr!r} has no predicate")
        tails = [a for a in predicates if a != head_attr] + list(projections)
        self._pin(head_attr, tails)
        try:
            if conjunctive:
                return self._conjunctive(head_attr, predicates, projections)
            return self._disjunctive(head_attr, predicates, projections)
        finally:
            self._unpin()

    def _conjunctive(
        self, head_attr: str, predicates: dict[str, Interval], projections: list[str]
    ) -> dict[str, np.ndarray]:
        mapset = self.set_for(head_attr)
        head_interval = predicates[head_attr]
        others = [(a, iv) for a, iv in predicates.items() if a != head_attr]

        selector = self._plan_selector(mapset, head_interval)
        bv: BitVector | None = None
        area: tuple | None = None
        # select_create_bv on the first non-head predicate, select_refine_bv
        # on the rest.
        for attr, iv in others:
            cmap, lo, hi, holes = selector(attr)
            area = (lo, hi, tuple(holes))
            self._recorder.sequential(hi - lo)
            mask = iv.mask(self._gather(cmap, lo, hi, holes, head_interval))
            if bv is None:
                bv = BitVector.from_mask(mask)
            else:
                bv.refine_and(mask)

        out: dict[str, np.ndarray] = {}
        for attr in projections:
            cmap, lo, hi, holes = selector(attr)
            if area is not None and (lo, hi, tuple(holes)) != area:
                raise PlanError("aligned maps disagree on the candidate area")
            area = (lo, hi, tuple(holes))
            self._recorder.sequential(hi - lo)
            values = self._gather(cmap, lo, hi, holes, head_interval)
            out[attr] = values[bv.bits] if bv is not None else values.copy()
        return out

    def _disjunctive(
        self, head_attr: str, predicates: dict[str, Interval], projections: list[str]
    ) -> dict[str, np.ndarray]:
        mapset = self.set_for(head_attr)
        head_interval = predicates[head_attr]
        others = [(a, iv) for a, iv in predicates.items() if a != head_attr]

        selector = self._plan_selector(mapset, head_interval)
        bv: BitVector | None = None
        for attr, iv in others:
            cmap, lo, hi, holes = selector(attr)
            if bv is None:
                bv = BitVector(len(cmap))
                bv.set_range(lo, hi)
                # Hole positions qualifying the head predicate are result
                # tuples regardless of the other predicates.
                for h_lo, h_hi in holes:
                    self._recorder.sequential(h_hi - h_lo)
                    bv.bits[h_lo:h_hi] |= head_interval.mask(cmap.head[h_lo:h_hi])
            # Only the areas outside w can contain additional qualifiers
            # (holes lie outside w and are covered by these two scans).
            self._recorder.sequential(len(cmap) - (hi - lo))
            bv.bits[:lo] |= iv.mask(cmap.tail[:lo])
            bv.bits[hi:] |= iv.mask(cmap.tail[hi:])

        out: dict[str, np.ndarray] = {}
        for attr in projections:
            cmap, lo, hi, holes = selector(attr)
            if bv is None:
                # Degenerate: a single-predicate "disjunction".
                self._recorder.sequential(hi - lo)
                out[attr] = self._gather(cmap, lo, hi, holes, head_interval).copy()
            else:
                self._recorder.sequential(len(cmap))
                out[attr] = cmap.tail[bv.bits]
        return out

    # -- bookkeeping -----------------------------------------------------------------------

    def storage_tuples(self) -> int:
        return sum(s.storage_tuples() for s in self.sets.values())

    def describe_state(self) -> str:
        """A human-readable summary of the self-organized state."""
        lines = [f"sideways cracker over {self.relation.name!r}: "
                 f"{len(self.sets)} map set(s), "
                 f"{self.storage_tuples():,} tuples of auxiliary storage"]
        if is_stochastic(self.policy):
            lines.append(f"  crack policy: {self.policy.describe()}")
        for head, mapset in sorted(self.sets.items()):
            lines.append(
                f"  set S_{head}: {len(mapset.maps)} map(s), "
                f"tape length {len(mapset.tape)}, "
                f"{mapset.pending.insertion_count} pending insert(s), "
                f"{mapset.pending.deletion_count} pending delete(s)"
                + (
                    f", {mapset.stochastic_cuts} stochastic cut(s)"
                    if is_stochastic(self.policy)
                    else ""
                )
            )
            for tail, cmap in sorted(mapset.maps.items()):
                behind = len(mapset.tape) - cmap.cursor
                lines.append(
                    f"    M_{head},{tail}: {len(cmap):,} tuples, "
                    f"{cmap.index.piece_count} pieces, "
                    f"{cmap.accesses} accesses, {behind} entries behind"
                )
        return "\n".join(lines)
