"""Map sets ``S_A``: all cracker maps headed by one attribute.

The set owns the cracker tape, the base snapshot that new maps are created
from, the pending-update buffers, and the special ``M_Akey`` map used to
locate deletions.  *Adaptive alignment* lives here: a map is brought up to
date by replaying tape entries from its cursor, only when a query actually
needs it.

Snapshot discipline (what makes late map creation correct): the set freezes
its view of the base table at creation time — ``snapshot_rows`` rows minus
any keys already deleted.  Rows inserted later reach maps only through
``InsertEntry`` replay, never through the snapshot, so every map starts from
the identical start state and deterministic replay yields identical
permutations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.core.map import CrackerMap
from repro.core.tape import (
    CrackEntry,
    CrackerTape,
    DeleteEntry,
    InsertEntry,
    ProgressiveCrackEntry,
)
from repro.cracking import stochastic
from repro.cracking.bounds import Bound, Interval, interval_from_bounds
from repro.cracking.crack import gang_replay_cracks
from repro.cracking.pending import PendingUpdates
from repro.cracking.progressive import (
    BudgetTracker,
    CrackProgress,
    ProgressiveBudget,
    parse_budget,
    resolve_area,
)
from repro.cracking.ripple import locate_deletions
from repro.cracking.stochastic import CrackPolicy, is_stochastic, policy_rng
from repro.errors import (
    AlignmentError,
    CatalogError,
    InvariantError,
    InvariantViolation,
)
from repro.faults.guard import atomic
from repro.faults.plan import fault_hook
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.relation import Relation

KEY_TAIL = "@key"


class MapSet:
    """The map set of one head attribute of one relation."""

    def __init__(
        self,
        relation: Relation,
        head_attr: str,
        recorder: StatsRecorder | None = None,
        storage: "FullMapStorage | None" = None,
        policy: CrackPolicy | None = None,
        rng: np.random.Generator | None = None,
        budget: "ProgressiveBudget | str | float | None" = None,
    ) -> None:
        self.relation = relation
        self.head_attr = head_attr
        self.tape = CrackerTape()
        self.maps: dict[str, CrackerMap] = {}
        self.pending = PendingUpdates(n_tails=1)  # tail = keys
        self._recorder = recorder or global_recorder()
        self._storage = storage
        self.policy = policy
        self._rng = rng if rng is not None else policy_rng(0, "mapset", head_attr)
        self.stochastic_cuts = 0
        # Bounds with a progressive crack still in flight at the tape's end
        # (mirrors the pending_cracks of any fully-aligned map).
        self.open_pendings: set[Bound] = set()
        self.set_budget(budget)
        # Piece-boundary signature of the last fully-aligned map, used to
        # assert that replaying a stochastic tape reproduces identical pieces.
        self._sig: tuple[int, tuple] | None = None
        # Freeze the snapshot: current rows, minus nothing (deletions that
        # happened before this set existed were already applied physically by
        # the Database facade or never seen by it).
        self.snapshot_rows = len(relation)
        self._snapshot_excluded: np.ndarray = np.empty(0, dtype=np.int64)
        register_structure(self, "mapset", f"S_{head_attr}")

    # -- progressive budget ----------------------------------------------------

    def set_budget(self, budget: "ProgressiveBudget | str | float | None") -> None:
        """Install the per-query reorganization budget (``None`` = eager)."""
        self.budget = parse_budget(budget)
        self._tracker = BudgetTracker(self.budget)

    @property
    def progressive_active(self) -> bool:
        """Is any budget installed or any crack still in flight?

        Callers running multi-map plans use this to decide between the
        legacy per-map ``select`` and the leader/follower
        ``select_window`` / ``window_of`` pair.
        """
        return self.budget is not None or bool(self.open_pendings)

    def _progress(self, cmap: CrackerMap, budgeted: bool) -> CrackProgress | None:
        """The crack context for one operation on the (aligned) ``cmap``.

        ``None`` (the exact legacy path, bit-identical tapes) when there is
        no budget and nothing in flight.  Unbudgeted contexts still resume
        pendings — a piece holding one must finish it before moving on.
        """
        if budgeted and self.budget is not None:
            self._tracker.begin_query(len(cmap.head))
            return CrackProgress(cmap.pending_cracks, self._tracker)
        if cmap.pending_cracks:
            return CrackProgress(cmap.pending_cracks)
        return None

    # -- snapshot --------------------------------------------------------------

    def exclude_from_snapshot(self, keys: np.ndarray) -> None:
        """Mark keys that must not appear in newly created maps.

        Used by the Database facade when tombstones predate this set.
        """
        if len(self.maps):
            raise AlignmentError("cannot change the snapshot once maps exist")
        self._snapshot_excluded = np.union1d(self._snapshot_excluded, keys)

    def _snapshot_mask(self) -> np.ndarray | None:
        if len(self._snapshot_excluded) == 0:
            return None
        keys = np.arange(self.snapshot_rows, dtype=np.int64)
        return ~np.isin(keys, self._snapshot_excluded)

    def _snapshot_arrays(self, tail_attr: str) -> tuple[np.ndarray, np.ndarray]:
        head = self.relation.values(self.head_attr)[: self.snapshot_rows]
        if tail_attr == KEY_TAIL:
            tail = np.arange(self.snapshot_rows, dtype=np.int64)
        else:
            tail = self.relation.values(tail_attr)[: self.snapshot_rows]
        mask = self._snapshot_mask()
        if mask is not None:
            return head[mask].copy(), tail[mask].copy()
        return head.copy(), tail.copy()

    def _fetch_tail_fn(self, tail_attr: str):
        if tail_attr == KEY_TAIL:
            return lambda keys: np.asarray(keys, dtype=np.int64).copy()

        def fetch(keys: np.ndarray) -> np.ndarray:
            # Resolve the column at call time: appends replace the BAT object.
            column = self.relation.column(tail_attr)
            self._recorder.random(len(keys), len(column))
            return column.values[np.asarray(keys, dtype=np.int64)]

        return fetch

    # -- map lifecycle -------------------------------------------------------------

    def has_map(self, tail_attr: str) -> bool:
        return tail_attr in self.maps

    def get_map(self, tail_attr: str, align: bool = False) -> CrackerMap:
        """The map ``M_{A,tail}``, creating it from the snapshot on demand."""
        if tail_attr != KEY_TAIL and tail_attr not in self.relation:
            raise CatalogError(
                f"relation {self.relation.name!r} has no attribute {tail_attr!r}"
            )
        cmap = self.maps.get(tail_attr)
        if cmap is None:
            if self._storage is not None:
                self._storage.ensure_room(self._map_size_estimate())
            head, tail = self._snapshot_arrays(tail_attr)
            cmap = CrackerMap(
                self.head_attr, tail_attr, head, tail,
                self._fetch_tail_fn(tail_attr), self._recorder,
            )
            self.maps[tail_attr] = cmap
            if self._storage is not None:
                self._storage.register(self, tail_attr, cmap)
        if align:
            self.align(cmap)
        return cmap

    def _map_size_estimate(self) -> int:
        mask = self._snapshot_mask()
        return self.snapshot_rows if mask is None else int(mask.sum())

    def drop_map(self, tail_attr: str) -> None:
        """Drop a map entirely (storage pressure); the tape is retained, so a
        recreated map pays a full replay to realign."""
        if tail_attr == KEY_TAIL and self.pending.deletion_count:
            raise AlignmentError("cannot drop M_Akey while deletions are pending")
        self.maps.pop(tail_attr, None)
        self._recorder.event("chunk_drops")

    # -- alignment -------------------------------------------------------------------

    def align(self, cmap: CrackerMap, upto: int | None = None) -> None:
        """Replay tape entries from ``cmap``'s cursor to ``upto`` (default end).

        Sibling maps standing at the same cursor are dragged along as a
        *gang*: crack entries are replayed once through a shared permutation
        (:func:`~repro.cracking.crack.gang_replay_crack`) instead of
        recomputing the identical partition per map.  Gang members hold
        bit-identical heads (the ``aligned-head-equality`` invariant), so
        the shared replay is exactly equivalent to individual replay.
        """
        end = len(self.tape) if upto is None else upto
        if cmap.cursor > end:
            raise AlignmentError(
                f"map cursor {cmap.cursor} already past requested position {end}"
            )
        with atomic(self, "mapset"):
            if cmap.cursor < end:
                fault_hook("mapset.align", cmap.head)
            group = [cmap]
            if cmap.cursor < end:
                group += [
                    m
                    for m in self.maps.values()
                    if m is not cmap and m.cursor == cmap.cursor
                ]
            while cmap.cursor < end:
                entry = self.tape[cmap.cursor]
                if isinstance(entry, DeleteEntry) and entry.positions is None:
                    self._locate_delete(cmap.cursor)
                if (
                    len(group) > 1
                    and isinstance(entry, CrackEntry)
                    and not cmap.pending_cracks
                ):
                    # Gang replay is only valid while no progressive crack is
                    # in flight: with pendings open, crack entries must go
                    # through the pending-aware per-map replay path.  The
                    # whole run of consecutive crack entries goes in one
                    # batched pass (crack-entry replay never opens pendings,
                    # so the run stays gang-eligible throughout).
                    run = [entry.interval]
                    while cmap.cursor + len(run) < end:
                        ahead = self.tape[cmap.cursor + len(run)]
                        if not isinstance(ahead, CrackEntry):
                            break
                        run.append(ahead.interval)
                    fault_hook("mapset.gang_replay")
                    gang_replay_cracks(group, run, self._recorder)
                    for m in group:
                        self._recorder.event("alignment_replays", len(run))
                        m.cursor += len(run)
                else:
                    for m in group:
                        m.replay_entry(entry)
            for m in group:
                self._check_replay_boundaries(m, end)

    def _check_replay_boundaries(self, cmap: CrackerMap, end: int) -> None:
        """Assert sibling maps agree on piece boundaries after full alignment.

        Only meaningful under a stochastic policy, where a replay bug (e.g. a
        policy consuming RNG during replay) would silently desynchronize
        sibling maps.  Compares an (boundary, position) signature across maps
        aligned to the same tape position.
        """
        if not (
            stochastic.REPLAY_BOUNDARY_CHECKS
            and is_stochastic(self.policy)
            and end == len(self.tape)
        ):
            return
        sig = (
            tuple(
                (bound.value, int(bound.side), pos)
                for bound, pos in cmap.index.inorder()
            ),
            tuple(sorted(
                (p.bound.value, int(p.bound.side), p.lo, p.hi, p.left, p.right)
                for p in cmap.pending_cracks.values()
            )),
        )
        if self._sig is not None and self._sig[0] == end and self._sig[1] != sig:
            from repro.analysis.invariants import format_boundaries

            expected, actual = self._sig[1], sig
            raise InvariantError.from_violations([InvariantViolation(
                structure=f"S_{self.head_attr}",
                invariant="replay-boundaries",
                detail=(
                    f"map {cmap.tail_attr!r} reproduced different piece "
                    f"boundaries at tape position {end}: expected "
                    f"{format_boundaries(expected[0])} (pending {expected[1]}), "
                    f"got {format_boundaries(actual[0])} (pending {actual[1]})"
                ),
                context=(
                    ("map", cmap.tail_attr), ("tape_position", end),
                    ("expected", expected[0]), ("actual", actual[0]),
                    ("expected_pending", expected[1]),
                    ("actual_pending", actual[1]),
                ),
            )])
        self._sig = (end, sig)

    def _locate_delete(self, entry_idx: int) -> None:
        """Fill in a delete entry's victim positions via ``M_Akey``.

        ``M_Akey`` is aligned to just before the entry, victims are located
        by scanning the pieces their old head values map to, and the
        positions are cached on the entry for every later replay.
        """
        entry = self.tape[entry_idx]
        assert isinstance(entry, DeleteEntry)
        key_map = self.get_map(KEY_TAIL)
        self.align(key_map, upto=entry_idx)
        if key_map.cursor != entry_idx:
            raise AlignmentError(
                "M_Akey overtook a delete entry whose positions were never located"
            )
        entry.positions = locate_deletions(
            key_map.index, key_map.head, key_map.tail,
            entry.values, entry.keys, self._recorder,
        )

    # -- pending updates ------------------------------------------------------------------

    def add_insertions(self, values: np.ndarray, keys: np.ndarray) -> None:
        self.pending.add_insertions(np.asarray(values), [np.asarray(keys, np.int64)])

    def add_deletions(self, values: np.ndarray, keys: np.ndarray) -> None:
        self.pending.add_deletions(values, keys)

    def merge_pending(self, interval: Interval | None = None) -> None:
        """Turn pending updates in ``interval`` into tape entries.

        The entries are *not* applied here — callers align their maps
        afterwards, which replays them in order.
        """
        if not self.pending.has_pending(interval):
            return
        with atomic(self, "mapset"):
            # Ripple merges shift piece positions, which would invalidate the
            # window markers of in-flight progressive cracks: tape
            # force-finish entries first so every replay completes them
            # before it sees the update entries.
            self._finish_open_pendings()
            ins_values, ins_tails = self.pending.take_insertions(interval)
            if len(ins_values):
                self.tape.append(InsertEntry(ins_values, ins_tails[0]))
            del_values, del_keys = self.pending.take_deletions(interval)
            if len(del_values):
                self.tape.append(DeleteEntry(del_values, del_keys))

    def _finish_open_pendings(self) -> None:
        """Tape a force-finish entry for every in-flight progressive crack."""
        for bound in sorted(self.open_pendings):
            self.tape.append(ProgressiveCrackEntry(bound, None))
        self.open_pendings.clear()

    # -- the sideways.select core ------------------------------------------------------------

    def select(self, tail_attr: str, interval: Interval) -> tuple[CrackerMap, int, int]:
        """Steps 1-8 of ``sideways.select``: create, align, crack, log.

        Returns the map and the qualifying area ``[lo, hi)``; the tail slice
        of that area is the (non-materialized view of the) result.  The
        legacy contiguous-area contract: any uncertainty left by a
        progressive budget is resolved by running the interval's in-flight
        cracks to completion.
        """
        cmap, lo, hi, holes = self.select_window(tail_attr, interval)
        if holes:
            cmap, lo, hi, holes = self.select_window(
                tail_attr, interval, budgeted=False
            )
            assert not holes  # unbudgeted cracks always complete
        return cmap, lo, hi

    def select_window(
        self, tail_attr: str, interval: Interval, budgeted: bool = True
    ) -> tuple[CrackerMap, int, int, list[tuple[int, int]]]:
        """Budget-aware ``select``: the certain window plus uncertainty holes.

        Like :meth:`select`, but under a progressive budget the crack may
        stop partway; the returned ``[lo, hi)`` is then the largest *certain*
        window and ``holes`` lists position ranges whose membership callers
        must decide by filtering head values.  Without a budget (or with
        ``budgeted=False``) holes is always empty.
        """
        with atomic(self, "mapset"):
            cmap = self.get_map(tail_attr)
            self.merge_pending(interval)
            self.align(cmap)
            cuts: list[Bound] = []
            progress = self._progress(cmap, budgeted)
            lo, hi = cmap.crack(interval, self.policy, self._rng, cuts, progress)
            self.stochastic_cuts += len(cuts)
            holes: list[tuple[int, int]] = []
            if progress is not None:
                holes = list(progress.holes)
                self._log_progress(interval, progress)
            else:
                # Auxiliary (stochastic) cuts go on the tape first, as
                # one-sided crack entries, so sibling maps replay the
                # identical sequence without consulting the policy or RNG.
                for pivot in cuts:
                    self.tape.append(CrackEntry(interval_from_bounds(pivot, None)))
                self.tape.append_crack(interval)
            cmap.cursor = len(self.tape)
            self._sig = None
            checkpoint_crack(self, "mapset")
        return cmap, lo, hi, holes

    def window_of(
        self, tail_attr: str, interval: Interval
    ) -> tuple[CrackerMap, int, int, list[tuple[int, int]]]:
        """Align a map and resolve ``interval``'s window without new cracking.

        The follower half of a multi-map plan: a leader ``select_window``
        spends the query's budget and tapes its work; followers replay that
        tape (reaching the identical physical state) and merely resolve the
        window, so one query spends one budget no matter how many maps it
        touches — and every map reports the same window and holes.
        """
        with atomic(self, "mapset"):
            cmap = self.get_map(tail_attr)
            self.merge_pending(interval)
            self.align(cmap)
            cmap.accesses += 1
            self._recorder.event("index_lookups", 2)
            lo, hi, holes = resolve_area(
                cmap.index, len(cmap.head), interval, cmap.pending_cracks
            )
        return cmap, lo, hi, holes

    def _log_progress(self, interval: Interval, progress: CrackProgress) -> None:
        """Tape the op sequence of one budget-aware crack, in temporal order.

        Eager ops become one-sided crack entries (preceded by their own
        auxiliary cuts); steps become :class:`ProgressiveCrackEntry` records.
        Interleaving order matters: a step completing a pending may free the
        piece an eager crack then splits, so the entries must replay in the
        exact order the work happened.  The progressive path never uses the
        crack-in-three fast path, so two-sided legacy entries (whose replay
        could take it) are never logged from here.
        """
        if not progress.ops:
            if progress.holes:
                # The budget was exhausted before any work happened; logging
                # a crack entry would make replayers do work the live
                # structure never did.
                return
            # Nothing physical happened — both bounds were boundaries
            # already.  Keep the classic (deduplicating) log entry.
            self.tape.append_crack(interval)
            return
        for op in progress.ops:
            if op[0] == "eager":
                _, bound, op_cuts = op
                for pivot in op_cuts:
                    self.tape.append(CrackEntry(interval_from_bounds(pivot, None)))
                self.tape.append(CrackEntry(interval_from_bounds(bound, None)))
            else:
                _, bound, k, done = op
                self.tape.append(ProgressiveCrackEntry(bound, k))
                if done:
                    self.open_pendings.discard(bound)
                else:
                    self.open_pendings.add(bound)

    # -- invariants -----------------------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "mapset", deep=deep)

    # -- introspection --------------------------------------------------------------------------

    def alignment_distance(self, tail_attr: str) -> int | None:
        """Tape entries the map still has to replay; ``None`` if absent."""
        cmap = self.maps.get(tail_attr)
        if cmap is None:
            return None
        return len(self.tape) - cmap.cursor

    def most_aligned_map(self) -> CrackerMap | None:
        """The map with the smallest alignment distance (histogram source)."""
        best: CrackerMap | None = None
        for cmap in self.maps.values():
            if best is None or cmap.cursor > best.cursor:
                best = cmap
        return best

    def storage_tuples(self) -> int:
        return sum(m.storage_tuples for m in self.maps.values())


class FullMapStorage:
    """Least-frequently-accessed eviction of whole maps under a tuple budget.

    This is the storage policy the paper uses for *full* maps: "existing maps
    are only dropped if there is not sufficient storage for newly requested
    maps.  We always drop the least frequently accessed map(s)."
    """

    def __init__(self, budget_tuples: int | None, recorder: StatsRecorder | None = None) -> None:
        self.budget_tuples = budget_tuples
        self._recorder = recorder or global_recorder()
        self._registry: dict[tuple[int, str], tuple[MapSet, str, CrackerMap]] = {}
        self._pinned: set[tuple[str, str]] = set()

    def register(self, mapset: MapSet, tail_attr: str, cmap: CrackerMap) -> None:
        self._registry[(id(mapset), tail_attr)] = (mapset, tail_attr, cmap)

    def unregister(self, mapset: MapSet, tail_attr: str) -> None:
        """Forget one map (fault rollback / quarantine healing)."""
        self._registry.pop((id(mapset), tail_attr), None)

    def unregister_set(self, mapset: MapSet) -> None:
        """Forget every map of ``mapset`` (quarantine healing)."""
        for key in [k for k in self._registry if k[0] == id(mapset)]:
            del self._registry[key]

    @property
    def used_tuples(self) -> int:
        return sum(m.storage_tuples for _, _, m in self._registry.values())

    def pin(self, pairs: "set[tuple[str, str]]") -> None:
        """Protect maps ``(head_attr, tail_attr)`` of the running query."""
        self._pinned = set(pairs)

    def unpin(self) -> None:
        self._pinned = set()

    def ensure_room(self, new_tuples: int) -> None:
        """Drop least-frequently-accessed unpinned maps until it fits."""
        if self.budget_tuples is None:
            return
        while self.used_tuples + new_tuples > self.budget_tuples:
            victims = [
                (cmap.accesses, key)
                for key, (mapset, attr, cmap) in self._registry.items()
                if (mapset.head_attr, attr) not in self._pinned
            ]
            if not victims:
                return  # nothing evictable; allow overshoot rather than fail
            _, victim_key = min(victims)
            mapset, tail_attr, _ = self._registry.pop(victim_key)
            mapset.drop_map(tail_attr)
