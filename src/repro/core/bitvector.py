"""Bit vectors for multi-selection plans.

A thin, intention-revealing wrapper over a NumPy boolean array.  Conjunctive
plans allocate a vector the size of the aligned candidate area; disjunctive
plans allocate one the size of the whole map.
"""

from __future__ import annotations

import numpy as np


class BitVector:
    """A fixed-length vector of qualification bits."""

    def __init__(self, size: int, initial: bool = False) -> None:
        self.bits = np.full(size, initial, dtype=bool)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "BitVector":
        bv = cls(len(mask))
        bv.bits = mask.astype(bool, copy=True)
        return bv

    def __len__(self) -> int:
        return len(self.bits)

    def refine_and(self, mask: np.ndarray) -> None:
        """Clear bits whose tuples fail an additional conjunctive predicate."""
        self.bits &= mask

    def refine_or(self, mask: np.ndarray) -> None:
        """Set bits whose tuples pass an additional disjunctive predicate."""
        self.bits |= mask

    def set_range(self, lo: int, hi: int) -> None:
        self.bits[lo:hi] = True

    def count(self) -> int:
        return int(self.bits.sum())

    def positions(self) -> np.ndarray:
        return np.flatnonzero(self.bits)
