"""Cracker indices as self-organizing histograms.

The piece boundaries of a cracker index record exactly how many tuples fall
in each learned value range, so result sizes of new predicates can be
estimated without touching data: exact when the predicate matches existing
boundaries, otherwise bounded by whole-piece counts and tightened by linear
interpolation inside the boundary pieces (Section 3.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Interval


@dataclass(frozen=True)
class Estimate:
    """A result-size estimate with its hard bounds.

    ``low``/``high`` are guaranteed bounds from whole pieces; ``value`` is
    the interpolated point estimate, always within ``[low, high]``.
    """

    value: float
    low: int
    high: int
    exact: bool


def _interpolate(piece_lo: int, piece_hi: int, lo_val: float, hi_val: float,
                 cut: float) -> float:
    """Estimated position of value ``cut`` inside a piece assumed uniform on
    ``[lo_val, hi_val]``."""
    size = piece_hi - piece_lo
    if size <= 0 or hi_val <= lo_val:
        return float(piece_lo)
    frac = (cut - lo_val) / (hi_val - lo_val)
    frac = min(1.0, max(0.0, frac))
    return piece_lo + frac * size


def _position_estimate(
    index: CrackerIndex, n: int, bound: Bound, domain_lo: float, domain_hi: float
) -> tuple[float, int, int, bool]:
    """Estimated position of ``bound``: (point, floor, ceiling, exact)."""
    exact = index.position_of(bound)
    if exact is not None:
        return float(exact), exact, exact, True
    lo_pos, hi_pos = index.enclosing(bound, n)
    pred = index.predecessor(bound)
    succ = index.successor(bound)
    lo_val = domain_lo if pred is None else pred[0].value
    hi_val = domain_hi if succ is None else succ[0].value
    point = _interpolate(lo_pos, hi_pos, lo_val, hi_val, bound.value)
    return point, lo_pos, hi_pos, False


def estimate_result_size(
    index: CrackerIndex,
    n: int,
    interval: Interval,
    domain_lo: float,
    domain_hi: float,
) -> Estimate:
    """Estimate how many of the ``n`` tuples qualify ``interval``.

    ``domain_lo``/``domain_hi`` are (approximate) attribute extremes used for
    interpolation in unexplored pieces.
    """
    lower = interval.lower_bound()
    upper = interval.upper_bound()

    if lower is None:
        lo_point, lo_floor, lo_ceil, lo_exact = 0.0, 0, 0, True
    else:
        lo_point, lo_floor, lo_ceil, lo_exact = _position_estimate(
            index, n, lower, domain_lo, domain_hi
        )
    if upper is None:
        hi_point, hi_floor, hi_ceil, hi_exact = float(n), n, n, True
    else:
        hi_point, hi_floor, hi_ceil, hi_exact = _position_estimate(
            index, n, upper, domain_lo, domain_hi
        )

    # Upper bound: widest possible area; lower bound: narrowest.
    high = max(0, hi_ceil - lo_floor)
    low = max(0, hi_floor - lo_ceil)
    value = min(float(high), max(float(low), hi_point - lo_point))
    return Estimate(value=value, low=low, high=high, exact=lo_exact and hi_exact)
