"""Cracker maps ``M_AB``.

A map stores values of the head attribute A and the tail attribute B of the
same relational tuples, position-aligned.  It is cracked on head predicates;
the tail rides along, so after cracking the qualifying B values form a
contiguous area — tuple reconstruction becomes a slice.

A map replays its set's tape to stay aligned with sibling maps
(:meth:`CrackerMap.replay_entry`); the set drives alignment because delete
entries need the set-level ``M_Akey`` map to locate victims.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Interval
from repro.cracking.crack import crack_into
from repro.cracking.kernels import sort_piece
from repro.cracking.progressive import CrackProgress, PendingMap, replay_progressive
from repro.cracking.ripple import delete_positions, merge_insertions
from repro.cracking.stochastic import CrackPolicy
from repro.core.tape import (
    CrackEntry,
    DeleteEntry,
    InsertEntry,
    ProgressiveCrackEntry,
    SortEntry,
    TapeEntry,
)
from repro.errors import AlignmentError
from repro.stats.counters import StatsRecorder, global_recorder


class CrackerMap:
    """One two-column cracker map.

    Parameters
    ----------
    head_attr / tail_attr:
        Attribute names (the tail may equal the reserved name ``"@key"`` for
        the set's ``M_Akey`` map).
    head / tail:
        The initial, position-aligned value arrays (the set's base snapshot).
    fetch_tail:
        Callback ``keys -> tail values`` used when replaying insert entries;
        reads the map's own tail attribute from its base column.
    """

    def __init__(
        self,
        head_attr: str,
        tail_attr: str,
        head: np.ndarray,
        tail: np.ndarray,
        fetch_tail,
        recorder: StatsRecorder | None = None,
    ) -> None:
        if len(head) != len(tail):
            raise AlignmentError("map head and tail must be equally long")
        self.head_attr = head_attr
        self.tail_attr = tail_attr
        self.head = head
        self.tail = tail
        self.index = CrackerIndex()
        self.cursor = 0
        self.accesses = 0
        self.pending_cracks: PendingMap = {}
        self._fetch_tail = fetch_tail
        self._recorder = recorder or global_recorder()
        self._recorder.event("map_creations")
        self._recorder.sequential(2 * len(head))
        self._recorder.write(2 * len(head))
        register_structure(self, "map", f"M_{head_attr},{tail_attr}")

    def __len__(self) -> int:
        return len(self.head)

    @property
    def storage_tuples(self) -> int:
        """Storage footprint in (head, tail) pairs."""
        return len(self.head)

    # -- cracking -------------------------------------------------------------

    def crack(
        self,
        interval: Interval,
        policy: CrackPolicy | None = None,
        rng: np.random.Generator | None = None,
        cut_sink: list[Bound] | None = None,
        progress: CrackProgress | None = None,
    ) -> tuple[int, int]:
        """Crack on a head predicate; returns the qualifying area ``[lo, hi)``.

        A stochastic ``policy`` may add auxiliary cuts (reported through
        ``cut_sink`` so the owning set can log them to its tape).  A
        ``progress`` context makes the crack budget-aware: the returned area
        is then the certain window and ``progress.holes`` the undecided
        ranges.  Replay (:meth:`replay_entry`) never passes either.
        """
        self.accesses += 1
        area = crack_into(
            self.index, self.head, [self.tail], interval, self._recorder,
            policy=policy, rng=rng, cut_sink=cut_sink, progress=progress,
        )
        checkpoint_crack(self, "map")
        return area

    def area_of(self, interval: Interval) -> tuple[int, int] | None:
        """The qualifying area if ``interval``'s bounds already exist, else None."""
        lower = interval.lower_bound()
        upper = interval.upper_bound()
        lo = 0 if lower is None else self.index.position_of(lower)
        hi = len(self.head) if upper is None else self.index.position_of(upper)
        if lo is None or hi is None:
            return None
        return lo, hi

    # -- tape replay ------------------------------------------------------------

    def replay_entry(self, entry: TapeEntry) -> None:
        """Apply one tape entry and advance the cursor.

        Delete entries must already carry cached positions (the map set
        guarantees this by locating victims through ``M_Akey`` first).
        """
        self._recorder.event("alignment_replays")
        if isinstance(entry, CrackEntry):
            crack_into(
                self.index, self.head, [self.tail], entry.interval, self._recorder,
                progress=(
                    CrackProgress(self.pending_cracks) if self.pending_cracks else None
                ),
            )
        elif isinstance(entry, ProgressiveCrackEntry):
            replay_progressive(
                self.index, self.head, [self.tail], self.pending_cracks,
                entry.bound, entry.step, self._recorder,
            )
        elif isinstance(entry, InsertEntry):
            if self.pending_cracks:
                raise AlignmentError(
                    "insert entry replayed with in-flight progressive cracks"
                )
            tail_values = self._fetch_tail(entry.keys)
            self.head, tails = merge_insertions(
                self.index, self.head, [self.tail], entry.values, [tail_values],
                self._recorder,
            )
            self.tail = tails[0]
        elif isinstance(entry, DeleteEntry):
            if entry.positions is None:
                raise AlignmentError(
                    "delete entry replayed before its positions were located"
                )
            self.head, tails = delete_positions(
                self.index, self.head, [self.tail], entry.positions, self._recorder
            )
            self.tail = tails[0]
        elif isinstance(entry, SortEntry):
            lo = 0 if entry.lo_bound is None else self.index.position_of(entry.lo_bound)
            hi = (
                len(self.head)
                if entry.hi_bound is None
                else self.index.position_of(entry.hi_bound)
            )
            if lo is None or hi is None:
                raise AlignmentError("sort entry references unknown piece bounds")
            sort_piece(self.head, [self.tail], lo, hi)
            self._recorder.sequential(2 * (hi - lo))
            self._recorder.write(2 * (hi - lo))
        else:  # pragma: no cover - exhaustive match
            raise AlignmentError(f"unknown tape entry {entry!r}")
        self.cursor += 1

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "map", deep=deep)
