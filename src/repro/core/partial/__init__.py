"""Partial sideways cracking (Section 4 of the paper).

Maps are materialized only *chunk-wise*, driven by the workload:

* :mod:`~repro.core.partial.chunkmap` — the chunk map ``H_A`` holding
  ``(A, key)`` pairs, partitioned into *areas*; fetched areas are frozen in
  ``H_A`` and get their own cracker tape.
* :mod:`~repro.core.partial.chunk` — one materialized chunk of one partial
  map: a two-column table over one fetched area, with its own local cracker
  index and a cursor into the area's tape.
* :mod:`~repro.core.partial.partial_map` — a partial map: the collection of
  chunks one ``(head, tail)`` attribute pair currently materializes.
* :mod:`~repro.core.partial.storage` — the chunk storage manager: budget,
  least-frequently-accessed eviction, pinning, head dropping.
* :mod:`~repro.core.partial.engine` — :class:`PartialSidewaysCracker`, the
  query-level facade mirroring :class:`~repro.core.sideways.SidewaysCracker`
  with chunk-wise processing and partial alignment.
"""

from repro.core.partial.chunkmap import Area, ChunkMap
from repro.core.partial.chunk import Chunk
from repro.core.partial.engine import PartialConfig, PartialSidewaysCracker
from repro.core.partial.partial_map import PartialMap
from repro.core.partial.storage import ChunkStorage

__all__ = [
    "Area",
    "ChunkMap",
    "Chunk",
    "PartialMap",
    "ChunkStorage",
    "PartialConfig",
    "PartialSidewaysCracker",
]
