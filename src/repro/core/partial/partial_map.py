"""Partial maps: the chunk collections of one ``(head, tail)`` pair."""

from __future__ import annotations

import numpy as np

from repro.core.partial.chunk import Chunk
from repro.core.partial.chunkmap import Area, ChunkMap
from repro.errors import AlignmentError
from repro.stats.counters import StatsRecorder, global_recorder

KEY_TAIL = "@key"


class PartialMap:
    """A partial cracker map ``M_{A,tail}``: chunks materialized on demand."""

    def __init__(
        self,
        chunkmap: ChunkMap,
        tail_attr: str,
        recorder: StatsRecorder | None = None,
    ) -> None:
        self.chunkmap = chunkmap
        self.head_attr = chunkmap.head_attr
        self.tail_attr = tail_attr
        self.chunks: dict[int, Chunk] = {}
        self._recorder = recorder or global_recorder()

    @property
    def name(self) -> str:
        return f"{self.head_attr}->{self.tail_attr}"

    def __len__(self) -> int:
        """Materialized tuples across all chunks."""
        return sum(len(c) for c in self.chunks.values())

    @property
    def storage_cells(self) -> int:
        return sum(c.storage_cells for c in self.chunks.values())

    # -- tail fetching -----------------------------------------------------------

    def _fetch_tail_fn(self):
        if self.tail_attr == KEY_TAIL:
            return lambda keys: np.asarray(keys, dtype=np.int64).copy()

        def fetch(keys: np.ndarray) -> np.ndarray:
            column = self.chunkmap.relation.column(self.tail_attr)
            self._recorder.random(len(keys), len(column))
            return column.values[np.asarray(keys, dtype=np.int64)]

        return fetch

    # -- chunk lifecycle -------------------------------------------------------------

    def has_chunk(self, area: Area) -> bool:
        return area.area_id in self.chunks

    def get_chunk(self, area: Area) -> Chunk | None:
        return self.chunks.get(area.area_id)

    def create_chunk(self, area: Area) -> Chunk:
        """Materialize the chunk for ``area`` from the chunk map.

        The head is the area's frozen ``H_A`` slice; the tail is fetched
        from the base column through the area's keys (the expensive,
        random-access step partial materialization amortizes).  The chunk
        starts at tape cursor 0; callers align it as far as they need.
        """
        if area.area_id in self.chunks:
            raise AlignmentError(f"{self.name} already has a chunk for area {area.area_id}")
        if not area.fetched:
            raise AlignmentError("cannot create a chunk for an unfetched area")
        head_slice, key_slice = self.chunkmap.area_slice(area)
        fetch = self._fetch_tail_fn()
        tail = fetch(key_slice)
        chunk = Chunk(
            area.area_id, head_slice.copy(), tail, fetch, self._recorder
        )
        self._recorder.write(2 * len(chunk))
        self.chunks[area.area_id] = chunk
        self.chunkmap.add_ref(area, self.name)
        return chunk

    def drop_chunk(self, area_id: int) -> None:
        """Drop a chunk (storage pressure); learning persists in the tape."""
        self.chunks.pop(area_id, None)
        area = self.chunkmap.area_of_id(area_id)
        self.chunkmap.drop_ref(area, self.name)
        self._recorder.event("chunk_drops")

    # -- alignment --------------------------------------------------------------------

    def align_chunk(self, chunk: Chunk, area: Area, upto: int | None = None) -> None:
        """Replay the area tape from the chunk's cursor to ``upto``."""
        assert area.tape is not None
        end = len(area.tape) if upto is None else upto
        if chunk.cursor > end:
            raise AlignmentError(
                f"chunk cursor {chunk.cursor} already past requested position {end}"
            )
        if chunk.cursor < end and chunk.head_dropped:
            raise AlignmentError(
                "head-dropped chunk needs recovery before alignment"
            )
        while chunk.cursor < end:
            chunk.replay_entry(area.tape[chunk.cursor])
