"""The chunk storage manager.

Chunks are auxiliary: any one can be dropped at any time without losing
primary information.  The manager enforces a tuple budget across all partial
maps of a database, evicting the least-frequently-accessed unpinned chunk
when room is needed (the paper drops "based on how often queries access
them").  By default chunk maps do *not* count against the budget — the
paper's thresholds are expressed in map tuples (T=2M = "two full maps"),
with the chunk map treated as backbone; pass ``count_chunkmaps=True`` to
include them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partial.chunkmap import ChunkMap
from repro.core.partial.partial_map import PartialMap
from repro.stats.counters import StatsRecorder, global_recorder


@dataclass(frozen=True)
class _ChunkRef:
    pmap: PartialMap
    area_id: int


class ChunkStorage:
    """Budgeted chunk bookkeeping with LFU eviction."""

    def __init__(
        self,
        budget_tuples: int | None,
        recorder: StatsRecorder | None = None,
        count_chunkmaps: bool = False,
    ) -> None:
        self.budget_tuples = budget_tuples
        self.count_chunkmaps = count_chunkmaps
        self._recorder = recorder or global_recorder()
        self._maps: list[PartialMap] = []
        self._chunkmaps: list[ChunkMap] = []
        self._pinned: set[tuple[str, int]] = set()

    # -- registration -----------------------------------------------------------

    def register_map(self, pmap: PartialMap) -> None:
        if pmap not in self._maps:
            self._maps.append(pmap)

    def register_chunkmap(self, cmap: ChunkMap) -> None:
        if cmap not in self._chunkmaps:
            self._chunkmaps.append(cmap)

    def unregister_map(self, pmap: PartialMap) -> None:
        """Forget a partial map (fault rollback or quarantine healing)."""
        if pmap in self._maps:
            self._maps.remove(pmap)
        self._pinned = {(name, aid) for name, aid in self._pinned if name != pmap.name}

    def unregister_chunkmap(self, cmap: ChunkMap) -> None:
        if cmap in self._chunkmaps:
            self._chunkmaps.remove(cmap)

    # -- accounting -------------------------------------------------------------------

    @property
    def used_cells(self) -> int:
        cells = sum(p.storage_cells for p in self._maps)
        if self.count_chunkmaps:
            cells += sum(c.storage_cells for c in self._chunkmaps)
        return cells

    @property
    def used_tuples(self) -> float:
        """Budget usage in map tuples (one tuple = a head/tail cell pair)."""
        return self.used_cells / 2

    # -- pinning ------------------------------------------------------------------------

    def pin(self, pmap: PartialMap, area_id: int) -> None:
        self._pinned.add((pmap.name, area_id))

    def unpin_all(self) -> None:
        self._pinned.clear()

    # -- eviction -----------------------------------------------------------------------

    def ensure_room(self, new_tuples: int) -> None:
        """Evict least-frequently-accessed unpinned chunks until it fits."""
        if self.budget_tuples is None:
            return
        while self.used_tuples + new_tuples > self.budget_tuples:
            victim: tuple[int, PartialMap, int] | None = None
            for pmap in self._maps:
                for area_id, chunk in pmap.chunks.items():
                    if (pmap.name, area_id) in self._pinned:
                        continue
                    cand = (chunk.accesses, pmap, area_id)
                    if victim is None or cand[0] < victim[0]:
                        victim = cand
            if victim is None:
                return  # nothing evictable; allow overshoot rather than fail
            _, pmap, area_id = victim
            pmap.drop_chunk(area_id)
