"""One materialized chunk of a partial map.

A chunk is a self-contained two-column table over one fetched chunk-map
area: head values of the set's attribute, tail values of the map's
attribute, a *local* cracker index (positions relative to the chunk), and a
cursor into the area's tape.

Head dropping (Section 4.1): the head column may be discarded to halve the
chunk's footprint, at the cost of losing the ability to crack.  When a later
query does need to crack, the head is *recovered* — preferably from a
sibling chunk of the same area that still holds one and is not aligned past
this chunk, else from the chunk map — by replaying the tape on the head
alone.  Every tape event's permutation is a function of head values only
(stable kernels), so head-only replay reproduces the exact permutation this
chunk's tail went through.
"""

from __future__ import annotations

import numpy as np

from repro.core.tape import (
    CrackEntry,
    CrackerTape,
    DeleteEntry,
    InsertEntry,
    ProgressiveCrackEntry,
    SortEntry,
    TapeEntry,
)
from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Interval, interval_from_bounds
from repro.cracking.crack import crack_into
from repro.cracking.kernels import sort_piece
from repro.cracking.progressive import (
    CrackProgress,
    PendingMap,
    replay_progressive,
    resolve_area,
)
from repro.cracking.ripple import delete_positions, merge_insertions
from repro.cracking.stochastic import CrackPolicy
from repro.errors import AlignmentError
from repro.stats.counters import StatsRecorder, global_recorder


class Chunk:
    """A chunk of one partial map over one area."""

    def __init__(
        self,
        area_id: int,
        head: np.ndarray,
        tail: np.ndarray,
        fetch_tail,
        recorder: StatsRecorder | None = None,
    ) -> None:
        self.area_id = area_id
        self.head: np.ndarray | None = head
        self.tail = tail
        self.index = CrackerIndex()
        self.cursor = 0
        self.accesses = 0
        self.cracks_seen = 0
        self.last_crack_access = 0
        self.pending_cracks: PendingMap = {}
        self._fetch_tail = fetch_tail
        self._recorder = recorder or global_recorder()
        self._recorder.event("chunk_creations")
        register_structure(self, "chunk", f"chunk[area {area_id}]")

    def __len__(self) -> int:
        return len(self.tail)

    @property
    def head_dropped(self) -> bool:
        return self.head is None

    @property
    def storage_cells(self) -> int:
        return len(self.tail) * (1 if self.head_dropped else 2)

    def touch(self) -> None:
        self.accesses += 1

    # -- cracking ---------------------------------------------------------------

    def crack(
        self,
        interval: Interval,
        policy: CrackPolicy | None = None,
        rng: np.random.Generator | None = None,
        cut_sink: list[Bound] | None = None,
        progress: CrackProgress | None = None,
    ) -> tuple[int, int]:
        """Crack on the (clipped) head predicate; needs the head column.

        A stochastic ``policy`` may add auxiliary cuts (reported through
        ``cut_sink``); a ``progress`` context makes the crack budget-aware.
        Replay and head recovery never pass either.
        """
        if self.head is None:
            raise AlignmentError("chunk head was dropped; recover it before cracking")
        self.cracks_seen += 1
        self.last_crack_access = self.accesses
        area = crack_into(
            self.index, self.head, [self.tail], interval, self._recorder,
            policy=policy, rng=rng, cut_sink=cut_sink, progress=progress,
        )
        checkpoint_crack(self, "chunk")
        return area

    def bounds_present(self, bounds: list[Bound]) -> bool:
        return all(self.index.position_of(b) is not None for b in bounds)

    def area_between(self, lower: Bound | None, upper: Bound | None) -> tuple[int, int]:
        """Positions of the qualifying slice between two existing boundaries."""
        lo = 0 if lower is None else self.index.position_of(lower)
        hi = len(self.tail) if upper is None else self.index.position_of(upper)
        if lo is None or hi is None:
            raise AlignmentError("requested slice bounds are not chunk boundaries")
        return lo, hi

    def window_between(
        self, lower: Bound | None, upper: Bound | None
    ) -> tuple[int, int, list[tuple[int, int]]]:
        """The certain qualifying window between two bounds, plus holes.

        The budget-tolerant twin of :meth:`area_between`: a bound still in
        flight (or skipped entirely) contributes the largest certain window
        and an uncertainty hole instead of raising.
        """
        clipped = interval_from_bounds(lower, upper)
        return resolve_area(self.index, len(self.tail), clipped, self.pending_cracks)

    # -- tape replay -------------------------------------------------------------------

    def replay_entry(self, entry: TapeEntry) -> None:
        """Apply one area-tape entry; delete entries must carry positions."""
        if self.head is None:
            raise AlignmentError("cannot replay tape entries on a head-dropped chunk")
        self._recorder.event("alignment_replays")
        if isinstance(entry, CrackEntry):
            crack_into(
                self.index, self.head, [self.tail], entry.interval, self._recorder,
                progress=(
                    CrackProgress(self.pending_cracks) if self.pending_cracks else None
                ),
            )
        elif isinstance(entry, ProgressiveCrackEntry):
            replay_progressive(
                self.index, self.head, [self.tail], self.pending_cracks,
                entry.bound, entry.step, self._recorder,
            )
        elif isinstance(entry, InsertEntry):
            if self.pending_cracks:
                raise AlignmentError(
                    "insert entry replayed with in-flight progressive cracks"
                )
            tail_values = self._fetch_tail(entry.keys)
            self.head, tails = merge_insertions(
                self.index, self.head, [self.tail], entry.values, [tail_values],
                self._recorder,
            )
            self.tail = tails[0]
        elif isinstance(entry, DeleteEntry):
            if entry.positions is None:
                raise AlignmentError("delete entry has no located positions")
            self.head, tails = delete_positions(
                self.index, self.head, [self.tail], entry.positions, self._recorder
            )
            self.tail = tails[0]
        elif isinstance(entry, SortEntry):
            lo = 0 if entry.lo_bound is None else self.index.position_of(entry.lo_bound)
            hi = (
                len(self.tail)
                if entry.hi_bound is None
                else self.index.position_of(entry.hi_bound)
            )
            if lo is None or hi is None:
                raise AlignmentError("sort entry references unknown piece bounds")
            sort_piece(self.head, [self.tail], lo, hi)
            self._recorder.sequential(2 * (hi - lo))
            self._recorder.write(2 * (hi - lo))
        else:  # pragma: no cover
            raise AlignmentError(f"unknown tape entry {entry!r}")
        self.cursor += 1

    # -- head dropping & recovery -----------------------------------------------------------

    def drop_head(self) -> None:
        self.head = None

    def sort_all_pieces(self, tape: CrackerTape) -> None:
        """Stable-sort every piece, logging :class:`SortEntry` events.

        Called before a cache-fitting head drop so future cracks of the
        (recovered) head are binary-search cheap; logging keeps siblings
        aligned.  The chunk must be aligned to the tape end.
        """
        if self.head is None:
            raise AlignmentError("cannot sort pieces without a head")
        if self.cursor != len(tape):
            raise AlignmentError("sort_all_pieces requires full alignment first")
        if self.pending_cracks:
            raise AlignmentError(
                "cannot sort pieces with progressive cracks in flight"
            )
        for piece in list(self.index.pieces(len(self.tail))):
            if piece.size <= 1:
                continue
            tape.append(SortEntry(piece.lo_bound, piece.hi_bound))
            sort_piece(self.head, [self.tail], piece.lo_pos, piece.hi_pos)
            self._recorder.sequential(2 * piece.size)
            self._recorder.write(2 * piece.size)
            self.cursor += 1

    def recover_head(
        self,
        tape: CrackerTape,
        source_head: np.ndarray,
        source_index: CrackerIndex,
        source_cursor: int,
        source_pending: PendingMap | None = None,
    ) -> None:
        """Rebuild the dropped head from a source state at ``source_cursor``.

        The source is either a sibling chunk's head (``source_cursor`` =
        sibling's cursor, must be ``<= self.cursor``; ``source_pending`` its
        in-flight crack state) or the chunk map's frozen area slice
        (``source_cursor == 0``, no pendings).  Entries between the two
        cursors are replayed on the head alone; every kernel's permutation
        depends only on head values, so the rebuilt head lands exactly
        aligned with this chunk's tail — and the evolved pending map is
        exactly this chunk's in-flight state.
        """
        if source_cursor > self.cursor:
            raise AlignmentError(
                "head recovery source is aligned past this chunk"
            )
        head = source_head.copy()
        index = source_index.clone()
        pending: PendingMap = {
            b: p.clone() for b, p in (source_pending or {}).items()
        }
        self._recorder.sequential(len(head))
        self._recorder.write(len(head))
        for i in range(source_cursor, self.cursor):
            entry = tape[i]
            if isinstance(entry, CrackEntry):
                crack_into(
                    index, head, [], entry.interval, self._recorder,
                    progress=CrackProgress(pending) if pending else None,
                )
            elif isinstance(entry, ProgressiveCrackEntry):
                replay_progressive(
                    index, head, [], pending, entry.bound, entry.step,
                    self._recorder,
                )
            elif isinstance(entry, InsertEntry):
                head, _ = merge_insertions(
                    index, head, [], entry.values, [], self._recorder
                )
            elif isinstance(entry, DeleteEntry):
                if entry.positions is None:
                    raise AlignmentError("delete entry has no located positions")
                head, _ = delete_positions(index, head, [], entry.positions, self._recorder)
            elif isinstance(entry, SortEntry):
                lo = 0 if entry.lo_bound is None else index.position_of(entry.lo_bound)
                hi = len(head) if entry.hi_bound is None else index.position_of(entry.hi_bound)
                if lo is None or hi is None:
                    raise AlignmentError("sort entry references unknown piece bounds")
                sort_piece(head, [], lo, hi)
        if len(head) != len(self.tail):
            raise AlignmentError("recovered head does not match tail length")
        self.head = head
        self.index = index
        self.pending_cracks = pending

    # -- invariants ------------------------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "chunk", deep=deep)
