"""Partial sideways cracking: the query-level facade.

Mirrors :class:`repro.core.sideways.SidewaysCracker` but materializes maps
chunk-wise.  Key behaviors from Section 4:

* **chunk-wise processing** — every operator handles one area at a time:
  load/create the chunk, align it, crack it if it is a boundary chunk, run
  the operator over it;
* **partial alignment** — chunks that will not be cracked are aligned only
  up to the maximum cursor of the sibling chunks used by the same query,
  not to the tape end;
* **monitored alignment** — a boundary chunk replays its tape only until the
  needed bound appears; cracking (and hence full alignment) happens only if
  the bound was never cracked before;
* **storage management** — chunk creation goes through a budgeted LFU
  storage manager; head columns can be dropped and recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.core.bitvector import BitVector
from repro.core.histogram import estimate_result_size
from repro.core.partial.chunk import Chunk
from repro.core.partial.chunkmap import Area, ChunkMap
from repro.core.partial.partial_map import KEY_TAIL, PartialMap
from repro.core.partial.storage import ChunkStorage
from repro.core.tape import (
    CrackEntry,
    DeleteEntry,
    InsertEntry,
    ProgressiveCrackEntry,
    SortEntry,
)
from repro.cracking.bounds import Bound, Interval, interval_from_bounds
from repro.cracking.crack import gang_replay_cracks, gang_replay_sort
from repro.cracking.pending import PendingUpdates
from repro.cracking.progressive import (
    BudgetTracker,
    CrackProgress,
    ProgressiveBudget,
    parse_budget,
)
from repro.cracking.stochastic import CrackPolicy, is_stochastic, policy_rng
from repro.cracking.ripple import (
    delete_positions,
    locate_deletions,
    merge_insertions,
)
from repro.errors import AlignmentError, PlanError
from repro.faults.guard import atomic
from repro.faults.plan import fault_hook
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.relation import Relation


@dataclass(frozen=True)
class PartialConfig:
    """Tuning knobs for partial sideways cracking.

    ``partial_alignment=False`` degrades every alignment to a full replay
    (the ablation baseline).  ``head_drop_mode`` is ``"off"``, ``"cold"``
    (drop heads of chunks not cracked for ``cold_threshold`` accesses), or
    ``"cache"`` (sort-then-drop once every piece fits ``cache_piece_tuples``).
    """

    partial_alignment: bool = True
    head_drop_mode: str = "off"
    cold_threshold: int = 8
    cache_piece_tuples: int = 4096
    max_chunk_tuples: int | None = None


class PartialMapSet:
    """The partial map set of one head attribute: chunk map + partial maps."""

    def __init__(
        self,
        relation: Relation,
        head_attr: str,
        storage: ChunkStorage,
        config: PartialConfig,
        recorder: StatsRecorder | None = None,
        excluded_keys: np.ndarray | None = None,
        policy: CrackPolicy | None = None,
        rng: np.random.Generator | None = None,
        budget: "ProgressiveBudget | str | float | int | None" = None,
    ) -> None:
        self.relation = relation
        self.head_attr = head_attr
        self.storage = storage
        self.config = config
        self._recorder = recorder or global_recorder()
        self.snapshot_rows = len(relation)
        self._excluded_keys = excluded_keys
        self.policy = policy
        self._rng = rng if rng is not None else policy_rng(0, "pset", head_attr)
        self.stochastic_cuts = 0
        self.chunkmap: ChunkMap | None = None
        self.maps: dict[str, PartialMap] = {}
        self.pending = PendingUpdates(n_tails=1)
        self.budget: ProgressiveBudget | None = None
        self._tracker: BudgetTracker | None = None
        self.set_budget(budget)
        register_structure(self, "partial_set", f"P_{head_attr}")

    def set_budget(
        self, budget: "ProgressiveBudget | str | float | int | None"
    ) -> None:
        """Install (or clear) the per-query progressive crack budget.

        The tracker is shared by every area this set cracks: one query gets
        one allowance (refreshed in :meth:`plan`), no matter how many
        boundary chunks it touches.
        """
        self.budget = parse_budget(budget)
        self._tracker = BudgetTracker(self.budget)

    # -- lazy construction --------------------------------------------------------

    def _chunkmap(self) -> ChunkMap:
        if self.chunkmap is None:
            self.chunkmap = ChunkMap(
                self.relation, self.head_attr, self.snapshot_rows,
                self._recorder, self._excluded_keys,
                policy=self.policy, rng=self._rng,
            )
            self.storage.register_chunkmap(self.chunkmap)
        return self.chunkmap

    def map_for(self, tail_attr: str) -> PartialMap:
        pmap = self.maps.get(tail_attr)
        if pmap is None:
            pmap = PartialMap(self._chunkmap(), tail_attr, self._recorder)
            self.maps[tail_attr] = pmap
            self.storage.register_map(pmap)
        return pmap

    # -- pending updates --------------------------------------------------------------

    def add_insertions(self, values: np.ndarray, keys: np.ndarray) -> None:
        self.pending.add_insertions(np.asarray(values), [np.asarray(keys, np.int64)])

    def add_deletions(self, values: np.ndarray, keys: np.ndarray) -> None:
        self.pending.add_deletions(values, keys)

    def merge_pending(self, interval: Interval | None = None) -> None:
        """Route pending updates: physical merges into unfetched ``H_A``
        regions, tape entries for fetched areas."""
        if not self.pending.has_pending(interval):
            return
        with atomic(self, "partial_set"):
            cmap = self._chunkmap()
            ins_values, ins_tails = self.pending.take_insertions(interval)
            if len(ins_values):
                self._route_insertions(cmap, ins_values, ins_tails[0])
            del_values, del_keys = self.pending.take_deletions(interval)
            if len(del_values):
                self._route_deletions(cmap, del_values, del_keys)

    def _area_membership(self, cmap: ChunkMap, values: np.ndarray) -> list[np.ndarray]:
        """Boolean masks grouping ``values`` by the area they belong to."""
        masks = []
        for area in cmap.areas:
            iv = interval_from_bounds(area.lo_bound, area.hi_bound)
            masks.append(iv.mask(values))
        return masks

    def _route_insertions(
        self, cmap: ChunkMap, values: np.ndarray, keys: np.ndarray
    ) -> None:
        unfetched_mask = np.zeros(len(values), dtype=bool)
        for area, mask in zip(cmap.areas, self._area_membership(cmap, values)):
            if not mask.any():
                continue
            if area.fetched:
                assert area.tape is not None
                self._finish_area_pendings(area)
                area.tape.append(InsertEntry(values[mask], keys[mask]))
            else:
                unfetched_mask |= mask
        if unfetched_mask.any():
            cmap.head, tails = merge_insertions(
                cmap.index, cmap.head, [cmap.keys],
                values[unfetched_mask], [keys[unfetched_mask]], self._recorder,
            )
            cmap.keys = tails[0]

    def _route_deletions(
        self, cmap: ChunkMap, values: np.ndarray, keys: np.ndarray
    ) -> None:
        unfetched_mask = np.zeros(len(values), dtype=bool)
        for area, mask in zip(cmap.areas, self._area_membership(cmap, values)):
            if not mask.any():
                continue
            if area.fetched:
                assert area.tape is not None
                self._finish_area_pendings(area)
                area.tape.append(DeleteEntry(values[mask], keys[mask]))
            else:
                unfetched_mask |= mask
        if unfetched_mask.any():
            positions = locate_deletions(
                cmap.index, cmap.head, cmap.keys,
                values[unfetched_mask], keys[unfetched_mask], self._recorder,
            )
            cmap.head, tails = delete_positions(
                cmap.index, cmap.head, [cmap.keys], positions, self._recorder
            )
            cmap.keys = tails[0]

    def _finish_area_pendings(self, area: Area) -> None:
        """Force-finish every in-flight progressive crack of one area.

        Ripple merges and deletes shift positions, which would invalidate the
        ``[left, right)`` markers of any pending crack; a deterministic
        force-finish entry per open bound drains them first, on the live
        chunks and on every later replayer alike.
        """
        if not area.open_pendings:
            return
        assert area.tape is not None
        for bound in sorted(area.open_pendings):
            area.tape.append(ProgressiveCrackEntry(bound, None))
        area.open_pendings.clear()

    # -- delete-entry location ----------------------------------------------------------

    def _ensure_located(self, area: Area, upto: int) -> None:
        """Locate victim positions for delete entries in ``[0, upto)``.

        Location runs over the area's key chunk (``M_Akey`` materialized
        chunk-wise), aligned to just before each entry; positions are cached
        on the entries as with full maps.
        """
        assert area.tape is not None
        pending_idx = [
            i for i in range(upto)
            if isinstance(area.tape[i], DeleteEntry) and area.tape[i].positions is None
        ]
        if not pending_idx:
            return
        key_pmap = self.map_for(KEY_TAIL)
        chunk = key_pmap.get_chunk(area)
        if chunk is None:
            chunk = self._create_chunk(key_pmap, area)
        for idx in pending_idx:
            entry = area.tape[idx]
            assert isinstance(entry, DeleteEntry)
            self._bring_to(key_pmap, chunk, area, idx)
            entry.positions = locate_deletions(
                chunk.index, chunk.head, chunk.tail,
                entry.values, entry.keys, self._recorder,
            )
            chunk.replay_entry(entry)

    # -- chunk management ------------------------------------------------------------------

    def _create_chunk(self, pmap: PartialMap, area: Area) -> Chunk:
        cmap = self._chunkmap()
        self.storage.ensure_room(cmap.area_size(area))
        chunk = pmap.create_chunk(area)
        self.storage.pin(pmap, area.area_id)
        return chunk

    def acquire_chunk(self, tail_attr: str, area: Area) -> tuple[PartialMap, Chunk]:
        pmap = self.map_for(tail_attr)
        chunk = pmap.get_chunk(area)
        if chunk is None:
            chunk = self._create_chunk(pmap, area)
        else:
            self.storage.pin(pmap, area.area_id)
        chunk.touch()
        return pmap, chunk

    def _bring_to(self, pmap: PartialMap, chunk: Chunk, area: Area, target: int) -> None:
        """Align a chunk to tape position ``target``, recovering its head
        and pre-locating delete positions as needed."""
        assert area.tape is not None
        if chunk.cursor >= target:
            return
        fault_hook("partial.align", chunk.head if chunk.head is not None else None)
        self._ensure_located(area, target)
        if chunk.head_dropped:
            self._recover_head(pmap, chunk, area)
        pmap.align_chunk(chunk, area, upto=target)

    def _recover_head(self, pmap: PartialMap, chunk: Chunk, area: Area) -> None:
        """Rebuild a dropped head from the best source (Section 4.1)."""
        assert area.tape is not None
        best: Chunk | None = None
        for sibling_map in self.maps.values():
            sibling = sibling_map.get_chunk(area)
            if (
                sibling is not None
                and sibling is not chunk
                and not sibling.head_dropped
                and sibling.cursor <= chunk.cursor
                and (best is None or sibling.cursor > best.cursor)
            ):
                best = sibling
        if best is not None:
            chunk.recover_head(
                area.tape, best.head, best.index, best.cursor,
                best.pending_cracks,
            )
        else:
            head_slice, _ = self._chunkmap().area_slice(area)
            from repro.cracking.avl import CrackerIndex

            chunk.recover_head(area.tape, head_slice, CrackerIndex(), 0)

    def _bring_group_to(
        self,
        area: Area,
        pairs: "list[tuple[PartialMap, Chunk]]",
        target: int,
    ) -> None:
        """Align several chunks of one area to ``target``, ganging replays.

        Chunks standing at the same cursor hold bit-identical heads (the
        ``aligned-head-equality`` invariant), so each crack/sort entry is
        replayed once through a shared permutation
        (:func:`~repro.cracking.crack.gang_replay_crack`) instead of being
        recomputed per chunk.  Chunks starting at different cursors are
        absorbed into the gang as soon as they catch up to its position.
        """
        assert area.tape is not None
        todo = [(pmap, chunk) for pmap, chunk in pairs if chunk.cursor < target]
        if not todo:
            return
        if len(todo) == 1:
            self._bring_to(todo[0][0], todo[0][1], area, target)
            return
        self._ensure_located(area, target)
        for pmap, chunk in todo:
            if chunk.head_dropped:
                self._recover_head(pmap, chunk, area)
        while True:
            active = [chunk for _, chunk in todo if chunk.cursor < target]
            if not active:
                break
            cursor = min(chunk.cursor for chunk in active)
            gang = [chunk for chunk in active if chunk.cursor == cursor]
            entry = area.tape[cursor]
            if (
                len(gang) > 1
                and isinstance(entry, CrackEntry)
                and not gang[0].pending_cracks
            ):
                # Batch the run of consecutive crack entries, stopping where
                # a straggler chunk would join the gang (its cursor) or at
                # ``target`` — crack-entry replay never opens pendings, so
                # the whole run stays gang-eligible.
                limit = min(
                    [target]
                    + [c.cursor for c in active if c.cursor > cursor]
                )
                run = [entry.interval]
                while cursor + len(run) < limit:
                    ahead = area.tape[cursor + len(run)]
                    if not isinstance(ahead, CrackEntry):
                        break
                    run.append(ahead.interval)
                fault_hook("partial.gang_replay")
                gang_replay_cracks(gang, run, self._recorder)
                for chunk in gang:
                    self._recorder.event("alignment_replays", len(run))
                    chunk.cursor += len(run)
            elif len(gang) > 1 and isinstance(entry, SortEntry):
                leader = gang[0]
                lo = (
                    0
                    if entry.lo_bound is None
                    else leader.index.position_of(entry.lo_bound)
                )
                hi = (
                    len(leader.tail)
                    if entry.hi_bound is None
                    else leader.index.position_of(entry.hi_bound)
                )
                if lo is None or hi is None:
                    raise AlignmentError("sort entry references unknown piece bounds")
                gang_replay_sort(gang, lo, hi, self._recorder)
                for chunk in gang:
                    self._recorder.event("alignment_replays")
                    chunk.cursor += 1
            else:
                for chunk in gang:
                    chunk.replay_entry(entry)

    # -- the per-area preparation core -------------------------------------------------------

    def prepare_area(
        self, area: Area, interval: Interval, tail_attrs: list[str]
    ) -> tuple[dict[str, tuple[Chunk, int, int]], list[tuple[int, int, np.ndarray]]]:
        """Align/crack the chunks of ``tail_attrs`` for one area and return
        each chunk with its certain qualifying slice ``[lo, hi)``, plus the
        uncertainty holes a progressive budget may have left behind.

        Implements monitored + partial alignment: the first chunk replays
        entries only until the needed bounds appear (or cracks at the tape
        end); every other chunk aligns to exactly the cursor the first one
        reached.  Each hole is ``(h_lo, h_hi, qualifies)`` with the head
        predicate evaluated once against the (shared, aligned) head values;
        the mask applies position-wise to every returned chunk.
        """
        assert area.tape is not None
        with atomic(self, "partial_set"):
            lower, upper = area.clip(interval)
            needed = [b for b in (lower, upper) if b is not None]
            ordered = list(tail_attrs)
            chunks: dict[str, tuple[PartialMap, Chunk]] = {}
            for attr in ordered:
                chunks[attr] = self.acquire_chunk(attr, area)

            baseline = max(chunk.cursor for _, chunk in chunks.values())
            # Never stop short of merged updates: membership must be current.
            baseline = max(baseline, area.tape.min_safe_cursor)
            if not self.config.partial_alignment:
                baseline = len(area.tape)

            first_map, first_chunk = chunks[ordered[0]]
            if needed:
                target = self._align_and_crack(first_map, first_chunk, area, needed,
                                               lower, upper, baseline)
            else:
                target = baseline
                self._bring_to(first_map, first_chunk, area, target)
            self._bring_group_to(area, [chunks[attr] for attr in ordered[1:]], target)

        out: dict[str, tuple[Chunk, int, int]] = {}
        qualified: list[tuple[int, int, np.ndarray]] = []
        for i, attr in enumerate(ordered):
            _, chunk = chunks[attr]
            lo, hi, holes = chunk.window_between(lower, upper)
            if i == 0 and holes:
                # Holes exist only when this query's crack ran out of budget,
                # and the crack path always recovers the first chunk's head.
                assert chunk.head is not None
                clipped = interval_from_bounds(lower, upper)
                for h_lo, h_hi in holes:
                    self._recorder.sequential(h_hi - h_lo)
                    qualified.append(
                        (h_lo, h_hi, clipped.mask(chunk.head[h_lo:h_hi]))
                    )
            out[attr] = (chunk, lo, hi)
        return out, qualified

    def _align_and_crack(
        self,
        pmap: PartialMap,
        chunk: Chunk,
        area: Area,
        needed: list[Bound],
        lower: Bound | None,
        upper: Bound | None,
        baseline: int,
    ) -> int:
        """Monitored alignment of a boundary chunk; returns the common cursor."""
        assert area.tape is not None
        self._bring_to(pmap, chunk, area, baseline)
        if self.config.partial_alignment:
            # Full alignment only while the bound is still missing; stop the
            # moment it shows up among the replayed cracks.
            while not chunk.bounds_present(needed) and chunk.cursor < len(area.tape):
                self._bring_to(pmap, chunk, area, chunk.cursor + 1)
        else:
            self._bring_to(pmap, chunk, area, len(area.tape))
        if chunk.bounds_present(needed):
            return chunk.cursor
        # Still missing: full alignment, then crack and log.
        self._bring_to(pmap, chunk, area, len(area.tape))
        if chunk.head_dropped:
            self._recover_head(pmap, chunk, area)
        clipped = interval_from_bounds(lower, upper)
        cuts: list[Bound] = []
        progress = self._progress(chunk)
        chunk.crack(clipped, self.policy, self._rng, cuts, progress)
        self.stochastic_cuts += len(cuts)
        if progress is not None:
            self._log_area_progress(area, clipped, progress)
        else:
            # Stochastic auxiliary cuts become explicit tape entries (before
            # the query's own crack) so sibling chunks and head recovery
            # replay the identical sequence without consulting the policy.
            for pivot in cuts:
                area.tape.append(CrackEntry(interval_from_bounds(pivot, None)))
            area.tape.append_crack(clipped)
        chunk.cursor = len(area.tape)
        checkpoint_crack(self, "partial_set")
        return chunk.cursor

    def _progress(self, chunk: Chunk) -> CrackProgress | None:
        """The progressive context for cracking one boundary chunk."""
        if self.budget is not None:
            return CrackProgress(chunk.pending_cracks, self._tracker)
        if chunk.pending_cracks:
            return CrackProgress(chunk.pending_cracks)
        return None

    def _log_area_progress(
        self, area: Area, interval: Interval, progress: CrackProgress
    ) -> None:
        """Log what a progressive crack physically did, in temporal order.

        Eager per-bound cracks (with their auxiliary cuts interleaved at the
        position they actually ran) become one-sided :class:`CrackEntry`
        records; each budgeted step becomes a :class:`ProgressiveCrackEntry`.
        ``area.open_pendings`` tracks the bounds still in flight at the tape
        end so updates can force-finish them deterministically.
        """
        assert area.tape is not None
        if not progress.ops:
            if progress.holes:
                # The budget was exhausted before any work happened; logging
                # a crack entry would make replayers do work the live chunk
                # never did.
                return
            area.tape.append_crack(interval)
            return
        for op in progress.ops:
            if op[0] == "eager":
                _, bound, op_cuts = op
                for pivot in op_cuts:
                    area.tape.append(CrackEntry(interval_from_bounds(pivot, None)))
                area.tape.append(CrackEntry(interval_from_bounds(bound, None)))
            else:
                _, bound, k, done = op
                area.tape.append(ProgressiveCrackEntry(bound, k))
                if done:
                    area.open_pendings.discard(bound)
                else:
                    area.open_pendings.add(bound)

    # -- invariants ------------------------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "partial_set", deep=deep)

    # -- planning --------------------------------------------------------------------------------

    def plan(self, interval: Interval) -> list[Area]:
        """Merge relevant pending updates and cover ``interval`` with areas.

        The returned areas are pinned (they stay fetched even if eviction
        drops all their chunks mid-query); callers must :meth:`release` them.
        """
        with atomic(self, "partial_set"):
            cmap = self._chunkmap()
            if self.budget is not None:
                assert self._tracker is not None
                self._tracker.begin_query(self.snapshot_rows)
            self.merge_pending(interval)
            areas = cmap.cover(interval, self.config.max_chunk_tuples)
        for area in areas:
            area.pin_count += 1
        return areas

    def release(self, areas: list[Area]) -> None:
        for area in areas:
            area.pin_count -= 1

    # -- head-drop policy ---------------------------------------------------------------------------

    def apply_head_drop_policy(self, used: list[tuple[str, Area]]) -> None:
        mode = self.config.head_drop_mode
        if mode == "off":
            return
        for attr, area in used:
            pmap = self.maps.get(attr)
            chunk = pmap.get_chunk(area) if pmap else None
            if chunk is None or chunk.head_dropped:
                continue
            if mode == "cold":
                # Never-cracked chunks are used "as is" and qualify too.
                idle = chunk.accesses - chunk.last_crack_access
                if idle >= self.config.cold_threshold:
                    chunk.drop_head()
            elif mode == "cache":
                assert area.tape is not None
                if chunk.cursor != len(area.tape):
                    continue
                if area.open_pendings or chunk.pending_cracks:
                    # Sorting would destroy in-flight partition markers.
                    continue
                pieces = list(chunk.index.pieces(len(chunk)))
                if pieces and max(p.size for p in pieces) <= self.config.cache_piece_tuples:
                    chunk.sort_all_pieces(area.tape)
                    chunk.drop_head()

    def storage_cells(self) -> int:
        cells = sum(p.storage_cells for p in self.maps.values())
        if self.chunkmap is not None:
            cells += self.chunkmap.storage_cells
        return cells


class PartialSidewaysCracker:
    """Partial sideways cracking over one relation (public facade)."""

    def __init__(
        self,
        relation: Relation,
        budget_tuples: int | None = None,
        config: PartialConfig | None = None,
        recorder: StatsRecorder | None = None,
        storage: ChunkStorage | None = None,
        tombstone_keys=None,
        policy: CrackPolicy | None = None,
        crack_seed: int = 0,
        crack_budget: "ProgressiveBudget | str | float | int | None" = None,
    ) -> None:
        self.relation = relation
        self.config = config or PartialConfig()
        self._recorder = recorder or global_recorder()
        self.storage = storage or ChunkStorage(budget_tuples, self._recorder)
        self._tombstone_keys = tombstone_keys
        self.policy = policy
        self.crack_seed = crack_seed
        self.crack_budget = parse_budget(crack_budget)
        self.sets: dict[str, PartialMapSet] = {}
        self._domain_cache: dict[str, tuple[float, float]] = {}

    def set_crack_budget(
        self, budget: "ProgressiveBudget | str | float | int | None"
    ) -> None:
        """Install (or clear) the progressive budget on all map sets."""
        self.crack_budget = parse_budget(budget)
        for pset in self.sets.values():
            pset.set_budget(self.crack_budget)

    def set_for(self, head_attr: str) -> PartialMapSet:
        pset = self.sets.get(head_attr)
        if pset is None:
            dead = None
            if self._tombstone_keys is not None:
                dead = np.asarray(self._tombstone_keys(), dtype=np.int64)
            pset = PartialMapSet(
                self.relation, head_attr, self.storage, self.config,
                self._recorder, excluded_keys=dead,
                policy=self.policy,
                rng=policy_rng(self.crack_seed, "pset", self.relation.name, head_attr),
                budget=self.crack_budget,
            )
            self.sets[head_attr] = pset
        return pset

    # -- updates ----------------------------------------------------------------------

    def notify_insertions(self, rows: dict[str, np.ndarray], keys: np.ndarray) -> None:
        for head_attr, pset in self.sets.items():
            pset.add_insertions(np.asarray(rows[head_attr]), keys)

    def notify_deletions(self, values_by_attr: dict[str, np.ndarray], keys: np.ndarray) -> None:
        for head_attr, pset in self.sets.items():
            pset.add_deletions(np.asarray(values_by_attr[head_attr]), keys)

    # -- estimation ---------------------------------------------------------------------

    def _domain(self, attr: str) -> tuple[float, float]:
        cached = self._domain_cache.get(attr)
        if cached is None:
            values = self.relation.values(attr)
            self._recorder.sequential(len(values))
            cached = (float(values.min()), float(values.max())) if len(values) else (0.0, 0.0)
            self._domain_cache[attr] = cached
        return cached

    def estimate_count(self, attr: str, interval: Interval) -> float:
        lo, hi = self._domain(attr)
        pset = self.sets.get(attr)
        if pset is not None and pset.chunkmap is not None and len(pset.chunkmap.index):
            cmap = pset.chunkmap
            return estimate_result_size(cmap.index, len(cmap), interval, lo, hi).value
        n = len(self.relation)
        span = hi - lo
        if span <= 0:
            return float(n)
        plo = lo if interval.lo is None else max(lo, min(hi, interval.lo))
        phi = hi if interval.hi is None else max(lo, min(hi, interval.hi))
        return max(0.0, (phi - plo) / span * n)

    def choose_head(self, predicates: dict[str, Interval], conjunctive: bool = True) -> str:
        if not predicates:
            raise PlanError("a multi-selection plan needs at least one predicate")
        scored = sorted(
            (self.estimate_count(attr, iv), attr) for attr, iv in predicates.items()
        )
        return scored[0][1] if conjunctive else scored[-1][1]

    # -- queries ---------------------------------------------------------------------------

    def select_project(
        self, head_attr: str, interval: Interval, projections: list[str]
    ) -> dict[str, np.ndarray]:
        """Single selection, chunk-wise multi-projection."""
        pset = self.set_for(head_attr)
        areas = pset.plan(interval)
        try:
            parts: dict[str, list[np.ndarray]] = {attr: [] for attr in projections}
            used: list[tuple[str, Area]] = []
            for area in areas:
                prepared, holes = pset.prepare_area(area, interval, projections)
                for attr in projections:
                    chunk, lo, hi = prepared[attr]
                    parts[attr].append(
                        _gather_window(self._recorder, chunk, lo, hi, holes)
                    )
                    used.append((attr, area))
            out = {attr: _concat(parts[attr]) for attr in projections}
            pset.apply_head_drop_policy(used)
            return out
        finally:
            pset.release(areas)
            self.storage.unpin_all()

    def query(
        self,
        predicates: dict[str, Interval],
        projections: list[str],
        conjunctive: bool = True,
        head_attr: str | None = None,
    ) -> dict[str, np.ndarray]:
        if head_attr is None:
            head_attr = self.choose_head(predicates, conjunctive)
        if head_attr not in predicates:
            raise PlanError(f"head attribute {head_attr!r} has no predicate")
        if conjunctive:
            return self._conjunctive(head_attr, predicates, projections)
        return self._disjunctive(head_attr, predicates, projections)

    def _conjunctive(
        self, head_attr: str, predicates: dict[str, Interval], projections: list[str]
    ) -> dict[str, np.ndarray]:
        pset = self.set_for(head_attr)
        head_interval = predicates[head_attr]
        others = [(a, iv) for a, iv in predicates.items() if a != head_attr]
        attrs = [a for a, _ in others] + [p for p in projections if p not in
                                          {a for a, _ in others}]
        areas = pset.plan(head_interval)
        try:
            parts: dict[str, list[np.ndarray]] = {attr: [] for attr in projections}
            used: list[tuple[str, Area]] = []
            for area in areas:
                prepared, holes = pset.prepare_area(area, head_interval, attrs)
                bv: BitVector | None = None
                for attr, iv in others:
                    chunk, lo, hi = prepared[attr]
                    mask = iv.mask(
                        _gather_window(self._recorder, chunk, lo, hi, holes)
                    )
                    if bv is None:
                        bv = BitVector.from_mask(mask)
                    else:
                        bv.refine_and(mask)
                    used.append((attr, area))
                for attr in projections:
                    chunk, lo, hi = prepared[attr]
                    values = _gather_window(self._recorder, chunk, lo, hi, holes)
                    parts[attr].append(values[bv.bits] if bv is not None else values)
                    used.append((attr, area))
            out = {attr: _concat(parts[attr]) for attr in projections}
            pset.apply_head_drop_policy(used)
            return out
        finally:
            pset.release(areas)
            self.storage.unpin_all()

    def _disjunctive(
        self, head_attr: str, predicates: dict[str, Interval], projections: list[str]
    ) -> dict[str, np.ndarray]:
        pset = self.set_for(head_attr)
        head_interval = predicates[head_attr]
        others = [(a, iv) for a, iv in predicates.items() if a != head_attr]
        attrs = [a for a, _ in others] + [p for p in projections if p not in
                                          {a for a, _ in others}]
        # Disjunctions must inspect the areas outside w, i.e. everything.
        everything = Interval()
        areas = pset.plan(everything)
        try:
            parts: dict[str, list[np.ndarray]] = {attr: [] for attr in projections}
            used: list[tuple[str, Area]] = []
            lower = head_interval.lower_bound()
            upper = head_interval.upper_bound()
            for area in areas:
                effective = head_interval if area.overlaps(lower, upper) else None
                prepared, holes = pset.prepare_area(
                    area, effective if effective is not None else everything, attrs
                )
                first_chunk, w_lo, w_hi = next(iter(prepared.values()))
                if effective is None:
                    w_lo = w_hi = 0
                    holes = []
                bv = BitVector(len(first_chunk))
                bv.set_range(w_lo, w_hi)
                for h_lo, h_hi, qual in holes:
                    bv.bits[h_lo:h_hi] |= qual
                for attr, iv in others:
                    chunk, _, _ = prepared[attr]
                    self._recorder.sequential(len(chunk) - (w_hi - w_lo))
                    bv.bits[:w_lo] |= iv.mask(chunk.tail[:w_lo])
                    bv.bits[w_hi:] |= iv.mask(chunk.tail[w_hi:])
                    used.append((attr, area))
                for attr in projections:
                    chunk, _, _ = prepared[attr]
                    self._recorder.sequential(len(chunk))
                    parts[attr].append(chunk.tail[bv.bits])
                    used.append((attr, area))
            out = {attr: _concat(parts[attr]) for attr in projections}
            pset.apply_head_drop_policy(used)
            return out
        finally:
            pset.release(areas)
            self.storage.unpin_all()

    # -- bookkeeping -----------------------------------------------------------------------------

    def storage_tuples(self) -> float:
        return sum(s.storage_cells() for s in self.sets.values()) / 2

    def describe_state(self) -> str:
        """A human-readable summary of the chunk-wise organized state."""
        lines = [f"partial sideways cracker over {self.relation.name!r}: "
                 f"{len(self.sets)} map set(s), "
                 f"{self.storage_tuples():,.0f} tuples of auxiliary storage"]
        if is_stochastic(self.policy):
            lines.append(f"  crack policy: {self.policy.describe()}")
        for head, pset in sorted(self.sets.items()):
            if pset.chunkmap is None:
                lines.append(f"  set S_{head}: (chunk map not yet created)")
                continue
            areas = pset.chunkmap.areas
            fetched = sum(a.fetched for a in areas)
            stochastic_note = ""
            if is_stochastic(self.policy):
                cuts = pset.stochastic_cuts + pset.chunkmap.stochastic_cuts
                stochastic_note = f", {cuts} stochastic cut(s)"
            lines.append(
                f"  set S_{head}: {len(areas)} areas ({fetched} fetched), "
                f"{len(pset.maps)} partial map(s)" + stochastic_note
            )
            for tail, pmap in sorted(pset.maps.items()):
                dropped = sum(c.head_dropped for c in pmap.chunks.values())
                lines.append(
                    f"    {pmap.name}: {len(pmap.chunks)} chunk(s), "
                    f"{len(pmap):,} tuples, {dropped} head-dropped"
                )
        return "\n".join(lines)


def _gather_window(
    recorder: StatsRecorder,
    chunk: Chunk,
    lo: int,
    hi: int,
    holes: list[tuple[int, int, np.ndarray]],
) -> np.ndarray:
    """Tail values of the certain window plus every qualifying hole row.

    All chunks of one prepared area are aligned (identical head order), so
    the precomputed per-hole qualification masks apply position-wise to each
    of them; gathering in (window, hole, hole, ...) order keeps the rows of
    different attributes aligned with each other.
    """
    recorder.sequential(hi - lo)
    if not holes:
        return chunk.tail[lo:hi]
    parts = [chunk.tail[lo:hi]]
    for h_lo, h_hi, qual in holes:
        recorder.sequential(h_hi - h_lo)
        parts.append(chunk.tail[h_lo:h_hi][qual])
    return np.concatenate(parts)


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
