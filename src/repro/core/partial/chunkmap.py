"""Chunk maps ``H_A`` and their areas.

The chunk map stores ``(A, key)`` pairs for the whole snapshot and serves as
the source partial maps fetch chunks from.  Its cracker index partitions it
into *areas*:

* an **unfetched** area may still be cracked inside ``H_A`` (to isolate
  exactly the value range a query needs before fetching it);
* a **fetched** area is frozen in ``H_A`` — cracking it further would break
  the alignment of chunks already created from it — and carries its own
  cracker tape plus the set of partial maps referencing it.

Area edges are crack boundaries of ``H_A``'s index, so area positions are
always read from the index (they shift automatically when updates grow or
shrink ``H_A``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.core.tape import CrackerTape
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Bound, Interval, Side
from repro.cracking.crack import crack_bound
from repro.cracking.stochastic import CrackPolicy, policy_rng
from repro.errors import CrackError
from repro.faults.plan import fault_hook
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.relation import Relation

_area_ids = itertools.count()


@dataclass
class Area:
    """One value-range area of a chunk map.

    ``lo_bound``/``hi_bound`` are ``H_A`` index boundaries (``None`` at the
    extremes).  ``tape`` and ``refs`` exist only while the area is fetched.
    """

    lo_bound: Bound | None
    hi_bound: Bound | None
    fetched: bool = False
    tape: CrackerTape | None = None
    refs: set[str] = field(default_factory=set)
    area_id: int = field(default_factory=lambda: next(_area_ids))
    pin_count: int = 0
    #: Bounds with a progressive (budgeted) chunk-level crack still in
    #: flight at the area tape's end.
    open_pendings: set[Bound] = field(default_factory=set)

    def overlaps(self, lower: Bound | None, upper: Bound | None) -> bool:
        """Does this area overlap the boundary range ``[lower, upper)``?"""
        if upper is not None and self.lo_bound is not None and upper <= self.lo_bound:
            return False
        if lower is not None and self.hi_bound is not None and self.hi_bound <= lower:
            return False
        return True

    def contains_strictly(self, bound: Bound) -> bool:
        """Is ``bound`` strictly inside this area (not at an edge)?"""
        lo_ok = self.lo_bound is None or self.lo_bound < bound
        hi_ok = self.hi_bound is None or bound < self.hi_bound
        return lo_ok and hi_ok

    def clip(self, interval: Interval) -> tuple[Bound | None, Bound | None]:
        """The interval's bounds that fall strictly inside this area.

        Returns ``(lower, upper)`` where a ``None`` entry means the area edge
        already isolates that side (no chunk-level crack needed).
        """
        lower = interval.lower_bound()
        upper = interval.upper_bound()
        lo = lower if lower is not None and self.contains_strictly(lower) else None
        hi = upper if upper is not None and self.contains_strictly(upper) else None
        return lo, hi


class ChunkMap:
    """The ``(A, key)`` chunk map of one map set."""

    def __init__(
        self,
        relation: Relation,
        head_attr: str,
        snapshot_rows: int,
        recorder: StatsRecorder | None = None,
        excluded_keys: np.ndarray | None = None,
        policy: CrackPolicy | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.relation = relation
        self.head_attr = head_attr
        self._recorder = recorder or global_recorder()
        self.policy = policy
        self._rng = rng if rng is not None else policy_rng(0, "chunkmap", head_attr)
        self.stochastic_cuts = 0
        self.head: np.ndarray = relation.values(head_attr)[:snapshot_rows].copy()
        self.keys: np.ndarray = np.arange(snapshot_rows, dtype=np.int64)
        if excluded_keys is not None and len(excluded_keys):
            keep = ~np.isin(self.keys, np.asarray(excluded_keys, dtype=np.int64))
            self.head = self.head[keep]
            self.keys = self.keys[keep]
        self.index = CrackerIndex()
        self.areas: list[Area] = [Area(lo_bound=None, hi_bound=None)]
        self._recorder.sequential(2 * snapshot_rows)
        self._recorder.write(2 * snapshot_rows)
        self._recorder.event("map_creations")
        register_structure(self, "chunkmap", f"H_{head_attr}")

    def __len__(self) -> int:
        return len(self.head)

    @property
    def storage_cells(self) -> int:
        return 2 * len(self.head)

    # -- positions -------------------------------------------------------------

    def position_of(self, bound: Bound | None, default: int) -> int:
        if bound is None:
            return default
        pos = self.index.position_of(bound)
        if pos is None:
            raise CrackError(f"area edge {bound} is not an H_A boundary")
        return pos

    def area_positions(self, area: Area) -> tuple[int, int]:
        lo = self.position_of(area.lo_bound, 0)
        hi = self.position_of(area.hi_bound, len(self.head))
        return lo, hi

    def area_size(self, area: Area) -> int:
        lo, hi = self.area_positions(area)
        return hi - lo

    def area_slice(self, area: Area) -> tuple[np.ndarray, np.ndarray]:
        """The frozen ``(A values, keys)`` content of an area."""
        lo, hi = self.area_positions(area)
        fault_hook("chunkmap.fetch", self.head[lo:hi])
        self._recorder.sequential(2 * (hi - lo))
        return self.head[lo:hi], self.keys[lo:hi]

    def area_of_id(self, area_id: int) -> Area:
        for area in self.areas:
            if area.area_id == area_id:
                return area
        raise CrackError(f"no area with id {area_id}")

    # -- covering a predicate ------------------------------------------------------

    def cover(self, interval: Interval, max_area_tuples: int | None = None) -> list[Area]:
        """Fetched areas covering ``interval``, fetching/cracking as needed.

        Boundary predicates falling inside *unfetched* areas crack ``H_A``
        first so only the relevant sub-range is fetched; bounds inside
        *fetched* areas are left to chunk-level cracking.

        ``max_area_tuples`` enables cache-conscious chunk-size enforcement
        (paper §7 future work): an unfetched area about to be fetched is
        first median-split until every resulting area fits the budget, so no
        chunk ever exceeds it.
        """
        lower = interval.lower_bound()
        upper = interval.upper_bound()
        for bound in (lower, upper):
            if bound is None:
                continue
            area = self._unfetched_area_containing(bound)
            if area is not None:
                self._split_unfetched(area, bound)

        out: list[Area] = []
        index = 0
        while index < len(self.areas):
            area = self.areas[index]
            if not area.overlaps(lower, upper):
                index += 1
                continue
            if not area.fetched:
                if self._promote_interior(area):
                    continue  # re-examine the split pieces at this index
                if max_area_tuples is not None and self._median_split(
                    area, max_area_tuples
                ):
                    continue  # re-examine the two halves at this index
                self._fetch(area)
            out.append(area)
            index += 1
        return out

    def _promote_interior(self, area: Area) -> bool:
        """Promote interior index boundaries of an unfetched area to edges.

        Auxiliary (stochastic) cuts are left as plain ``H_A`` boundaries when
        an unfetched area is split (:meth:`_split_unfetched`); only when the
        area is actually about to be *fetched* do they become area edges, so
        a never-queried value range costs no area bookkeeping.  Returns True
        when a promotion split happened (the caller re-examines the pieces).
        """
        interior = [
            bound for bound, _ in self.index.inorder()
            if area.contains_strictly(bound)
        ]
        if not interior:
            return False
        self._replace_area(area, interior)
        return True

    def _median_split(self, area: Area, max_tuples: int) -> bool:
        """Split an oversized unfetched area at its median value.

        Returns True when a split happened (the caller re-examines the
        halves).  Degenerate value distributions (median equal to an edge)
        stop the recursion rather than looping.
        """
        lo, hi = self.area_positions(area)
        if hi - lo <= max_tuples:
            return False
        segment = self.head[lo:hi]
        median = Bound(float(np.median(segment)), Side.LE)
        if not area.contains_strictly(median):
            alt = Bound(float(np.median(segment)), Side.LT)
            if not area.contains_strictly(alt):
                return False
            median = alt
        self._split_unfetched(area, median)
        return True

    def _unfetched_area_containing(self, bound: Bound) -> Area | None:
        for area in self.areas:
            if not area.fetched and area.contains_strictly(bound):
                return area
        return None

    def _split_unfetched(self, area: Area, bound: Bound) -> None:
        """Crack ``H_A`` at ``bound``, splitting an unfetched area.

        A stochastic policy may cut the area in extra places; those auxiliary
        cuts stay *interior* ``H_A`` boundaries of the resulting unfetched
        pieces — they are promoted to area edges lazily, only when a piece is
        about to be fetched (:meth:`_promote_interior`).  Fetched areas
        therefore never contain interior boundaries (the invariant tape
        folding relies on), while never-fetched ranges avoid the area
        bookkeeping entirely.
        """
        cuts: list[Bound] = []
        crack_bound(
            self.index, self.head, [self.keys], bound, self._recorder,
            policy=self.policy, rng=self._rng, cut_sink=cuts,
        )
        self.stochastic_cuts += len(cuts)
        self._replace_area(area, [bound])

    def _replace_area(self, area: Area, edges: list[Bound]) -> None:
        """Split ``area`` at ``edges`` (existing ``H_A`` boundaries)."""
        idx = self.areas.index(area)
        pieces: list[Area] = []
        lo = area.lo_bound
        for edge in sorted(set(edges)):
            pieces.append(Area(lo_bound=lo, hi_bound=edge))
            lo = edge
        pieces.append(Area(lo_bound=lo, hi_bound=area.hi_bound))
        self.areas[idx:idx + 1] = pieces
        checkpoint_crack(self, "chunkmap")

    def _fetch(self, area: Area) -> None:
        area.fetched = True
        area.tape = CrackerTape()
        area.refs = set()
        area.open_pendings = set()

    # -- reference bookkeeping ----------------------------------------------------------

    def add_ref(self, area: Area, map_name: str) -> None:
        area.refs.add(map_name)

    def drop_ref(self, area: Area, map_name: str) -> None:
        """Drop a partial map's reference; unfetch the area when none remain.

        An unfetched area's tape is discarded, but any net updates it carried
        (insert/delete entries) are folded back into ``H_A`` first so no
        primary information is lost.
        """
        area.refs.discard(map_name)
        if area.refs or area.pin_count > 0:
            # Keep the fetched state (and tape) while a query is using the
            # area, even if no chunk currently materializes it.
            return
        self._fold_tape_into_region(area)
        area.fetched = False
        area.tape = None

    def _fold_tape_into_region(self, area: Area) -> None:
        """Materialize an area tape's insert/delete effects into ``H_A``."""
        assert area.tape is not None
        from repro.core.tape import DeleteEntry, InsertEntry

        has_updates = any(
            isinstance(e, (InsertEntry, DeleteEntry)) for e in area.tape.entries
        )
        if not has_updates:
            return
        lo, hi = self.area_positions(area)
        # Accumulate into buffers sized for the worst case (all inserts land,
        # no deletes match) instead of reconcatenating per entry — the old
        # growth loop copied the whole region once per insert entry.
        base = hi - lo
        capacity = base + sum(
            len(e.values) for e in area.tape.entries if isinstance(e, InsertEntry)
        )
        head_acc = np.empty(capacity, dtype=self.head.dtype)
        keys_acc = np.empty(capacity, dtype=self.keys.dtype)
        head_acc[:base] = self.head[lo:hi]
        keys_acc[:base] = self.keys[lo:hi]
        n = base
        for entry in area.tape.entries:
            if isinstance(entry, InsertEntry):
                end = n + len(entry.values)
                head_acc[n:end] = entry.values
                keys_acc[n:end] = entry.keys
                n = end
            elif isinstance(entry, DeleteEntry):
                keep = ~np.isin(keys_acc[:n], entry.keys)
                kept = int(np.count_nonzero(keep))
                head_acc[:kept] = head_acc[:n][keep]
                keys_acc[:kept] = keys_acc[:n][keep]
                n = kept
        delta = n - base
        self.head = np.concatenate([self.head[:lo], head_acc[:n], self.head[hi:]])
        self.keys = np.concatenate([self.keys[:lo], keys_acc[:n], self.keys[hi:]])
        if delta:
            self.index.apply_shifts([(hi, delta)])
        self._recorder.sequential(2 * n)
        self._recorder.write(2 * n)
        checkpoint_crack(self, "chunkmap")

    # -- invariants -------------------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "chunkmap", deep=deep)
