"""A small SQL front-end over the engine layer.

Supports the query shapes the paper evaluates — single-table selections,
projections, and aggregates with conjunctive or disjunctive range/equality
predicates::

    SELECT max(A2), A3 FROM R WHERE 10 < A1 AND A1 < 20 AND A4 = 7
    SELECT B FROM R WHERE A BETWEEN 5 AND 9 OR C >= 100
    SELECT count(*) FROM lineitem WHERE l_shipmode = 'AIR'
    SELECT g, sum(v) FROM T WHERE f < 100 GROUP BY g

The grammar is deliberately tiny (one table, no joins — use
:class:`~repro.engine.query.JoinQuery` and the operators for those), but it
resolves string literals against dictionary-encoded columns, merges
multiple comparisons on one attribute into a single interval, supports
GROUP BY with per-group aggregates, and rejects mixed AND/OR (the engines
evaluate one connective per plan, like the paper's plans do).

Use :func:`parse` to get a :class:`~repro.engine.query.Query`, or
:func:`execute` to run it on an engine directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cracking.bounds import Interval
from repro.engine.base import Engine
from repro.engine.database import Database
from repro.engine.query import AGGREGATE_FUNCS, Predicate, Query, QueryResult
from repro.errors import PlanError, PredicateError

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<op><=|>=|<>|!=|<|>|=)"
    r"|(?P<punct>[(),*])"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r")"
)

_KEYWORDS = {"select", "from", "where", "and", "or", "between", "not",
             "group", "by"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == "":
                break
            raise PlanError(f"cannot tokenize SQL at: {sql[pos:pos + 20]!r}")
        pos = match.end()
        for kind in ("number", "string", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], db: Database) -> None:
        self._tokens = tokens
        self._pos = 0
        self._db = db

    # -- token stream helpers ----------------------------------------------------

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PlanError("unexpected end of SQL")
        self._pos += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self._next()
        if token.kind != "word" or token.lowered != word:
            raise PlanError(f"expected {word.upper()!r}, got {token.text!r}")

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != punct:
            raise PlanError(f"expected {punct!r}, got {token.text!r}")

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.lowered == word:
            self._pos += 1
            return True
        return False

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word" or token.lowered in _KEYWORDS:
            raise PlanError(f"expected identifier, got {token.text!r}")
        return token.text

    # -- grammar --------------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_word("select")
        items = self._select_list()
        self._expect_word("from")
        table = self._identifier()
        predicates: tuple[Predicate, ...] = ()
        conjunctive = True
        if self._accept_word("where"):
            predicates, conjunctive = self._where(table)
        group_by: tuple[str, ...] = ()
        if self._accept_word("group"):
            self._expect_word("by")
            keys = [self._identifier()]
            while True:
                token = self._peek()
                if token is not None and token.kind == "punct" and token.text == ",":
                    self._pos += 1
                    keys.append(self._identifier())
                else:
                    break
            group_by = tuple(keys)
        if self._peek() is not None:
            raise PlanError(f"trailing input: {self._peek().text!r}")

        projections = []
        aggregates = []
        for kind, func, attr in items:
            if kind == "column":
                projections.append(attr)
            else:
                aggregates.append((func, attr))
        # count(*) counts qualifying rows via any referenced attribute.
        resolved_aggs = []
        for func, attr in aggregates:
            if attr == "*":
                if func != "count":
                    raise PlanError(f"{func}(*) is not supported")
                candidates = [p.attr for p in predicates] + projections
                if not candidates:
                    candidates = self._db.table(table).attributes[:1]
                attr = candidates[0]
            resolved_aggs.append((func, attr))
        return Query(
            table=table,
            predicates=predicates,
            projections=tuple(projections),
            aggregates=tuple(resolved_aggs),
            conjunctive=conjunctive,
            group_by=group_by,
        )

    def _select_list(self) -> list[tuple[str, str, str]]:
        items = []
        while True:
            items.append(self._select_item())
            token = self._peek()
            if token is not None and token.kind == "punct" and token.text == ",":
                self._pos += 1
                continue
            return items

    def _select_item(self) -> tuple[str, str, str]:
        token = self._next()
        if token.kind == "word" and token.lowered in AGGREGATE_FUNCS:
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
                self._pos += 1
                inner = self._next()
                if inner.kind == "punct" and inner.text == "*":
                    attr = "*"
                elif inner.kind == "word":
                    attr = inner.text
                else:
                    raise PlanError(f"bad aggregate argument {inner.text!r}")
                self._expect_punct(")")
                return ("aggregate", token.lowered, attr)
        if token.kind != "word" or token.lowered in _KEYWORDS:
            raise PlanError(f"expected column or aggregate, got {token.text!r}")
        return ("column", "", token.text)

    def _where(self, table: str) -> tuple[tuple[Predicate, ...], bool]:
        comparisons = [self._comparison(table)]
        connective: str | None = None
        while True:
            if self._accept_word("and"):
                seen = "and"
            elif self._accept_word("or"):
                seen = "or"
            else:
                break
            if connective is not None and seen != connective:
                raise PlanError("mixed AND/OR is not supported")
            connective = seen
            comparisons.append(self._comparison(table))
        conjunctive = connective != "or"
        merged: dict[str, Interval] = {}
        for attr, interval in comparisons:
            if attr in merged:
                if not conjunctive:
                    raise PlanError(
                        f"multiple OR-predicates on {attr!r} are not supported"
                    )
                merged[attr] = _intersect_intervals(merged[attr], interval, attr)
            else:
                merged[attr] = interval
        predicates = tuple(Predicate(a, iv) for a, iv in merged.items())
        return predicates, conjunctive

    def _comparison(self, table: str) -> tuple[str, Interval]:
        left = self._next()
        if left.kind == "word" and left.lowered not in _KEYWORDS:
            attr = left.text
            if self._accept_word("between"):
                lo = self._literal(table, attr)
                self._expect_word("and")
                hi = self._literal(table, attr)
                return attr, Interval.closed(lo, hi)
            op = self._next()
            if op.kind != "op":
                raise PlanError(f"expected comparison operator, got {op.text!r}")
            value = self._literal(table, attr)
            return attr, _interval_for(op.text, value, attr_on_left=True)
        if left.kind in ("number", "string"):
            op = self._next()
            if op.kind != "op":
                raise PlanError(f"expected comparison operator, got {op.text!r}")
            attr = self._identifier()
            value = self._literal_token(table, attr, left)
            return attr, _interval_for(op.text, value, attr_on_left=False)
        raise PlanError(f"bad comparison start {left.text!r}")

    def _literal(self, table: str, attr: str) -> float:
        return self._literal_token(table, attr, self._next())

    def _literal_token(self, table: str, attr: str, token: _Token) -> float:
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            raw = token.text[1:-1].replace("''", "'")
            dictionary = self._db.table(table).column(attr).dictionary
            if dictionary is None:
                raise PlanError(
                    f"{table}.{attr} is not a string column; got {raw!r}"
                )
            return dictionary.code_of(raw)
        raise PlanError(f"expected literal, got {token.text!r}")


def _interval_for(op: str, value: float, attr_on_left: bool) -> Interval:
    if not attr_on_left:
        # `5 < A` means `A > 5`: mirror the operator.
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}.get(op, op)
    if op == "<":
        return Interval.at_most(value, inclusive=False)
    if op == "<=":
        return Interval.at_most(value, inclusive=True)
    if op == ">":
        return Interval.at_least(value, inclusive=False)
    if op == ">=":
        return Interval.at_least(value, inclusive=True)
    if op == "=":
        return Interval.point(value)
    raise PlanError(f"operator {op!r} is not supported")


def _intersect_intervals(a: Interval, b: Interval, attr: str) -> Interval:
    lo, lo_inc = a.lo, a.lo_inclusive
    if b.lo is not None and (lo is None or b.lo > lo or (b.lo == lo and not b.lo_inclusive)):
        lo, lo_inc = b.lo, b.lo_inclusive
    hi, hi_inc = a.hi, a.hi_inclusive
    if b.hi is not None and (hi is None or b.hi < hi or (b.hi == hi and not b.hi_inclusive)):
        hi, hi_inc = b.hi, b.hi_inclusive
    try:
        return Interval(lo, hi, lo_inclusive=lo_inc, hi_inclusive=hi_inc)
    except PredicateError as exc:  # empty / inverted after intersection
        raise PlanError(f"contradictory predicates on {attr!r}") from exc


def parse(sql: str, db: Database) -> Query:
    """Parse ``sql`` into a :class:`Query` (dictionary literals resolved)."""
    return _Parser(_tokenize(sql), db).parse()


def execute(sql: str, engine: Engine) -> QueryResult:
    """Parse and run ``sql`` on ``engine``."""
    return engine.run(parse(sql, engine.db))
