"""FaultSan: a deterministic, seedable failpoint registry.

A :class:`FaultPlan` arms named *injection sites* threaded through the hot
mutation paths (crack kernels, arena allocation, tape append, map alignment,
gang replay, chunk fetch, ripple merge).  Each site is a single
:func:`fault_hook` call; when no plan is installed the hook is one global
``None`` check, so the fault-free path stays effectively free.

Plans are written as a comma-separated spec string::

    site[@N[..M]]=kind[,site[@N[..M]]=kind...]

``N`` is the 1-based *hit count* at which the fault fires (default 1: the
first time the site is reached).  ``N..M`` arms the spec for *every* hit in
the inclusive range — a multi-shot fault that keeps firing until the site
has been visited ``M`` times, which is how plans express several
simultaneous armed failpoints (the engine's recovery loop must converge
once all shots are spent).  ``kind`` is one of:

* ``error``   — raise :class:`repro.errors.InjectedFault` (default);
* ``oom``     — raise :class:`repro.errors.ArenaPressure`; only meaningful at
  ``arena.alloc``, where the fused kernels fall back to the allocation-free
  ``reference`` backend;
* ``corrupt`` — flip payload values in place at a payload-carrying site and
  mark the plan *dirty*; the atomic guard then forces a deep validation so
  CrackSan checksums catch the damage.

Hit counting is per-site and deterministic: the same workload under the same
plan injects at exactly the same operation every run.  Corruption uses an RNG
seeded from ``(seed, site)`` so the flipped positions replay too.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArenaPressure, InjectedFault, ReproError
from repro.server.locks import Mutex

ENV_VAR = "REPRO_FAULTS"

#: Every registered failpoint site.  Docs and the chaos CI job iterate this;
#: ``fault_hook`` refuses unknown names so the catalog can never drift from
#: the instrumented code.
SITES: tuple[str, ...] = (
    "kernels.crack_two",
    "kernels.crack_three",
    "kernels.sort_piece",
    "kernels.progressive_step",
    "crack.crack_bound",
    "arena.alloc",
    "tape.append",
    "mapset.align",
    "mapset.gang_replay",
    "partial.align",
    "partial.gang_replay",
    "chunkmap.fetch",
    "ripple.merge_insertions",
    "ripple.delete_positions",
    "persist.save",
    "persist.load",
    "procpool.worker",
    "procpool.retry",
    "procpool.breaker",
)

KINDS: tuple[str, ...] = ("error", "oom", "corrupt")

#: Sites whose hook passes an array payload, i.e. where ``corrupt`` can act.
PAYLOAD_SITES: frozenset[str] = frozenset(
    {
        "kernels.crack_two",
        "kernels.crack_three",
        "kernels.sort_piece",
        "kernels.progressive_step",
        "mapset.align",
        "partial.align",
        "chunkmap.fetch",
        "ripple.merge_insertions",
        "persist.save",
        "persist.load",
    }
)


class FaultPlanError(ReproError):
    """A fault-plan spec string is malformed or names an unknown site."""


@dataclass
class FaultSpec:
    """One armed failpoint: fire ``kind`` on the ``hit``-th visit to ``site``.

    With ``hit_end`` set the spec is *multi-shot*: it fires on every visit in
    the inclusive ``[hit, hit_end]`` range.
    """

    site: str
    hit: int = 1
    kind: str = "error"
    hit_end: int | None = None

    def matches(self, count: int) -> bool:
        """Does this spec fire on the ``count``-th visit to its site?"""
        return self.hit <= count <= (self.hit_end or self.hit)

    def shots(self) -> int:
        """How many times this spec can fire in total."""
        return (self.hit_end or self.hit) - self.hit + 1

    def describe(self) -> str:
        if self.hit_end is not None:
            return f"{self.site}@{self.hit}..{self.hit_end}={self.kind}"
        return f"{self.site}@{self.hit}={self.kind}"


@dataclass
class FaultPlan:
    """A set of armed failpoints plus the injection bookkeeping.

    ``hits`` counts visits per site (grows even after the fault fired, so a
    plan can report coverage); ``injected`` logs every fault actually fired;
    ``dirty`` flags that a ``corrupt`` fault mutated live data — the atomic
    guard uses it to force deep validation on an otherwise clean commit.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 42
    hits: dict[str, int] = field(default_factory=dict)
    injected: list[str] = field(default_factory=list)
    dirty: bool = False
    #: Hit counting must stay deterministic per *site* even when several
    #: serving threads reach hooks concurrently; the lock makes each visit's
    #: count-then-match atomic.  (Cross-site interleaving is inherently
    #: schedule-dependent; per-site counts are not.)
    _lock: Mutex = field(
        default_factory=lambda: Mutex("faultplan"), repr=False, compare=False
    )

    @classmethod
    def parse(cls, spec: str, seed: int = 42) -> "FaultPlan":
        """Parse ``site[@N[..M]]=kind`` comma-separated spec into a plan."""
        specs: list[FaultSpec] = []
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            site_part, _, kind = part.partition("=")
            kind = kind.strip() or "error"
            site, _, hit_part = site_part.strip().partition("@")
            site = site.strip()
            lo_part, dots, hi_part = hit_part.partition("..")
            try:
                hit = int(lo_part) if lo_part else 1
                hit_end = int(hi_part) if dots else None
            except ValueError:
                raise FaultPlanError(f"bad hit count in fault spec {part!r}") from None
            if site not in SITES:
                raise FaultPlanError(
                    f"unknown fault site {site!r}; registered sites: {', '.join(SITES)}"
                )
            if kind not in KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r} in {part!r}; have {', '.join(KINDS)}"
                )
            if hit < 1:
                raise FaultPlanError(f"hit count must be >= 1 in {part!r}")
            if hit_end is not None and hit_end < hit:
                raise FaultPlanError(f"empty hit range in {part!r}")
            if kind == "corrupt" and site not in PAYLOAD_SITES:
                raise FaultPlanError(
                    f"site {site!r} carries no payload; 'corrupt' applies only to: "
                    + ", ".join(sorted(PAYLOAD_SITES))
                )
            specs.append(FaultSpec(site=site, hit=hit, kind=kind, hit_end=hit_end))
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        return ",".join(s.describe() for s in self.specs)

    def total_shots(self) -> int:
        """Upper bound on how many faults this plan can ever fire.

        The engine recovery loop uses this to bound its retries: once every
        shot is spent the workload must run clean, so a query that still
        fails afterwards is a real bug, not an injection.
        """
        return sum(spec.shots() for spec in self.specs)

    # -- injection -----------------------------------------------------------

    def visit(self, site: str, payload: np.ndarray | None) -> None:
        """Record one visit to ``site`` and fire any spec armed for this hit."""
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            armed = [
                spec for spec in self.specs
                if spec.site == site and spec.matches(count)
            ]
            for spec in armed:
                self.injected.append(spec.describe())
        for spec in armed:
            if spec.kind == "oom":
                raise ArenaPressure(site, f"injected at hit #{count}")
            if spec.kind == "corrupt":
                self._corrupt(site, payload)
                continue
            raise InjectedFault(site, count, spec.kind)

    def _corrupt(self, site: str, payload: np.ndarray | None) -> None:
        if payload is None or getattr(payload, "size", 0) == 0:
            return
        # zlib.crc32 (not hash()) keeps the flip position stable across
        # processes regardless of PYTHONHASHSEED.
        rng = np.random.default_rng((self.seed, zlib.crc32(site.encode())))
        flat = payload.reshape(-1)
        idx = int(rng.integers(0, flat.shape[0]))
        if flat.dtype == np.bool_:
            flat[idx] = not bool(flat[idx])
        elif np.issubdtype(flat.dtype, np.integer):
            flat[idx] = flat[idx] ^ np.asarray(0x5A, dtype=flat.dtype)
        else:
            flat[idx] = flat[idx] + 1.0
        self.dirty = True


# ---------------------------------------------------------------------------
# Module-level active plan + the hook the instrumented sites call.
# ---------------------------------------------------------------------------

_ACTIVE_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, or ``None`` when faults are off."""
    return _ACTIVE_PLAN


def install_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide active plan; returns the old one."""
    global _ACTIVE_PLAN
    prev = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return prev


def uninstall_plan() -> None:
    install_plan(None)


def fault_hook(site: str, payload: np.ndarray | None = None) -> None:
    """The failpoint.  Near-free when no plan is armed (one ``None`` check).

    ``site`` must be registered in :data:`SITES`; ``payload`` is the array a
    ``corrupt`` fault may flip in place (omit at sites with no natural
    payload).  Raises :class:`InjectedFault` / :class:`ArenaPressure` when
    the active plan says this visit should fail.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    # Sites reached from validation/replay scratch work (CrackSan's ghost
    # structures, journal rollback checks) stay inert: faults target the
    # production mutation paths, and firing here would corrupt the validator
    # itself and make hit counts depend on the sanitize level.
    from repro.analysis.sanitizer import is_suspended

    if is_suspended():
        return
    if site not in _SITE_SET:
        raise FaultPlanError(f"fault_hook called with unregistered site {site!r}")
    plan.visit(site, payload)


_SITE_SET = frozenset(SITES)


def resolve_plan(
    explicit: "FaultPlan | str | None" = None, seed: int = 42
) -> FaultPlan | None:
    """Resolve a plan from an explicit value or the ``$REPRO_FAULTS`` env var.

    Mirrors ``repro.analysis.sanitizer.resolve_level``: an explicit argument
    wins; otherwise the environment variable is consulted; empty/absent means
    no faults.
    """
    if isinstance(explicit, FaultPlan):
        return explicit
    if isinstance(explicit, str):
        return FaultPlan.parse(explicit, seed=seed) if explicit.strip() else None
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return FaultPlan.parse(env, seed=seed)
    return None
