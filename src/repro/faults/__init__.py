"""FaultSan: deterministic fault injection + atomic, self-healing reorganization.

Public surface:

* :class:`FaultPlan` / :func:`fault_hook` / :data:`SITES` — the failpoint
  registry (:mod:`repro.faults.plan`);
* :func:`atomic` / :func:`quarantine` / :func:`is_quarantined` — the
  journal-backed guards (:mod:`repro.faults.guard`);
* :mod:`repro.faults.journal` — the per-structure snapshot machinery.

See ``docs/faults.md`` for the site catalog, the plan spec grammar, and the
rollback/quarantine lifecycle.
"""

from repro.faults.guard import (
    RECOVERABLE,
    atomic,
    is_quarantined,
    quarantine,
    quarantine_reason,
)
from repro.faults.plan import (
    ENV_VAR,
    KINDS,
    PAYLOAD_SITES,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    active_plan,
    fault_hook,
    install_plan,
    resolve_plan,
    uninstall_plan,
)

__all__ = [
    "ENV_VAR",
    "KINDS",
    "PAYLOAD_SITES",
    "RECOVERABLE",
    "SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "active_plan",
    "atomic",
    "fault_hook",
    "install_plan",
    "is_quarantined",
    "quarantine",
    "quarantine_reason",
    "resolve_plan",
    "uninstall_plan",
]
