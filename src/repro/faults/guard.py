"""Atomic reorganization: journal-backed guards, rollback, and quarantine.

:func:`atomic` wraps every outer reorganization operation (cracker-column
select/merge, map-set select/align/merge, partial-set plan/prepare/merge).
Semantics:

* **disarmed** (no fault plan, journal not forced): zero overhead beyond one
  module-level check — no snapshot, no validation;
* **armed**: the structure is snapshotted through
  :mod:`repro.faults.journal`; if the operation raises a *recoverable*
  failure (an :class:`InjectedFault`, any :class:`CrackError`, or a
  :class:`MemoryError`), the snapshot is restored and the restored state is
  deep-validated — a structure that *still* fails validation is quarantined
  (and later dropped + lazily rebuilt by ``Database.heal_faults``); the
  original exception is re-raised so the engine layer can re-answer the
  query through the scan fallback;
* on a *clean* exit with a dirty plan (a ``corrupt`` fault fired during the
  op), the structure is deep-validated anyway; detected corruption triggers
  the same rollback/quarantine path and raises the violations, because the
  already-computed answer may derive from the corrupted data.

Guards are re-entrant: an inner guarded call inside an outer guarded op is a
no-op, so rollback always restores to the outermost operation boundary.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.analysis import sanitizer
from repro.errors import CrackError, InjectedFault, InvariantError, InvariantViolation
from repro.faults import journal
from repro.faults.plan import active_plan

#: Exception types the recovery machinery treats as survivable: everything
#: else (CatalogError, PredicateError, programming errors, ...) propagates.
RECOVERABLE: tuple[type[BaseException], ...] = (InjectedFault, CrackError, MemoryError)

#: Re-entrancy depth is per thread: two serving workers guarding different
#: structures concurrently must each get their own journal snapshot, while an
#: inner guarded call on the *same* thread stays a no-op.
_GUARD = threading.local()

#: Arm the journal without any fault specs (exp15 measures its overhead).
FORCE_JOURNAL = False


def quarantine(obj: object, reason: str) -> None:
    """Flag a structure as unrecoverable; ``Database.heal_faults`` drops it."""
    obj._quarantined = reason  # type: ignore[attr-defined]


def is_quarantined(obj: object) -> bool:
    return getattr(obj, "_quarantined", None) is not None


def quarantine_reason(obj: object) -> str | None:
    return getattr(obj, "_quarantined", None)


def _validate(structure, kind: str) -> list[InvariantViolation]:
    """Deep-validate one structure, returning (not raising) its violations."""
    from repro.analysis import invariants

    with sanitizer.suspended():
        return invariants.check(structure, kind, deep=True)


def _rollback(structure, kind: str, restore, cause: str) -> None:
    """Restore the snapshot; quarantine the structure if it is still broken."""
    with sanitizer.suspended():
        restore()
    if _validate(structure, kind):
        quarantine(structure, cause)


@contextmanager
def atomic(structure, kind: str) -> Iterator[None]:
    """Guard one reorganization op on ``structure`` (journal + rollback)."""
    plan = active_plan()
    depth = getattr(_GUARD, "depth", 0)
    if (plan is None and not FORCE_JOURNAL) or depth > 0:
        yield
        return
    restore = journal.take_snapshot(structure, kind)
    _GUARD.depth = depth + 1
    try:
        try:
            yield
        except RECOVERABLE as exc:
            _rollback(structure, kind, restore, f"rollback failed after {exc!r}")
            raise
        if plan is not None and plan.dirty:
            plan.dirty = False
            violations = _validate(structure, kind)
            if violations:
                _rollback(structure, kind, restore, "rollback failed after corruption")
                raise InvariantError.from_violations(violations)
    finally:
        _GUARD.depth = depth
