"""Mutation journal: lightweight pre-op snapshots for atomic reorganization.

A guarded operation (see :mod:`repro.faults.guard`) snapshots the structure
it is about to mutate; if the operation fails mid-way the snapshot restores
the exact pre-op state — arrays, cracker indices, cursors, tapes (via
:meth:`~repro.core.tape.CrackerTape.truncate`), pending buffers, RNG state —
so deterministic replay is preserved across a rollback.

Snapshots are taken *only while a fault plan is armed* (or the journal is
explicitly forced for measurement), so the fault-free production path never
pays the copy.  Copies are value-level (``ndarray.copy``, ``index.clone``),
not ``deepcopy``: tape *entries* recorded before the snapshot are shared —
the only post-hoc mutation they ever see is delete-position caching, which
is deterministic and idempotent, hence safe to keep across a rollback.

Each snapshot returns a zero-argument ``restore()`` closure.
"""

from __future__ import annotations

import copy
from typing import Callable

import numpy as np

from repro.errors import CrackError


def _snap_rng(rng: np.random.Generator | None):
    if rng is None:
        return None
    return copy.deepcopy(rng.bit_generator.state)


def _restore_rng(rng: np.random.Generator | None, state) -> None:
    if rng is not None and state is not None:
        rng.bit_generator.state = state


def _snap_pending(pending):
    return (
        pending.ins_head.copy(),
        [t.copy() for t in pending.ins_tails],
        pending.del_values.copy(),
        pending.del_keys.copy(),
    )


def _restore_pending(pending, snap) -> None:
    ins_head, ins_tails, del_values, del_keys = snap
    pending.ins_head = ins_head
    pending.ins_tails = list(ins_tails)
    pending.del_values = del_values
    pending.del_keys = del_keys


def _snap_pending_cracks(pending_cracks):
    """Value-copy the in-flight progressive crack state of one structure."""
    return {bound: p.clone() for bound, p in pending_cracks.items()}


def _snap_tracker(tracker):
    if tracker is None:
        return None
    return (tracker._remaining, tracker.spent_last_query)


def _restore_tracker(tracker, snap) -> None:
    if tracker is not None and snap is not None:
        tracker._remaining, tracker.spent_last_query = snap


# ---------------------------------------------------------------------------
# Per-structure snapshots.
# ---------------------------------------------------------------------------


def _snap_column(col) -> Callable[[], None]:
    head = col.head.copy()
    keys = col.keys.copy()
    index = col.index.clone()
    pending = _snap_pending(col.pending)
    cracks_in_flight = _snap_pending_cracks(col.pending_cracks)
    tracker = _snap_tracker(col._tracker)
    cuts = col.stochastic_cuts
    rng = _snap_rng(col._rng)

    def restore() -> None:
        col.head = head
        col.keys = keys
        col.index = index
        _restore_pending(col.pending, pending)
        col.pending_cracks = cracks_in_flight
        _restore_tracker(col._tracker, tracker)
        col.stochastic_cuts = cuts
        _restore_rng(col._rng, rng)

    return restore


def _snap_mapset(ms) -> Callable[[], None]:
    maps = {
        attr: (m, m.head.copy(), m.tail.copy(), m.index.clone(), m.cursor,
               m.accesses, _snap_pending_cracks(m.pending_cracks))
        for attr, m in ms.maps.items()
    }
    tape_len = len(ms.tape)
    min_safe = ms.tape.min_safe_cursor
    pending = _snap_pending(ms.pending)
    open_pendings = set(ms.open_pendings)
    tracker = _snap_tracker(ms._tracker)
    sig = ms._sig
    cuts = ms.stochastic_cuts
    rng = _snap_rng(ms._rng)

    def restore() -> None:
        from repro.faults.guard import quarantine

        for attr in list(ms.maps):
            if attr not in maps:
                # Created during the failed op: discard it.  Quarantine makes
                # sanitizer sweeps skip the orphan even if a stray reference
                # keeps it alive past this rollback.
                quarantine(ms.maps[attr], "discarded by rollback")
                del ms.maps[attr]
                if ms._storage is not None:
                    ms._storage.unregister(ms, attr)
        for attr, (m, head, tail, index, cursor, accesses, cracks) in maps.items():
            m.head = head
            m.tail = tail
            m.index = index
            m.cursor = cursor
            m.accesses = accesses
            m.pending_cracks = cracks
            # The op may have evicted the map; the snapshot resurrects it.
            ms.maps[attr] = m
            if ms._storage is not None:
                ms._storage.register(ms, attr, m)
        ms.tape.truncate(tape_len)
        ms.tape.min_safe_cursor = min_safe
        _restore_pending(ms.pending, pending)
        ms.open_pendings = set(open_pendings)
        _restore_tracker(ms._tracker, tracker)
        ms._sig = sig
        ms.stochastic_cuts = cuts
        _restore_rng(ms._rng, rng)

    return restore


def _snap_partial_set(ps) -> Callable[[], None]:
    cm = ps.chunkmap
    cm_state = None
    if cm is not None:
        area_states = [
            (
                area,
                area.lo_bound,
                area.hi_bound,
                area.fetched,
                area.tape,
                0 if area.tape is None else len(area.tape),
                0 if area.tape is None else area.tape.min_safe_cursor,
                set(area.refs),
                area.pin_count,
                set(area.open_pendings),
            )
            for area in cm.areas
        ]
        cm_state = (
            cm.head.copy(),
            cm.keys.copy(),
            cm.index.clone(),
            list(cm.areas),
            area_states,
            cm.stochastic_cuts,
            _snap_rng(cm._rng),
        )
    maps = {}
    for attr, pmap in ps.maps.items():
        chunks = {
            aid: (
                chunk,
                None if chunk.head is None else chunk.head.copy(),
                chunk.tail.copy(),
                chunk.index.clone(),
                chunk.cursor,
                chunk.accesses,
                chunk.cracks_seen,
                chunk.last_crack_access,
                _snap_pending_cracks(chunk.pending_cracks),
            )
            for aid, chunk in pmap.chunks.items()
        }
        maps[attr] = (pmap, chunks)
    pending = _snap_pending(ps.pending)
    tracker = _snap_tracker(ps._tracker)
    cuts = ps.stochastic_cuts
    rng = _snap_rng(ps._rng)

    def restore() -> None:
        from repro.faults.guard import quarantine

        if cm_state is None:
            # The chunk map was created during the failed op: discard it so
            # the next query rebuilds it from the base relation.  Quarantine
            # + storage unregistration keep sanitizer sweeps away from the
            # orphan and let it be collected.
            if ps.chunkmap is not None:
                quarantine(ps.chunkmap, "discarded by rollback")
                ps.storage.unregister_chunkmap(ps.chunkmap)
            ps.chunkmap = None
        else:
            head, keys, index, area_order, area_states, cm_cuts, cm_rng = cm_state
            cm.head = head
            cm.keys = keys
            cm.index = index
            cm.areas = list(area_order)
            for (area, lo, hi, fetched, tape, tlen, msc, refs, pins,
                 opens) in area_states:
                area.lo_bound = lo
                area.hi_bound = hi
                area.fetched = fetched
                area.tape = tape
                if tape is not None:
                    tape.truncate(tlen)
                    tape.min_safe_cursor = msc
                area.refs = refs
                area.pin_count = pins
                area.open_pendings = opens
            cm.stochastic_cuts = cm_cuts
            _restore_rng(cm._rng, cm_rng)
            ps.chunkmap = cm
        for attr in list(ps.maps):
            if attr not in maps:
                pmap = ps.maps[attr]
                for chunk in pmap.chunks.values():
                    quarantine(chunk, "discarded by rollback")
                ps.storage.unregister_map(pmap)
                del ps.maps[attr]
        for attr, (pmap, chunks) in maps.items():
            ps.maps[attr] = pmap
            for aid in list(pmap.chunks):
                if aid not in chunks:
                    quarantine(pmap.chunks[aid], "discarded by rollback")
                    del pmap.chunks[aid]
            for aid, (chunk, head, tail, index, cursor, acc, seen, last,
                      cracks) in chunks.items():
                chunk.head = head
                chunk.tail = tail
                chunk.index = index
                chunk.cursor = cursor
                chunk.accesses = acc
                chunk.cracks_seen = seen
                chunk.last_crack_access = last
                chunk.pending_cracks = cracks
                pmap.chunks[aid] = chunk
        _restore_pending(ps.pending, pending)
        _restore_tracker(ps._tracker, tracker)
        ps.stochastic_cuts = cuts
        _restore_rng(ps._rng, rng)

    return restore


_SNAPSHOTTERS = {
    "column": _snap_column,
    "mapset": _snap_mapset,
    "partial_set": _snap_partial_set,
}


def take_snapshot(structure, kind: str) -> Callable[[], None]:
    """Snapshot ``structure`` and return a ``restore()`` closure."""
    snap = _SNAPSHOTTERS.get(kind)
    if snap is None:
        raise CrackError(f"no journal snapshotter for structure kind {kind!r}")
    return snap(structure)
