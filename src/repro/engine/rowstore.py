"""A minimal N-ary row-store reference ("MySQL" in Fig. 14).

Rows live in a NumPy structured array; every scan pays for full tuple width
regardless of how many attributes a query touches — the cost profile the
column-store architecture exists to avoid.  A presorted variant keeps one
row array per selection attribute, sorted, and answers range selections with
a binary search plus a contiguous row-range scan.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import Engine, SideHandle
from repro.engine.presorted import sorted_range
from repro.engine.query import JoinSide, Query
from repro.stats.timing import PhaseTimer
from repro.storage.relation import Relation


def _as_struct(relation: Relation) -> np.ndarray:
    dtype = [(attr, relation.column(attr).values.dtype) for attr in relation.attributes]
    out = np.empty(len(relation), dtype=dtype)
    for attr in relation.attributes:
        out[attr] = relation.values(attr)
    return out


class RowStoreEngine(Engine):
    """Tuple-at-a-time row store, optionally with presorted row copies."""

    def __init__(self, db, presorted: bool = False) -> None:
        super().__init__(db)
        self.presorted = presorted
        self.name = "rowstore_presorted" if presorted else "rowstore"
        self._rows: dict[str, np.ndarray] = {}
        self._sorted_rows: dict[tuple[str, str], np.ndarray] = {}
        self.presort_seconds = 0.0

    def _row_array(self, table: str) -> np.ndarray:
        rows = self._rows.get(table)
        if rows is None:
            rows = _as_struct(self.db.table(table))
            self._rows[table] = rows
        return rows

    def _sorted_row_array(self, table: str, attr: str) -> np.ndarray:
        import time

        key = (table, attr)
        rows = self._sorted_rows.get(key)
        if rows is None:
            start = time.perf_counter()
            rows = np.sort(self._row_array(table), order=attr)
            self.presort_seconds += time.perf_counter() - start
            self._sorted_rows[key] = rows
        return rows

    def _width(self, table: str) -> int:
        return len(self.db.table(table).attributes)

    def _select_rows(
        self, table: str, predicates, conjunctive: bool, timer: PhaseTimer
    ) -> np.ndarray:
        width = self._width(table)
        live = ~self.db.tombstones(table)
        with timer.phase("select"):
            if self.presorted and predicates and conjunctive:
                ordered = self.order_by_selectivity(table, list(predicates))
                first = ordered[0]
                rows = self._sorted_row_array(table, first.attr)
                lo, hi = sorted_range(rows[first.attr], first.interval)
                segment = rows[lo:hi]
                self.recorder.sequential((hi - lo) * width)
                mask = np.ones(hi - lo, dtype=bool)
                for pred in ordered[1:]:
                    mask &= pred.interval.mask(segment[pred.attr])
                return segment[mask]
            rows = self._row_array(table)
            self.recorder.sequential(len(rows) * width)
            if not predicates:
                return rows[live]
            masks = [p.interval.mask(rows[p.attr]) for p in predicates]
            mask = np.logical_and.reduce(masks) if conjunctive else np.logical_or.reduce(masks)
            mask &= live
            return rows[mask]

    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        rows = self._select_rows(
            query.table, query.predicates, query.conjunctive, timer
        )
        with timer.phase("reconstruct"):
            # Rows already carry every attribute; projection is free.
            return {attr: rows[attr].copy() for attr in query.needed_columns}

    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        rows = self._select_rows(side.table, side.predicates, True, timer)
        width = self._width(side.table)
        recorder = self.recorder

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            if subset is None:
                recorder.sequential(len(rows))
                return rows[attr].copy()
            recorder.random(len(subset) * width, max(1, len(rows) * width))
            return rows[subset][attr]

        return SideHandle(count=len(rows), fetch=fetch)
