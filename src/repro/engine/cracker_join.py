"""Cracker joins (a paper §3.4 / §7 future-work item).

"A join can be performed in a partitioned like way exploiting disjoint
ranges in the input maps."  Two cracked columns joined on their head values
already carry partitioning information: their cracker indices split the
value domain into disjoint ranges.  This module refines both sides to a
*common* boundary set (cracking, so the work is retained for future
queries) and then joins piece against piece — each piece pair is small and
cache-resident, where a monolithic hash join probes a table-sized hash
structure.
"""

from __future__ import annotations

import numpy as np

from repro.cracking.bounds import Bound
from repro.cracking.column import CrackerColumn
from repro.cracking.crack import crack_bound
from repro.engine.join import hash_join
from repro.stats.counters import StatsRecorder, global_recorder


def common_refinement(left: CrackerColumn, right: CrackerColumn,
                      recorder: StatsRecorder | None = None) -> list[Bound]:
    """Crack both sides at the union of their boundary sets.

    Afterwards both indices contain exactly the same bounds, so piece ``k``
    on the left holds the same value range as piece ``k`` on the right.
    """
    recorder = recorder or global_recorder()
    bounds = sorted(set(left.index.bounds()) | set(right.index.bounds()))
    for bound in bounds:
        crack_bound(left.index, left.head, [left.keys], bound, recorder)
        crack_bound(right.index, right.head, [right.keys], bound, recorder)
    return bounds


def cracker_join(
    left: CrackerColumn,
    right: CrackerColumn,
    recorder: StatsRecorder | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join two cracker columns on their head values, piece-wise.

    Returns ``(left_keys, right_keys)`` of all matching tuple pairs.  The
    more cracked the inputs, the smaller the piece pairs and the cheaper
    the join — self-organization pays off across operators, not only
    selections.
    """
    recorder = recorder or global_recorder()
    common_refinement(left, right, recorder)
    left_pieces = list(left.index.pieces(len(left)))
    right_pieces = list(right.index.pieces(len(right)))
    assert len(left_pieces) == len(right_pieces)

    left_out: list[np.ndarray] = []
    right_out: list[np.ndarray] = []
    for lp, rp in zip(left_pieces, right_pieces):
        if lp.size == 0 or rp.size == 0:
            continue
        lvals = left.head[lp.lo_pos:lp.hi_pos]
        rvals = right.head[rp.lo_pos:rp.hi_pos]
        # Piece-local join: probes hit a piece-sized region only.
        recorder.sequential(lp.size + rp.size)
        recorder.random(lp.size, rp.size)
        li, ri = _join_piece(lvals, rvals)
        if len(li):
            left_out.append(left.keys[lp.lo_pos:lp.hi_pos][li])
            right_out.append(right.keys[rp.lo_pos:rp.hi_pos][ri])
    if not left_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(left_out), np.concatenate(right_out)


def _join_piece(lvals: np.ndarray, rvals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(rvals, kind="stable")
    rsorted = rvals[order]
    starts = np.searchsorted(rsorted, lvals, side="left")
    ends = np.searchsorted(rsorted, lvals, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    li = np.repeat(np.arange(len(lvals), dtype=np.int64), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    ri = order[np.repeat(starts, counts) + within]
    return li, ri


def monolithic_join(
    left: CrackerColumn,
    right: CrackerColumn,
    recorder: StatsRecorder | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The baseline: one hash join over the whole columns (keys returned)."""
    recorder = recorder or global_recorder()
    li, ri = hash_join(left.head, right.head, recorder)
    return left.keys[li], right.keys[ri]
