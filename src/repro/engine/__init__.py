"""Execution engines: the paper's four systems plus a row-store reference.

Every engine answers the same :class:`~repro.engine.query.Query` /
:class:`~repro.engine.query.JoinQuery` objects and returns a
:class:`~repro.engine.query.QueryResult` with per-phase wall-clock timings
and an access-pattern tally, so benchmark harnesses can compare systems
directly:

* :class:`~repro.engine.scan.PlainEngine` — non-cracking column-store
  ("MonetDB" in the paper's figures);
* :class:`~repro.engine.presorted.PresortedEngine` — per-selection-attribute
  presorted table copies ("presorted MonetDB");
* :class:`~repro.engine.selection_cracking.SelectionCrackingEngine` — cracker
  columns [CIDR'07];
* :class:`~repro.engine.sideways_engine.SidewaysEngine` — sideways cracking,
  full or partial maps (this paper);
* :class:`~repro.engine.rowstore.RowStoreEngine` — N-ary row-at-a-time
  reference ("MySQL", optionally presorted).
"""

from repro.engine.database import Database
from repro.engine.presorted import PresortedEngine
from repro.engine.query import JoinQuery, JoinSide, Predicate, Query, QueryResult
from repro.engine.rowstore import RowStoreEngine
from repro.engine.scan import PlainEngine
from repro.engine.selection_cracking import SelectionCrackingEngine
from repro.engine.sideways_engine import SidewaysEngine

__all__ = [
    "Database",
    "Query",
    "JoinQuery",
    "JoinSide",
    "Predicate",
    "QueryResult",
    "PlainEngine",
    "PresortedEngine",
    "SelectionCrackingEngine",
    "SidewaysEngine",
    "RowStoreEngine",
]
