"""The presorted baseline ("presorted MonetDB").

For every selection attribute the engine keeps a whole-table copy sorted on
that attribute (built on demand; build time is reported separately, exactly
like the paper excludes presorting cost from its figures).  Selections are
binary searches yielding a contiguous slice; every reconstruction is a
sequential read of that small slice.
"""

from __future__ import annotations

import numpy as np

from repro.cracking.bounds import Interval
from repro.engine.base import Engine, SideHandle
from repro.engine.query import JoinSide, Query
from repro.stats.timing import PhaseTimer
from repro.storage.relation import Relation


def sorted_range(values: np.ndarray, interval: Interval) -> tuple[int, int]:
    """The slice ``[lo, hi)`` of a sorted array qualifying ``interval``."""
    lo = 0
    hi = len(values)
    if interval.lo is not None:
        side = "left" if interval.lo_inclusive else "right"
        lo = int(np.searchsorted(values, interval.lo, side=side))
    if interval.hi is not None:
        side = "right" if interval.hi_inclusive else "left"
        hi = int(np.searchsorted(values, interval.hi, side=side))
    return lo, max(lo, hi)


class PresortedEngine(Engine):
    """Multiple presorted copies, one per selection attribute."""

    name = "presorted"

    def __init__(self, db, then_by: dict[str, tuple[str, ...]] | None = None) -> None:
        super().__init__(db)
        self.presort_seconds = 0.0
        # Optional minor sort keys per (table, attr), mirroring the paper's
        # TPC-H copies sub-sorted on group-by / order-by columns.
        self._then_by = then_by or {}

    def _copy_for(self, table: str, attr: str) -> Relation:
        then_by = self._then_by.get(f"{table}.{attr}", ())
        copy, seconds = self.db.sorted_copy(table, attr, then_by)
        self.presort_seconds += seconds
        return copy

    def prepare(self, table: str, attrs: list[str]) -> float:
        """Pre-build copies for the given selection attributes; returns the
        build time in seconds (the paper's up-front presorting cost)."""
        before = self.presort_seconds
        for attr in attrs:
            self._copy_for(table, attr)
        return self.presort_seconds - before

    # -- selection over a sorted copy ------------------------------------------------

    def _select_slice(
        self, table: str, predicates, timer: PhaseTimer
    ) -> tuple[Relation, int, int, np.ndarray | None]:
        """Binary-search the best copy; refine the slice with the rest.

        Returns ``(copy, lo, hi, mask)`` — positions ``[lo, hi)`` of the
        copy, with ``mask`` narrowing them when more predicates exist.
        """
        with timer.phase("select"):
            ordered = self.order_by_selectivity(table, list(predicates))
            first = ordered[0]
            copy = self._copy_for(table, first.attr)
            self.recorder.event("index_lookups", 2)
            lo, hi = sorted_range(copy.values(first.attr), first.interval)
            mask: np.ndarray | None = None
            for pred in ordered[1:]:
                segment = copy.values(pred.attr)[lo:hi]
                self.recorder.sequential(len(segment))
                pred_mask = pred.interval.mask(segment)
                mask = pred_mask if mask is None else (mask & pred_mask)
        return copy, lo, hi, mask

    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        if not query.predicates:
            relation = self.db.table(query.table)
            with timer.phase("reconstruct"):
                live = ~self.db.tombstones(query.table)
                return {
                    attr: relation.values(attr)[live]
                    for attr in query.needed_columns
                }
        if not query.conjunctive:
            return self._execute_disjunctive(query, timer)
        copy, lo, hi, mask = self._select_slice(query.table, query.predicates, timer)
        out: dict[str, np.ndarray] = {}
        with timer.phase("reconstruct"):
            for attr in query.needed_columns:
                segment = copy.values(attr)[lo:hi]
                self.recorder.sequential(hi - lo)
                out[attr] = segment[mask] if mask is not None else segment.copy()
        return out

    def _execute_disjunctive(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        """Disjunctions: slice from the least selective copy, scan the rest."""
        ordered = self.order_by_selectivity(query.table, list(query.predicates))
        anchor = ordered[-1]
        copy = self._copy_for(query.table, anchor.attr)
        with timer.phase("select"):
            lo, hi = sorted_range(copy.values(anchor.attr), anchor.interval)
            bits = np.zeros(len(copy), dtype=bool)
            bits[lo:hi] = True
            for pred in ordered[:-1]:
                values = copy.values(pred.attr)
                self.recorder.sequential(len(values) - (hi - lo))
                bits[:lo] |= pred.interval.mask(values[:lo])
                bits[hi:] |= pred.interval.mask(values[hi:])
        out: dict[str, np.ndarray] = {}
        with timer.phase("reconstruct"):
            for attr in query.needed_columns:
                self.recorder.sequential(len(copy))
                out[attr] = copy.values(attr)[bits]
        return out

    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        copy, lo, hi, mask = self._select_slice(side.table, side.predicates, timer)
        base = np.arange(lo, hi, dtype=np.int64)
        positions = base[mask] if mask is not None else base

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            column = copy.values(attr)
            if subset is None:
                self.recorder.ordered(len(positions), hi - lo)
                return column[positions]
            picked = positions[subset]
            # Random, but confined to the qualifying slice of the copy.
            self.recorder.random(len(picked), hi - lo)
            return column[picked]

        return SideHandle(count=len(positions), fetch=fetch)
