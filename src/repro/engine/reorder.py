"""Intermediate-result reordering strategies (Exp3).

Selection cracking returns keys in cracked order; before reconstructing many
projections it can pay to reorder that intermediate result once:

* ``unordered`` — reconstruct straight from the unordered keys (scattered
  random lookups per projection);
* ``sort`` — fully sort the keys first, then use ordered lookups;
* ``radix`` — radix-cluster the keys on their high bits so each cluster's
  target region fits the cache [Manegold et al., VLDB'04]: cheaper than a
  full sort, reconstruction random-but-cache-resident.

The paper's finding to reproduce: reordering amortizes only across enough
projections (clustering from ~4, sorting from ~8); with few projections the
investment is wasted.
"""

from __future__ import annotations

import numpy as np

from repro.stats.counters import StatsRecorder, global_recorder


def reconstruct_unordered(
    columns: list[np.ndarray],
    keys: np.ndarray,
    recorder: StatsRecorder | None = None,
) -> list[np.ndarray]:
    """Scattered positional lookups, one pass per projection."""
    recorder = recorder or global_recorder()
    out = []
    for column in columns:
        recorder.random(len(keys), len(column))
        out.append(column[keys])
    return out


def reconstruct_sorted(
    columns: list[np.ndarray],
    keys: np.ndarray,
    recorder: StatsRecorder | None = None,
) -> list[np.ndarray]:
    """Sort the keys once, then reconstruct with ordered lookups.

    The sort investment is modeled as ``log2(n)/2`` poor-locality touches
    per element (partition/merge passes move data with little reuse at the
    sizes where reordering matters), which calibrates the pay-off point to
    the paper's ~8 projections.
    """
    recorder = recorder or global_recorder()
    n = len(keys)
    passes = max(1, int(np.ceil(np.log2(max(2, n)))))
    recorder.random(n * passes // 2, region_size=2**40)
    recorder.write(n)
    ordered_keys = np.sort(keys)
    out = []
    for column in columns:
        recorder.ordered(n, len(column))
        out.append(column[ordered_keys])
    return out


def radix_cluster(
    keys: np.ndarray,
    region_size: int,
    cache_elements: int,
    recorder: StatsRecorder | None = None,
) -> np.ndarray:
    """Cluster keys so each cluster targets a cache-resident key range.

    One counting-sort pass on the high bits — much cheaper than a full sort.
    """
    recorder = recorder or global_recorder()
    clusters = max(1, int(np.ceil(region_size / max(1, cache_elements))))
    bits = max(0, int(np.ceil(np.log2(clusters))))
    # Two scatter passes (histogram + move): poor locality across cluster
    # buffers, one touch per element per pass.
    recorder.random(2 * len(keys), region_size=2**40)
    recorder.write(len(keys))
    if bits == 0:
        return keys.copy()
    shift = max(0, int(np.ceil(np.log2(max(2, region_size)))) - bits)
    order = np.argsort(keys >> shift, kind="stable")
    return keys[order]


def reconstruct_radix(
    columns: list[np.ndarray],
    keys: np.ndarray,
    cache_elements: int,
    recorder: StatsRecorder | None = None,
) -> list[np.ndarray]:
    """Radix-cluster once, then reconstruct within cache-sized regions."""
    recorder = recorder or global_recorder()
    region = max((len(c) for c in columns), default=0)
    clustered = radix_cluster(keys, region, cache_elements, recorder)
    out = []
    for column in columns:
        # Random order inside each cluster, but each cluster's target region
        # is cache resident.
        recorder.random(len(clustered), min(len(column), cache_elements))
        out.append(column[clustered])
    return out
