"""Vectorized equi-join kernels.

``hash_join`` returns matching index pairs for two unsorted value arrays,
handling duplicates on both sides (full cross product per matching value,
like a relational join).  It is implemented sort-merge style on NumPy —
the asymptotics and the access pattern (a pass per input plus scattered
probes) match a textbook hash join closely enough for the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.stats.counters import StatsRecorder, global_recorder


def hash_join(
    left: np.ndarray,
    right: np.ndarray,
    recorder: StatsRecorder | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices ``(li, ri)`` such that ``left[li] == right[ri]``, all pairs.

    The output order is not tuple order of either input — joins are not
    order-preserving, which is exactly why post-join tuple reconstruction
    needs random access.
    """
    recorder = recorder or global_recorder()
    recorder.sequential(len(left) + len(right))
    recorder.random(len(left), max(1, len(right)))

    right_order = np.argsort(right, kind="stable")
    right_sorted = right[right_order]
    starts = np.searchsorted(right_sorted, left, side="left")
    ends = np.searchsorted(right_sorted, left, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_idx = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    # For each match run, enumerate the right-side positions.
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    right_pos_sorted = np.repeat(starts, counts) + within
    right_idx = right_order[right_pos_sorted]
    recorder.write(2 * total)
    return left_idx, right_idx


def semi_join_mask(
    probe: np.ndarray, build: np.ndarray, recorder: StatsRecorder | None = None
) -> np.ndarray:
    """Boolean mask of ``probe`` values that appear in ``build``."""
    recorder = recorder or global_recorder()
    recorder.sequential(len(probe) + len(build))
    recorder.random(len(probe), max(1, len(build)))
    return np.isin(probe, build)
