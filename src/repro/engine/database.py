"""The database facade: tables, updates, and shared cracking structures.

One :class:`Database` is shared by every engine in a benchmark run so that
all systems answer queries over the same logical data, and updates flow to
every auxiliary structure consistently:

* base relations are append-only; deletions set tombstone bits that scan
  engines filter (MonetDB keeps deleted rows in base columns too);
* cracker columns and (partial) sideways crackers receive pending updates
  and merge them on demand;
* presorted copies are invalidated — the paper's point is precisely that
  there is no efficient way to maintain them under updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.racesan import RaceSan
from repro.analysis.sanitizer import Sanitizer
from repro.core.mapset import FullMapStorage
from repro.core.partial.engine import PartialConfig, PartialSidewaysCracker
from repro.core.partial.storage import ChunkStorage
from repro.core.sideways import SidewaysCracker
from repro.cracking.column import CrackerColumn
from repro.cracking.progressive import parse_budget
from repro.cracking.stochastic import CrackPolicy, policy_rng, resolve_policy
from repro.errors import CatalogError, UpdateError
from repro.faults.guard import is_quarantined
from repro.faults.plan import FaultPlan, install_plan, resolve_plan
from repro.server.locks import Mutex
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation


@dataclass
class _SortedCopy:
    relation: Relation
    build_seconds: float
    stale: bool = False


@dataclass
class _TableState:
    relation: Relation
    tombstones: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))


class Database:
    """Catalog plus all engines' auxiliary structures and update routing."""

    def __init__(
        self,
        recorder: StatsRecorder | None = None,
        full_map_budget: int | None = None,
        chunk_budget: int | None = None,
        partial_config: PartialConfig | None = None,
        crack_policy: "CrackPolicy | str | None" = None,
        crack_budget: "object | None" = None,
        crack_seed: int = 42,
        sanitize: "str | bool | None" = None,
        faults: "str | FaultPlan | None" = None,
        racesan: "str | bool | None" = None,
    ) -> None:
        self.recorder = recorder or global_recorder()
        self.crack_policy = resolve_policy(crack_policy)
        self.crack_budget = parse_budget(crack_budget)
        self.crack_seed = crack_seed
        # CrackSan: None falls back to $REPRO_SANITIZE (default "off").
        # Activated before any structure exists so everything is watched.
        self.sanitizer = Sanitizer(sanitize, seed=crack_seed).activate()
        # RaceSan: None falls back to $REPRO_RACESAN (default "off").  Same
        # lifetime story as CrackSan: active while this database is alive.
        self.racesan = RaceSan(racesan, seed=crack_seed).activate()
        # FaultSan: None falls back to $REPRO_FAULTS (default: no plan).
        # The plan is process-global, mirroring the sanitizer's checkpoint
        # hooks; installing from here keeps the CLI/env plumbing symmetric.
        self.fault_plan = resolve_plan(faults, seed=crack_seed)
        if self.fault_plan is not None:
            install_plan(self.fault_plan)
        self.catalog = Catalog()
        self._tables: dict[str, _TableState] = {}
        self._crackers: dict[tuple[str, str], CrackerColumn] = {}
        self._sorted: dict[tuple[str, str, tuple[str, ...]], _SortedCopy] = {}
        self._sideways: dict[str, SidewaysCracker] = {}
        self._partial: dict[str, PartialSidewaysCracker] = {}
        self.full_map_storage = FullMapStorage(full_map_budget, self.recorder)
        self.chunk_storage = ChunkStorage(chunk_budget, self.recorder)
        self.partial_config = partial_config or PartialConfig()
        # Serving support: structure creation and update routing must be
        # atomic when many executor threads share one database.  The lock
        # guards the *catalog of structures*, never a query's cracking work —
        # the server's per-structure RW locks own that.
        self._meta_lock = Mutex("db.meta", reentrant=True)
        # Monotonic logical-data version: bumped by every insert/delete so
        # the serving layer's result cache can invalidate stale entries.
        self._data_version = 0
        # Resources that must be torn down with the database — serving
        # executors register here so their worker processes and shared-
        # memory segments never outlive (or leak past) the owning Database.
        self._closeables: list = []
        self._closed = False
        # close() serializes on its own (non-reentrant) mutex so concurrent
        # closers both block until teardown is fully done — a second caller
        # must never return while the first is still unlinking segments.
        self._close_mutex = Mutex("db.close")

    @property
    def data_version(self) -> int:
        """Monotonic counter of logical-data changes (inserts/deletes)."""
        return self._data_version

    def register_closeable(self, resource) -> None:
        """Tie ``resource`` (anything with an idempotent ``close()``) to
        this database's lifetime: :meth:`close` closes it."""
        with self._meta_lock:
            self._closeables.append(resource)

    def close(self) -> None:
        """Release everything registered against this database.  Idempotent
        and safe under concurrent callers: every closer serializes on the
        close mutex, so whichever thread loses the race blocks until the
        winner finished tearing everything down — nobody returns to a
        half-closed database.

        The serving layer registers its executors here, so closing the
        database shuts worker processes down and unlinks every shared-
        memory segment they mapped — no ``/dev/shm`` entry survives a
        closed database.
        """
        with self._close_mutex:
            with self._meta_lock:
                if self._closed:
                    return
                self._closed = True
                resources = list(self._closeables)
                self._closeables.clear()
            # Close outside the meta lock: an executor's close() joins
            # worker threads that may still need database reads to finish.
            for resource in reversed(resources):
                resource.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def set_crack_policy(self, policy: "CrackPolicy | str | None") -> None:
        """Select the crack policy for every current and future structure.

        Existing structures keep their physical state; only future cracks
        change behavior.
        """
        resolved = resolve_policy(policy)
        self.crack_policy = resolved
        for cracker in self._crackers.values():
            cracker.policy = resolved
        for sideways in self._sideways.values():
            sideways.policy = resolved
            for mapset in sideways.sets.values():
                mapset.policy = resolved
        for partial in self._partial.values():
            partial.policy = resolved
            for pset in partial.sets.values():
                pset.policy = resolved
                if pset.chunkmap is not None:
                    pset.chunkmap.policy = resolved

    def set_crack_budget(self, budget: "object | None") -> None:
        """Select the progressive per-query budget for every structure.

        ``None`` restores eager cracking.  In-flight partial cracks keep
        their markers; they finish under the new allowance (or eagerly, on
        the next touch, when the budget is lifted).
        """
        resolved = parse_budget(budget)
        self.crack_budget = resolved
        for cracker in self._crackers.values():
            cracker.set_budget(resolved)
        for sideways in self._sideways.values():
            sideways.set_crack_budget(resolved)
        for partial in self._partial.values():
            partial.set_crack_budget(resolved)

    # -- fault healing -----------------------------------------------------------

    def heal_faults(self) -> list[str]:
        """Drop quarantined (or still-broken) structures for a lazy rebuild.

        Every auxiliary structure is redundant — base relations hold all
        primary data — so healing is simply forgetting the broken copy; the
        next query that needs it rebuilds it from scratch.  Structures that
        are not flagged but fail a deep validation (corruption a rollback
        could not undo, e.g. a mutated pre-snapshot tape entry) are treated
        the same.  Returns the labels of the structures that were dropped.
        """
        from repro.analysis import invariants, sanitizer
        from repro.faults.guard import quarantine

        def broken(obj, kind: str) -> bool:
            if is_quarantined(obj):
                return True
            with sanitizer.suspended():
                return bool(invariants.check(obj, kind, deep=True))

        healed: list[str] = []
        for key, cracker in list(self._crackers.items()):
            if broken(cracker, "column"):
                quarantine(cracker, "healed")
                healed.append(f"cracker_column[{key[0]}.{key[1]}]")
                del self._crackers[key]
        for table, sideways in self._sideways.items():
            for attr, mapset in list(sideways.sets.items()):
                if broken(mapset, "mapset"):
                    quarantine(mapset, "healed")
                    for cmap in mapset.maps.values():
                        quarantine(cmap, "healed")
                    healed.append(f"mapset[{table}.{attr}]")
                    self.full_map_storage.unregister_set(mapset)
                    del sideways.sets[attr]
        for table, partial in self._partial.items():
            for attr, pset in list(partial.sets.items()):
                bad = broken(pset, "partial_set")
                if not bad and pset.chunkmap is not None:
                    bad = broken(pset.chunkmap, "chunkmap")
                if bad:
                    quarantine(pset, "healed")
                    healed.append(f"partial_set[{table}.{attr}]")
                    if pset.chunkmap is not None:
                        quarantine(pset.chunkmap, "healed")
                        self.chunk_storage.unregister_chunkmap(pset.chunkmap)
                    for pmap in pset.maps.values():
                        for chunk in pmap.chunks.values():
                            quarantine(chunk, "healed")
                        self.chunk_storage.unregister_map(pmap)
                    del partial.sets[attr]
        return healed

    # -- schema ----------------------------------------------------------------

    def create_table(self, name: str, arrays: dict[str, object]) -> Relation:
        relation = Relation.from_arrays(name, arrays)
        self.catalog.add(relation)
        self._tables[name] = _TableState(
            relation, np.zeros(len(relation), dtype=bool)
        )
        return relation

    def table(self, name: str) -> Relation:
        return self.catalog.get(name)

    def tombstones(self, name: str) -> np.ndarray:
        """Boolean mask of deleted rows (aligned with the base relation)."""
        state = self._tables.get(name)
        if state is None:
            raise CatalogError(f"no table named {name!r}")
        return state.tombstones

    def live_count(self, name: str) -> int:
        state = self._tables[name]
        return len(state.relation) - int(state.tombstones.sum())

    # -- updates ----------------------------------------------------------------------

    def insert(self, name: str, rows: dict[str, object]) -> np.ndarray:
        """Append tuples; returns their keys.  All structures are notified."""
        with self._meta_lock:
            state = self._tables.get(name)
            if state is None:
                raise CatalogError(f"no table named {name!r}")
            relation = state.relation
            start = len(relation)
            relation.append_rows(rows)
            count = len(relation) - start
            keys = np.arange(start, start + count, dtype=np.int64)
            state.tombstones = np.concatenate(
                [state.tombstones, np.zeros(count, dtype=bool)]
            )

            arrays = {
                attr: relation.values(attr)[start:] for attr in relation.attributes
            }
            for (tbl, attr), cracker in self._crackers.items():
                if tbl == name:
                    cracker.add_insertions(arrays[attr], keys)
                    # Appends replace the BAT object; keep the sanitizer's deep
                    # permutation check pointed at the current base column.
                    cracker._base = relation.column(attr)
            if name in self._sideways:
                self._sideways[name].notify_insertions(arrays, keys)
            if name in self._partial:
                self._partial[name].notify_insertions(arrays, keys)
            self._invalidate_sorted(name)
            self._data_version += 1
            return keys

    def delete(self, name: str, keys: np.ndarray) -> None:
        """Tombstone tuples by key.  All structures are notified."""
        with self._meta_lock:
            state = self._tables.get(name)
            if state is None:
                raise CatalogError(f"no table named {name!r}")
            keys = np.asarray(keys, dtype=np.int64)
            if state.tombstones[keys].any():
                raise UpdateError("attempt to delete an already-deleted key")
            state.tombstones[keys] = True

            relation = state.relation
            values_by_attr = {
                attr: relation.values(attr)[keys] for attr in relation.attributes
            }
            for (tbl, attr), cracker in self._crackers.items():
                if tbl == name:
                    cracker.add_deletions(values_by_attr[attr], keys)
            if name in self._sideways:
                self._sideways[name].notify_deletions(values_by_attr, keys)
            if name in self._partial:
                self._partial[name].notify_deletions(values_by_attr, keys)
            self._invalidate_sorted(name)
            self._data_version += 1

    def update(self, name: str, keys: np.ndarray, rows: dict[str, object]) -> np.ndarray:
        """An update is a deletion plus an insertion (the paper's model)."""
        self.delete(name, keys)
        return self.insert(name, rows)

    # -- auxiliary structures ---------------------------------------------------------------

    def cracker_column(self, table: str, attr: str) -> CrackerColumn:
        key = (table, attr)
        cracker = self._crackers.get(key)
        if cracker is None:
            # Double-checked under the meta lock: two server threads racing
            # to first-touch the same attribute must agree on one structure
            # (a lost copy would fork the cracked state and the tape).
            with self._meta_lock:
                cracker = self._crackers.get(key)
                if cracker is None:
                    relation = self.table(table)
                    cracker = CrackerColumn(
                        relation.column(attr), self.recorder,
                        policy=self.crack_policy,
                        budget=self.crack_budget,
                        rng=policy_rng(self.crack_seed, "column", table, attr),
                        label=f"cracker_column[{table}.{attr}]",
                    )
                    tombstoned = np.flatnonzero(self.tombstones(table))
                    if len(tombstoned):
                        cracker.add_deletions(
                            relation.values(attr)[tombstoned],
                            tombstoned.astype(np.int64),
                        )
                    self._crackers[key] = cracker
        return cracker

    def sideways(self, table: str) -> SidewaysCracker:
        cracker = self._sideways.get(table)
        if cracker is None:
            with self._meta_lock:
                cracker = self._sideways.get(table)
                if cracker is None:
                    state = self._tables[table]
                    cracker = SidewaysCracker(
                        self.table(table), self.recorder, self.full_map_storage,
                        tombstone_keys=lambda: np.flatnonzero(state.tombstones),
                        policy=self.crack_policy, crack_seed=self.crack_seed,
                        crack_budget=self.crack_budget,
                    )
                    self._sideways[table] = cracker
        return cracker

    def partial_sideways(self, table: str) -> PartialSidewaysCracker:
        cracker = self._partial.get(table)
        if cracker is None:
            with self._meta_lock:
                cracker = self._partial.get(table)
                if cracker is None:
                    state = self._tables[table]
                    cracker = PartialSidewaysCracker(
                        self.table(table),
                        config=self.partial_config,
                        recorder=self.recorder,
                        storage=self.chunk_storage,
                        tombstone_keys=lambda: np.flatnonzero(state.tombstones),
                        policy=self.crack_policy, crack_seed=self.crack_seed,
                        crack_budget=self.crack_budget,
                    )
                    self._partial[table] = cracker
        return cracker

    def sorted_copy(
        self, table: str, by: str, then_by: tuple[str, ...] = ()
    ) -> tuple[Relation, float]:
        """A presorted copy of ``table`` (tombstoned rows excluded).

        Returns the copy and the seconds spent building it (zero when it was
        cached).  Updates invalidate copies; the next access rebuilds.
        """
        import time

        key = (table, by, then_by)
        copy = self._sorted.get(key)
        if copy is None or copy.stale:
            state = self._tables[table]
            start = time.perf_counter()
            source = state.relation
            if state.tombstones.any():
                live = Relation(source.name)
                keep = ~state.tombstones
                for attr in source.attributes:
                    from repro.storage.bat import BAT

                    bat = source.column(attr)
                    live.add_column(
                        attr, BAT(bat.values[keep], bat.ctype, None, bat.dictionary)
                    )
                source = live
            relation = source.sorted_copy(by, then_by)
            seconds = time.perf_counter() - start
            self.recorder.sequential(len(relation) * len(relation.attributes) * 2)
            self.recorder.write(len(relation) * len(relation.attributes))
            copy = _SortedCopy(relation, seconds)
            self._sorted[key] = copy
            return copy.relation, copy.build_seconds
        return copy.relation, 0.0

    def presort_seconds(self) -> float:
        """Total time spent building all presorted copies so far."""
        return sum(c.build_seconds for c in self._sorted.values())

    def _invalidate_sorted(self, table: str) -> None:
        for key, copy in self._sorted.items():
            if key[0] == table:
                copy.stale = True
