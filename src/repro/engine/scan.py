"""The plain column-store baseline ("MonetDB" in the figures).

Selections scan whole base columns; because base columns keep insertion
order, the qualifying positions come out ordered and every tuple
reconstruction is an in-order positional lookup — cache friendly, but always
over the *whole* column.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import Engine, SideHandle
from repro.engine.operators import ordered_gather, scan_select
from repro.engine.query import JoinSide, Query
from repro.stats.timing import PhaseTimer


class PlainEngine(Engine):
    """Non-cracking column-store: full scans + ordered positional lookups."""

    name = "monetdb"

    def _live_mask(self, table: str) -> np.ndarray | None:
        tombstones = self.db.tombstones(table)
        return None if not tombstones.any() else ~tombstones

    def _select_positions(
        self, table: str, predicates, conjunctive: bool, timer: PhaseTimer
    ) -> np.ndarray:
        relation = self.db.table(table)
        live = self._live_mask(table)
        with timer.phase("select"):
            if not predicates:
                positions = np.arange(len(relation), dtype=np.int64)
                if live is not None:
                    positions = positions[live]
                return positions
            ordered = self.order_by_selectivity(table, list(predicates))
            if conjunctive:
                first = ordered[0]
                values = relation.values(first.attr)
                mask = first.interval.mask(values)
                if live is not None:
                    mask &= live
                positions = scan_select(values, mask, self.recorder)
                # rel_select-style refinement: ordered positional lookups.
                for pred in ordered[1:]:
                    column = relation.values(pred.attr)
                    looked_up = ordered_gather(column, positions, self.recorder)
                    positions = positions[pred.interval.mask(looked_up)]
                return positions
            mask = np.zeros(len(relation), dtype=bool)
            for pred in ordered:
                values = relation.values(pred.attr)
                self.recorder.sequential(len(values))
                mask |= pred.interval.mask(values)
            if live is not None:
                mask &= live
            return np.flatnonzero(mask)

    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        relation = self.db.table(query.table)
        positions = self._select_positions(
            query.table, query.predicates, query.conjunctive, timer
        )
        out: dict[str, np.ndarray] = {}
        with timer.phase("reconstruct"):
            for attr in query.needed_columns:
                out[attr] = ordered_gather(
                    relation.values(attr), positions, self.recorder
                )
        return out

    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        relation = self.db.table(side.table)
        positions = self._select_positions(side.table, side.predicates, True, timer)

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            column = relation.values(attr)
            if subset is None:
                return ordered_gather(column, positions, self.recorder)
            # Join output order is arbitrary: scattered lookups over the
            # whole base column.
            picked = positions[subset]
            self.recorder.random(len(picked), len(column))
            return column[picked]

        return SideHandle(count=len(positions), fetch=fetch)
