"""Sideways cracking as an engine (full maps or partial maps).

Wraps :class:`~repro.core.sideways.SidewaysCracker` /
:class:`~repro.core.partial.engine.PartialSidewaysCracker` behind the common
engine interface so benchmarks can swap systems freely.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitvector import BitVector
from repro.engine.base import Engine, SideHandle
from repro.engine.query import JoinSide, Query
from repro.errors import PlanError
from repro.stats.timing import PhaseTimer


class SidewaysEngine(Engine):
    """Sideways cracking engine; ``partial=True`` uses partial maps."""

    def __init__(self, db, partial: bool = False, crack_policy=None) -> None:
        super().__init__(db)
        self.partial = partial
        self.name = "partial_sideways" if partial else "sideways"
        if crack_policy is not None:
            db.set_crack_policy(crack_policy)

    def _facade(self, table: str):
        if self.partial:
            return self.db.partial_sideways(table)
        return self.db.sideways(table)

    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        facade = self._facade(query.table)
        predicates = query.predicate_map
        needed = list(query.needed_columns)
        if not predicates:
            with timer.phase("select"):
                relation = self.db.table(query.table)
                live = ~self.db.tombstones(query.table)
                return {attr: relation.values(attr)[live] for attr in needed}
        if len(predicates) == 1:
            # The first map access carries the selection work; the remaining
            # maps are pure tuple reconstruction (they reuse the aligned
            # cracks), mirroring the paper's Sel/TR cost split.
            (attr, interval), = predicates.items()
            out: dict[str, np.ndarray] = {}
            with timer.phase("select"):
                out.update(facade.select_project(attr, interval, needed[:1]))
            if len(needed) > 1:
                with timer.phase("reconstruct"):
                    out.update(facade.select_project(attr, interval, needed[1:]))
            return out
        with timer.phase("select"):
            return facade.query(predicates, needed, conjunctive=query.conjunctive)

    # -- join sides -------------------------------------------------------------------

    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        if self.partial:
            return self._select_side_partial(side, timer)
        return self._select_side_full(side, timer)

    def _select_side_full(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        """Full maps: keep candidates as positions inside the aligned area
        ``w`` so post-join reconstruction stays clustered."""
        facade = self._facade(side.table)
        predicates = side.predicate_map
        if not predicates:
            raise PlanError("sideways join sides need at least one predicate")
        with timer.phase("select"):
            head = facade.choose_head(predicates, conjunctive=True)
            mapset = facade.set_for(head)
            head_interval = predicates[head]
            others = [(a, iv) for a, iv in predicates.items() if a != head]
            bv: BitVector | None = None
            area: tuple[int, int] | None = None
            for attr, iv in others:
                cmap, lo, hi = mapset.select(attr, head_interval)
                area = (lo, hi)
                self.recorder.sequential(hi - lo)
                mask = iv.mask(cmap.tail[lo:hi])
                if bv is None:
                    bv = BitVector.from_mask(mask)
                else:
                    bv.refine_and(mask)
            if area is None:
                # Single predicate: crack via any needed map (join attr).
                cmap, lo, hi = mapset.select(side.join_attr, head_interval)
                area = (lo, hi)
            w_lo, w_hi = area
            if bv is not None:
                candidates = w_lo + bv.positions()
            else:
                candidates = np.arange(w_lo, w_hi, dtype=np.int64)

        recorder = self.recorder

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            cmap, lo, hi = mapset.select(attr, head_interval)
            picked = candidates if subset is None else candidates[subset]
            if subset is None:
                recorder.ordered(len(picked), hi - lo)
            else:
                # Random, but confined to the clustered area w.
                recorder.random(len(picked), hi - lo)
            return cmap.tail[picked]

        return SideHandle(count=len(candidates), fetch=fetch)

    def _select_side_partial(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        """Partial maps: chunk-wise evaluation materializes the candidate
        columns; post-join fetches then index those small arrays."""
        facade = self._facade(side.table)
        predicates = side.predicate_map
        needed = [side.join_attr] + [
            a for a in side.post_join_columns if a != side.join_attr
        ]
        with timer.phase("select"):
            if len(predicates) == 1:
                (attr, interval), = predicates.items()
                columns = facade.select_project(attr, interval, needed)
            else:
                columns = facade.query(predicates, needed, conjunctive=True)
        count = len(columns[side.join_attr])
        recorder = self.recorder

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            values = columns[attr]
            if subset is None:
                recorder.sequential(len(values))
                return values
            recorder.random(len(subset), max(1, len(values)))
            return values[subset]

        return SideHandle(count=count, fetch=fetch)
