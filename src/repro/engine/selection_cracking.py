"""Selection cracking as a full engine (the CIDR'07 baseline).

Selections are fast (cracker columns), but their results are keys in cracked
order — no longer aligned with the base columns — so every tuple
reconstruction degenerates into scattered random lookups over whole base
columns.  This is precisely the cost profile sideways cracking removes.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import estimate_result_size
from repro.engine.base import Engine, SideHandle
from repro.engine.operators import random_gather
from repro.engine.query import JoinSide, Query
from repro.stats.timing import PhaseTimer


class SelectionCrackingEngine(Engine):
    """Cracker columns + rel_select refinement + random reconstruction."""

    name = "selection_cracking"

    def __init__(self, db, crack_policy=None) -> None:
        super().__init__(db)
        if crack_policy is not None:
            db.set_crack_policy(crack_policy)

    def _estimate(self, table: str, pred) -> float:
        """Prefer the cracker index histogram, else a sample estimate."""
        cracker = self.db._crackers.get((table, pred.attr))
        if cracker is not None and len(cracker.index):
            values = self.db.table(table).values(pred.attr)
            lo = float(values.min())
            hi = float(values.max())
            return estimate_result_size(
                cracker.index, len(cracker), pred.interval, lo, hi
            ).value
        return self._sample_estimate(table, pred.attr, pred.interval)

    def _select_keys(
        self, table: str, predicates, conjunctive: bool, timer: PhaseTimer
    ) -> np.ndarray:
        relation = self.db.table(table)
        with timer.phase("select"):
            if not predicates:
                live = ~self.db.tombstones(table)
                return np.flatnonzero(live).astype(np.int64)
            ordered = sorted(
                predicates, key=lambda p: (self._estimate(table, p), p.attr)
            )
            if conjunctive:
                first = ordered[0]
                keys = self.db.cracker_column(table, first.attr).select(first.interval)
                # crackers.rel_select: look the remaining attributes up at
                # the (unordered) keys — scattered access over base columns.
                for pred in ordered[1:]:
                    column = relation.values(pred.attr)
                    values = random_gather(column, keys, self.recorder)
                    keys = keys[pred.interval.mask(values)]
                return keys
            parts = [
                self.db.cracker_column(table, pred.attr).select(pred.interval)
                for pred in ordered
            ]
            self.recorder.sequential(sum(len(p) for p in parts))
            return np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)

    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        relation = self.db.table(query.table)
        keys = self._select_keys(
            query.table, query.predicates, query.conjunctive, timer
        )
        out: dict[str, np.ndarray] = {}
        with timer.phase("reconstruct"):
            for attr in query.needed_columns:
                out[attr] = random_gather(relation.values(attr), keys, self.recorder)
        return out

    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        relation = self.db.table(side.table)
        keys = self._select_keys(side.table, side.predicates, True, timer)

        def fetch(attr: str, subset: np.ndarray | None) -> np.ndarray:
            column = relation.values(attr)
            picked = keys if subset is None else keys[subset]
            return random_gather(column, picked, self.recorder)

        return SideHandle(count=len(keys), fetch=fetch)
