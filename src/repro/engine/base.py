"""The engine interface and the generic join pipeline.

Engines differ in *how* they select and reconstruct; the join pipeline —
select each side, reconstruct the join attribute, equi-join, reconstruct the
post-join attributes, aggregate — is shared.  Each engine supplies a
:class:`SideHandle` describing its qualifying tuples and how to fetch an
attribute for an arbitrary subset of them (that fetch is where the systems'
access patterns diverge).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.sanitizer import checkpoint_query
from repro.engine.database import Database
from repro.engine.join import hash_join
from repro.errors import FaultError, InvariantError
from repro.faults.guard import RECOVERABLE
from repro.faults.plan import active_plan
from repro.engine.query import (
    JoinQuery,
    JoinSide,
    Query,
    QueryResult,
    compute_aggregates,
)
from repro.stats.counters import StatsRecorder
from repro.stats.timing import PhaseTimer

#: What engine-level recovery catches: everything the atomic guards roll
#: back on, plus the InvariantError a guard raises after undoing detected
#: in-place corruption.
_ENGINE_RECOVERABLE = RECOVERABLE + (InvariantError,)


@dataclass
class SideHandle:
    """One side's qualifying tuples after its local selections.

    ``count`` qualifying tuples; ``fetch(attr, subset)`` returns attribute
    values for the subset (``None`` = all), reported with the engine's
    characteristic access pattern.
    """

    count: int
    fetch: Callable[[str, np.ndarray | None], np.ndarray]


class Engine(abc.ABC):
    """Common engine machinery: framing, timing, aggregates."""

    name: str = "engine"

    def __init__(self, db: Database) -> None:
        self.db = db
        self.recorder: StatsRecorder = db.recorder

    # -- single-table queries -------------------------------------------------------

    def run(self, query: Query) -> QueryResult:
        """Answer ``query``; under an active fault plan, heal and fall back.

        When an injected (or injected-corruption-detected) fault escapes the
        per-structure atomic guards, every broken structure has already been
        rolled back or quarantined; this wrapper drops the quarantined ones
        and re-answers the query through the scan engine, so callers always
        get a correct result or a structured :class:`FaultError`.
        """
        try:
            return self._run_raw(query)
        except _ENGINE_RECOVERABLE as exc:
            if active_plan() is None:
                raise
            return self._recover(exc, lambda engine: engine._run_raw(query))

    def _run_raw(self, query: Query) -> QueryResult:
        result = QueryResult()
        with self.recorder.frame() as stats:
            with result.timer.phase("total"):
                columns = self._execute(query, result.timer)
                if query.group_by:
                    with result.timer.phase("group_by"):
                        columns = self._grouped(query, columns)
        result.columns = columns
        if query.group_by:
            result.aggregates = {}
        else:
            result.aggregates = compute_aggregates(query.aggregates, columns)
        result.row_count = len(next(iter(columns.values()))) if columns else 0
        result.stats = stats
        # Outside the recorder frame, so sanitizer sweeps never skew counters.
        checkpoint_query()
        return result

    def _grouped(self, query: Query, columns: dict) -> dict:
        """Group-by + per-group aggregation over the selected tuples."""
        from repro.engine.operators import group_by, segmented_aggregate

        keys = [columns[attr] for attr in query.group_by]
        group_ids, order, group_keys = group_by(keys, self.recorder)
        out = {
            attr: group_keys[i] for i, attr in enumerate(query.group_by)
        }
        for func, attr in query.aggregates:
            values = columns[attr][order].astype("float64")
            out[f"{func}({attr})"] = segmented_aggregate(
                group_ids, values, func, self.recorder
            )
        return out

    @abc.abstractmethod
    def _execute(self, query: Query, timer: PhaseTimer) -> dict[str, np.ndarray]:
        """Evaluate the query, returning positionally aligned projections."""

    # -- fault recovery ------------------------------------------------------------------

    def _recover(self, exc: BaseException, rerun) -> QueryResult:
        """Heal quarantined structures, then re-answer via the scan engine.

        A multi-shot plan (``site@N..M``) can fire again during the recovery
        rerun itself, so healing retries up to the plan's total shot budget:
        once every armed shot has been spent the workload must run clean, so
        a query that *still* fails past that bound is a real bug and
        surfaces as a :class:`FaultError` chained to the last failure.
        """
        from repro.engine.scan import PlainEngine

        site = getattr(exc, "site", None)
        plan = active_plan()
        attempts = 1 + (plan.total_shots() if plan is not None else 0)
        fallback = self if isinstance(self, PlainEngine) else PlainEngine(self.db)
        last: BaseException = exc
        for _ in range(attempts):
            self.db.heal_faults()
            try:
                result = rerun(fallback)
            except _ENGINE_RECOVERABLE as retry_exc:
                last = retry_exc
                continue
            result.fault_recovered = True
            return result
        raise FaultError(
            "scan fallback failed after fault recovery", site=site
        ) from last

    # -- join queries -------------------------------------------------------------------

    def run_join(self, query: JoinQuery) -> QueryResult:
        """Join-query counterpart of :meth:`run` (same recovery contract)."""
        try:
            return self._run_join_raw(query)
        except _ENGINE_RECOVERABLE as exc:
            if active_plan() is None:
                raise
            return self._recover(exc, lambda engine: engine._run_join_raw(query))

    def _run_join_raw(self, query: JoinQuery) -> QueryResult:
        result = QueryResult()
        timer = result.timer
        with self.recorder.frame() as stats:
            with timer.phase("total"):
                left = self._select_side(query.left, timer)
                right = self._select_side(query.right, timer)
                with timer.phase("tr_before"):
                    left_join = left.fetch(query.left.join_attr, None)
                    right_join = right.fetch(query.right.join_attr, None)
                with timer.phase("join"):
                    li, ri = hash_join(left_join, right_join, self.recorder)
                columns: dict[str, np.ndarray] = {}
                with timer.phase("tr_after"):
                    for attr in query.left.post_join_columns:
                        columns[attr] = left.fetch(attr, li)
                    for attr in query.right.post_join_columns:
                        columns[attr] = right.fetch(attr, ri)
        result.columns = columns
        result.aggregates = compute_aggregates(query.aggregates, columns)
        result.row_count = len(li)
        result.stats = stats
        checkpoint_query()
        return result

    @abc.abstractmethod
    def _select_side(self, side: JoinSide, timer: PhaseTimer) -> SideHandle:
        """Run one side's local selections (timed under ``select``)."""

    # -- shared helpers --------------------------------------------------------------------

    def _sample_estimate(self, table: str, attr: str, interval) -> float:
        """Cheap cardinality estimate from a 1%-ish sample of the column.

        Stands in for the statistics every system in the paper's experiments
        is granted when ordering predicates by selectivity.
        """
        values = self.db.table(table).values(attr)
        step = max(1, len(values) // 1024)
        sample = values[::step]
        if len(sample) == 0:
            return 0.0
        return float(interval.mask(sample).mean()) * len(values)

    def order_by_selectivity(self, table: str, predicates) -> list:
        """Most selective predicate first (ties broken by attribute name)."""
        return sorted(
            predicates,
            key=lambda p: (self._sample_estimate(table, p.attr, p.interval), p.attr),
        )

    # -- plan introspection -------------------------------------------------------

    def explain(self, query: Query) -> str:
        """A human-readable sketch of the plan this engine would run.

        Shows predicate evaluation order (with cardinality estimates), the
        physical structure each step uses, and the reconstruction access
        pattern — the dimension the paper's systems differ on.
        """
        lines = [f"{self.name}: {query.table}"]
        ordered = self.order_by_selectivity(query.table, list(query.predicates))
        connective = "AND" if query.conjunctive else "OR"
        for i, pred in enumerate(ordered):
            estimate = self._sample_estimate(query.table, pred.attr, pred.interval)
            if i == 0:
                how = self._selection_structure(query.table, pred.attr)
                prefix = "  select"
            else:
                how = self._refinement_structure(query.table, pred.attr)
                prefix = f"  {connective.lower()}-refine"
            lines.append(
                f"{prefix} {pred.attr} {pred.interval!r} (~{estimate:.0f} rows) "
                f"via {how}"
            )
        needed = ", ".join(query.needed_columns) or "(none)"
        lines.append(f"  reconstruct [{needed}] via {self._reconstruction_pattern()}")
        for func, attr in query.aggregates:
            lines.append(f"  aggregate {func}({attr})")
        policy = getattr(self.db, "crack_policy", None)
        if policy is not None and self.name in {
            "selection_cracking", "sideways", "partial_sideways"
        }:
            lines.append(f"  crack policy: {policy.describe()}")
        return "\n".join(lines)

    def _selection_structure(self, table: str, attr: str) -> str:
        return {
            "monetdb": "full column scan",
            "presorted": f"binary search on sorted copy {table}@{attr}",
            "selection_cracking": f"cracker column {table}.{attr}",
            "sideways": f"cracker maps of set S_{attr}",
            "partial_sideways": f"partial maps / chunk map of set S_{attr}",
            "rowstore": "full row scan",
            "rowstore_presorted": f"binary search on sorted rows {table}@{attr}",
        }.get(self.name, "scan")

    def _refinement_structure(self, table: str, attr: str) -> str:
        return {
            "monetdb": f"in-order positional lookups into {table}.{attr}",
            "presorted": "sequential mask within the sorted slice",
            "selection_cracking": f"scattered lookups into {table}.{attr}",
            "sideways": f"bit vector over the aligned map M_(head,{attr})",
            "partial_sideways": f"bit vector over aligned chunks of {attr}",
            "rowstore": "mask within the row scan",
            "rowstore_presorted": "mask within the sorted row slice",
        }.get(self.name, "filter")

    def _reconstruction_pattern(self) -> str:
        return {
            "monetdb": "in-order positional lookups over base columns",
            "presorted": "sequential slice of the sorted copy",
            "selection_cracking": "scattered lookups over base columns",
            "sideways": "aligned map tails (sequential over the cracked area)",
            "partial_sideways": "aligned chunk tails (sequential, per area)",
            "rowstore": "already materialized in the rows",
            "rowstore_presorted": "already materialized in the rows",
        }.get(self.name, "gather")
