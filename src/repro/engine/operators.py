"""Shared physical operators: gathers, grouping, ordering.

These are the MonetDB-style building blocks engines and the TPC-H plans
compose.  Each operator reports its access pattern to the active recorder so
modeled costs track what the engines actually did.
"""

from __future__ import annotations

import numpy as np

from repro.stats.counters import StatsRecorder, global_recorder


def scan_select(
    values: np.ndarray, mask: np.ndarray, recorder: StatsRecorder | None = None
) -> np.ndarray:
    """Positions of set bits after a full sequential scan."""
    recorder = recorder or global_recorder()
    recorder.sequential(len(values))
    return np.flatnonzero(mask)


def ordered_gather(
    values: np.ndarray, positions: np.ndarray, recorder: StatsRecorder | None = None
) -> np.ndarray:
    """Positional lookups with positions in ascending order (cache friendly)."""
    recorder = recorder or global_recorder()
    recorder.ordered(len(positions), len(values))
    return values[positions]


def random_gather(
    values: np.ndarray,
    positions: np.ndarray,
    recorder: StatsRecorder | None = None,
    region: int | None = None,
) -> np.ndarray:
    """Positional lookups in arbitrary order.

    ``region`` narrows the touched area (e.g. lookups into a small cracked
    slice are cache-resident even though unordered).
    """
    recorder = recorder or global_recorder()
    recorder.random(len(positions), region if region is not None else len(values))
    return values[positions]


def group_by(
    keys: list[np.ndarray], recorder: StatsRecorder | None = None
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Group rows by one or more key columns.

    Returns ``(group_ids, order, group_keys)`` where ``order`` permutes rows
    so groups are contiguous, ``group_ids`` are dense ids per *reordered*
    row, and ``group_keys`` holds each group's key values (one array per key
    column).  Group-by destroys tuple order, like the paper says.
    """
    recorder = recorder or global_recorder()
    if not keys:
        raise ValueError("group_by needs at least one key column")
    n = len(keys[0])
    recorder.sequential(n * len(keys))
    order = np.lexsort(tuple(reversed(keys)))
    sorted_keys = [k[order] for k in keys]
    if n == 0:
        return np.empty(0, dtype=np.int64), order, [k[:0] for k in keys]
    change = np.zeros(n, dtype=bool)
    for k in sorted_keys:
        change[1:] |= k[1:] != k[:-1]
    group_ids = np.cumsum(change).astype(np.int64)
    firsts = np.concatenate([[0], np.flatnonzero(change)]).astype(np.int64)
    group_keys = [k[firsts] for k in sorted_keys]
    recorder.write(n)
    return group_ids, order, group_keys


def segmented_aggregate(
    group_ids: np.ndarray,
    values: np.ndarray,
    func: str,
    recorder: StatsRecorder | None = None,
) -> np.ndarray:
    """Aggregate ``values`` (already grouped contiguously) per group id."""
    recorder = recorder or global_recorder()
    recorder.sequential(len(values))
    n_groups = int(group_ids[-1]) + 1 if len(group_ids) else 0
    if func == "count":
        return np.bincount(group_ids, minlength=n_groups).astype(np.float64)
    if func == "sum":
        return np.bincount(group_ids, weights=values, minlength=n_groups)
    if func == "avg":
        sums = np.bincount(group_ids, weights=values, minlength=n_groups)
        counts = np.bincount(group_ids, minlength=n_groups)
        return sums / np.maximum(counts, 1)
    if func in ("max", "min"):
        op = np.maximum if func == "max" else np.minimum
        out = np.full(n_groups, -np.inf if func == "max" else np.inf)
        op.at(out, group_ids, values)
        return out
    raise ValueError(f"unknown aggregate {func!r}")


def sort_rows(
    keys: list[np.ndarray],
    descending: "list[bool] | None" = None,
    recorder: StatsRecorder | None = None,
) -> np.ndarray:
    """Row order for an ``order by`` over the given key columns."""
    recorder = recorder or global_recorder()
    if not keys:
        raise ValueError("sort_rows needs at least one key column")
    recorder.sequential(len(keys[0]) * len(keys))
    adjusted = []
    flags = descending or [False] * len(keys)
    for k, desc in zip(keys, flags):
        adjusted.append(-k if desc else k)
    return np.lexsort(tuple(reversed(adjusted)))
