"""Query descriptions and results shared by every engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cracking.bounds import Interval
from repro.errors import PlanError
from repro.stats.counters import AccessStats
from repro.stats.timing import PhaseTimer

AGGREGATE_FUNCS = ("max", "min", "sum", "count", "avg")


@dataclass(frozen=True)
class Predicate:
    """A range predicate on one attribute."""

    attr: str
    interval: Interval


@dataclass(frozen=True)
class Query:
    """A single-table selection / projection / aggregation query.

    ``select <projections>, <aggregates> from <table>
    where <predicates combined conjunctively or disjunctively>
    [group by <group_by>]``

    With ``group_by``, plain projections must be group keys, and aggregate
    results become per-group arrays in ``QueryResult.columns`` (keyed
    ``func(attr)``) alongside the key columns.
    """

    table: str
    predicates: tuple[Predicate, ...] = ()
    projections: tuple[str, ...] = ()
    aggregates: tuple[tuple[str, str], ...] = ()
    conjunctive: bool = True
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for func, _attr in self.aggregates:
            if func not in AGGREGATE_FUNCS:
                raise PlanError(f"unknown aggregate {func!r}")
        seen = set()
        for pred in self.predicates:
            if pred.attr in seen:
                raise PlanError(f"duplicate predicate on {pred.attr!r}")
            seen.add(pred.attr)
        if self.group_by:
            loose = set(self.projections) - set(self.group_by)
            if loose:
                raise PlanError(
                    f"projections {sorted(loose)} are not group-by keys"
                )

    @property
    def predicate_map(self) -> dict[str, Interval]:
        return {p.attr: p.interval for p in self.predicates}

    @property
    def needed_columns(self) -> tuple[str, ...]:
        """Projections, group keys, and aggregate inputs, deduplicated."""
        out: list[str] = []
        for attr in (
            list(self.projections)
            + list(self.group_by)
            + [a for _, a in self.aggregates]
        ):
            if attr not in out:
                out.append(attr)
        return tuple(out)


@dataclass(frozen=True)
class JoinSide:
    """One side of an equi-join: local predicates, the join attribute, and
    the attributes reconstructed *after* the join."""

    table: str
    join_attr: str
    predicates: tuple[Predicate, ...] = ()
    post_join_columns: tuple[str, ...] = ()

    @property
    def predicate_map(self) -> dict[str, Interval]:
        return {p.attr: p.interval for p in self.predicates}


@dataclass(frozen=True)
class JoinQuery:
    """A two-table equi-join with per-side conjunctive selections.

    ``select <aggregates> from L, R where <L.predicates> and <R.predicates>
    and L.join_attr = R.join_attr``

    Post-join column names must be unique across the two sides (the result
    dictionary is keyed by attribute name).
    """

    left: JoinSide
    right: JoinSide
    aggregates: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        clash = set(self.left.post_join_columns) & set(self.right.post_join_columns)
        if clash:
            raise PlanError(
                f"post-join columns appear on both sides: {sorted(clash)}"
            )


@dataclass
class QueryResult:
    """What an engine hands back: values, aggregates, and cost breakdowns.

    ``timer`` holds wall-clock seconds per phase (``select``, ``tr_before``,
    ``join``, ``tr_after``); ``stats`` holds the classified element touches
    of the whole query.
    """

    columns: dict[str, np.ndarray] = field(default_factory=dict)
    aggregates: dict[str, float] = field(default_factory=dict)
    row_count: int = 0
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    stats: AccessStats = field(default_factory=AccessStats)
    #: True when a fault interrupted the original engine and the answer was
    #: re-computed through the scan fallback after healing.
    fault_recovered: bool = False

    @property
    def total_seconds(self) -> float:
        return self.timer.total

    def phase_seconds(self, name: str) -> float:
        return self.timer.get(name)


def compute_aggregates(
    aggregates: tuple[tuple[str, str], ...], columns: dict[str, np.ndarray]
) -> dict[str, float]:
    """Evaluate ``(func, attr)`` aggregates over projected columns."""
    out: dict[str, float] = {}
    for func, attr in aggregates:
        values = columns[attr]
        name = f"{func}({attr})"
        if func == "count":
            out[name] = float(len(values))
        elif len(values) == 0:
            out[name] = float("nan")
        elif func == "max":
            out[name] = float(values.max())
        elif func == "min":
            out[name] = float(values.min())
        elif func == "sum":
            out[name] = float(values.sum())
        elif func == "avg":
            out[name] = float(values.mean())
    return out
