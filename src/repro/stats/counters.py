"""Counters that classify every element touch an operator performs.

Operators report *element touches* — reads or writes of individual column
cells — classified by access pattern:

``sequential``
    a scan or slice over a contiguous range (merge-like access; at most one
    cache miss per line).
``clustered_random``
    positional lookups in random order, but confined to a region small enough
    to stay cache-resident (e.g. radix-clustered reconstruction, or lookups
    into a small cracked area).
``scattered_random``
    positional lookups in random order over a region larger than the cache
    (the expensive pattern the paper eliminates).

The counters are dimensionless element counts; :mod:`repro.stats.memory_model`
prices them.  A :class:`StatsRecorder` stacks :class:`AccessStats` frames so a
benchmark can attribute costs to query phases (selection, tuple
reconstruction before/after a join, ...).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass
class AccessStats:
    """A tally of classified element touches plus structural event counts."""

    sequential: int = 0
    clustered_random: int = 0
    scattered_random: int = 0
    writes: int = 0
    cracks: int = 0
    index_lookups: int = 0
    map_creations: int = 0
    chunk_creations: int = 0
    chunk_drops: int = 0
    alignment_replays: int = 0
    # Stochastic cracking: auxiliary (data-driven) cuts, the random subset of
    # them, and a per-policy breakdown keyed by policy name.
    dd_cuts: int = 0
    random_cracks: int = 0
    policy_cuts: dict = field(default_factory=dict)

    def touch_sequential(self, count: int) -> None:
        self.sequential += int(count)

    def touch_random(self, count: int, region_size: int, cache_elements: int) -> None:
        """Record ``count`` random lookups into a region of ``region_size``.

        The region size decides whether the pattern is cache-clustered or
        scattered; ``cache_elements`` is the cache capacity expressed in
        elements (supplied by the active :class:`MemoryModel`).
        """
        if region_size <= cache_elements:
            self.clustered_random += int(count)
        else:
            self.scattered_random += int(count)

    def touch_write(self, count: int) -> None:
        self.writes += int(count)

    @property
    def total_touches(self) -> int:
        return self.sequential + self.clustered_random + self.scattered_random + self.writes

    def record_policy_cut(self, policy_name: str, count: int = 1) -> None:
        self.policy_cuts[policy_name] = self.policy_cuts.get(policy_name, 0) + count

    def add(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this tally in place."""
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            else:
                setattr(self, f.name, mine + theirs)

    def __add__(self, other: "AccessStats") -> "AccessStats":
        out = AccessStats()
        out.add(self)
        out.add(other)
        return out

    def snapshot(self) -> "AccessStats":
        return AccessStats(**{
            f.name: (dict(v) if isinstance(v := getattr(self, f.name), dict) else v)
            for f in fields(self)
        })

    def as_dict(self) -> dict[str, object]:
        return {
            f.name: (dict(v) if isinstance(v := getattr(self, f.name), dict) else v)
            for f in fields(self)
        }

    def summary(self) -> str:
        """A readable tally: touches, events, and the per-policy cut breakdown."""
        lines = [
            f"touches: {self.sequential:,} sequential, "
            f"{self.clustered_random:,} clustered random, "
            f"{self.scattered_random:,} scattered random, "
            f"{self.writes:,} writes",
            f"cracks: {self.cracks:,} query-driven, {self.dd_cuts:,} data-driven "
            f"({self.random_cracks:,} random)",
        ]
        if self.policy_cuts:
            breakdown = ", ".join(
                f"{name}={count:,}" for name, count in sorted(self.policy_cuts.items())
            )
            lines.append(f"policy cuts: {breakdown}")
        return "\n".join(lines)


@dataclass
class StatsRecorder:
    """A stack of :class:`AccessStats` frames.

    Operators report into the recorder; every open frame receives the events,
    so a caller can wrap a query phase in :meth:`frame` and read off that
    phase's costs while an outer frame still accumulates the query total.

    The cache size used to classify random accesses lives here so that the
    classification is consistent across every operator of an engine run.

    Frame stacks are *per thread*: the creating thread uses ``_frames``
    directly (the serial fast path is unchanged), while any other thread —
    a serving worker running a query through a shared engine — gets its own
    stack seeded with the shared root frame.  Push/pop therefore never
    interleaves across threads; only the plain integer increments on the
    root tally are shared, and those are lost-update races at worst (totals
    may undercount slightly under contention; result correctness and the
    tape/replay determinism checks never depend on them).
    """

    cache_elements: int = 64 * 1024
    _frames: list[AccessStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._frames:
            self._frames.append(AccessStats())
        self._owner = threading.get_ident()
        self._tls = threading.local()
        self._generation = 0

    def _stack(self) -> list[AccessStats]:
        """This thread's frame stack (owner thread uses ``_frames`` itself)."""
        if threading.get_ident() == self._owner:
            return self._frames
        cached = getattr(self._tls, "stack", None)
        if cached is None or self._tls.generation != self._generation:
            cached = [self._frames[0]]
            self._tls.stack = cached
            self._tls.generation = self._generation
        return cached

    @property
    def root(self) -> AccessStats:
        """The bottom frame: the whole-run tally (shared across threads)."""
        return self._frames[0]

    @property
    def current(self) -> AccessStats:
        return self._stack()[-1]

    def frame(self) -> "_Frame":
        """Open a nested accounting frame (context manager)."""
        return _Frame(self)

    # -- reporting API used by operators ------------------------------------

    def sequential(self, count: int) -> None:
        for f in self._stack():
            f.touch_sequential(count)

    def random(self, count: int, region_size: int) -> None:
        for f in self._stack():
            f.touch_random(count, region_size, self.cache_elements)

    def ordered(self, count: int, region_size: int) -> None:
        """Record ``count`` in-order positional lookups into a region.

        Ordered sparse gathers touch each cache line at most once, so the
        traffic is bounded both by the region itself and by one line per
        lookup (8 elements at 64-byte lines / 8-byte cells).
        """
        self.sequential(min(region_size, count * 8))

    def write(self, count: int) -> None:
        for f in self._stack():
            f.touch_write(count)

    def event(self, name: str, count: int = 1) -> None:
        """Record a structural event (``cracks``, ``map_creations``, ...)."""
        for f in self._stack():
            setattr(f, name, getattr(f, name) + count)

    def policy_cut(self, policy_name: str, count: int = 1) -> None:
        """Attribute ``count`` auxiliary cuts to a crack policy by name."""
        for f in self._stack():
            f.record_policy_cut(policy_name, count)

    def reset(self) -> None:
        self._frames = [AccessStats()]
        # Invalidate every worker thread's cached stack: it must be re-seeded
        # with the fresh root the next time that thread reports anything.
        self._generation += 1


class _Frame:
    """Context manager that pushes/pops an :class:`AccessStats` frame.

    Enter and exit happen on the same thread, so the frame lands on (and is
    popped from) that thread's own stack.
    """

    def __init__(self, recorder: StatsRecorder) -> None:
        self._recorder = recorder
        self.stats = AccessStats()

    def __enter__(self) -> AccessStats:
        self._recorder._stack().append(self.stats)
        return self.stats

    def __exit__(self, *exc_info: object) -> None:
        popped = self._recorder._stack().pop()
        assert popped is self.stats


_GLOBAL = StatsRecorder()


def global_recorder() -> StatsRecorder:
    """The process-wide recorder used when an engine is not given its own."""
    return _GLOBAL
