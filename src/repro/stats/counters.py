"""Counters that classify every element touch an operator performs.

Operators report *element touches* — reads or writes of individual column
cells — classified by access pattern:

``sequential``
    a scan or slice over a contiguous range (merge-like access; at most one
    cache miss per line).
``clustered_random``
    positional lookups in random order, but confined to a region small enough
    to stay cache-resident (e.g. radix-clustered reconstruction, or lookups
    into a small cracked area).
``scattered_random``
    positional lookups in random order over a region larger than the cache
    (the expensive pattern the paper eliminates).

The counters are dimensionless element counts; :mod:`repro.stats.memory_model`
prices them.  A :class:`StatsRecorder` stacks :class:`AccessStats` frames so a
benchmark can attribute costs to query phases (selection, tuple
reconstruction before/after a join, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class AccessStats:
    """A tally of classified element touches plus structural event counts."""

    sequential: int = 0
    clustered_random: int = 0
    scattered_random: int = 0
    writes: int = 0
    cracks: int = 0
    index_lookups: int = 0
    map_creations: int = 0
    chunk_creations: int = 0
    chunk_drops: int = 0
    alignment_replays: int = 0

    def touch_sequential(self, count: int) -> None:
        self.sequential += int(count)

    def touch_random(self, count: int, region_size: int, cache_elements: int) -> None:
        """Record ``count`` random lookups into a region of ``region_size``.

        The region size decides whether the pattern is cache-clustered or
        scattered; ``cache_elements`` is the cache capacity expressed in
        elements (supplied by the active :class:`MemoryModel`).
        """
        if region_size <= cache_elements:
            self.clustered_random += int(count)
        else:
            self.scattered_random += int(count)

    def touch_write(self, count: int) -> None:
        self.writes += int(count)

    @property
    def total_touches(self) -> int:
        return self.sequential + self.clustered_random + self.scattered_random + self.writes

    def add(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this tally in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "AccessStats") -> "AccessStats":
        out = AccessStats()
        out.add(self)
        out.add(other)
        return out

    def snapshot(self) -> "AccessStats":
        return AccessStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class StatsRecorder:
    """A stack of :class:`AccessStats` frames.

    Operators report into the recorder; every open frame receives the events,
    so a caller can wrap a query phase in :meth:`frame` and read off that
    phase's costs while an outer frame still accumulates the query total.

    The cache size used to classify random accesses lives here so that the
    classification is consistent across every operator of an engine run.
    """

    cache_elements: int = 64 * 1024
    _frames: list[AccessStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._frames:
            self._frames.append(AccessStats())

    @property
    def root(self) -> AccessStats:
        """The bottom frame: the whole-run tally."""
        return self._frames[0]

    @property
    def current(self) -> AccessStats:
        return self._frames[-1]

    def frame(self) -> "_Frame":
        """Open a nested accounting frame (context manager)."""
        return _Frame(self)

    # -- reporting API used by operators ------------------------------------

    def sequential(self, count: int) -> None:
        for f in self._frames:
            f.touch_sequential(count)

    def random(self, count: int, region_size: int) -> None:
        for f in self._frames:
            f.touch_random(count, region_size, self.cache_elements)

    def ordered(self, count: int, region_size: int) -> None:
        """Record ``count`` in-order positional lookups into a region.

        Ordered sparse gathers touch each cache line at most once, so the
        traffic is bounded both by the region itself and by one line per
        lookup (8 elements at 64-byte lines / 8-byte cells).
        """
        self.sequential(min(region_size, count * 8))

    def write(self, count: int) -> None:
        for f in self._frames:
            f.touch_write(count)

    def event(self, name: str, count: int = 1) -> None:
        """Record a structural event (``cracks``, ``map_creations``, ...)."""
        for f in self._frames:
            setattr(f, name, getattr(f, name) + count)

    def reset(self) -> None:
        self._frames = [AccessStats()]


class _Frame:
    """Context manager that pushes/pops an :class:`AccessStats` frame."""

    def __init__(self, recorder: StatsRecorder) -> None:
        self._recorder = recorder
        self.stats = AccessStats()

    def __enter__(self) -> AccessStats:
        self._recorder._frames.append(self.stats)
        return self.stats

    def __exit__(self, *exc_info: object) -> None:
        popped = self._recorder._frames.pop()
        assert popped is self.stats


_GLOBAL = StatsRecorder()


def global_recorder() -> StatsRecorder:
    """The process-wide recorder used when an engine is not given its own."""
    return _GLOBAL
