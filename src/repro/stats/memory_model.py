"""An analytic memory/CPU model that prices access tallies.

Four price classes:

* ``sequential`` touches (scans, partition passes, slice reads) at a
  per-element CPU-bound rate — column-store kernels at the paper's scale are
  bound by per-tuple work plus streaming bandwidth, a few ns per element;
* ``clustered_random`` — random lookups confined to a cache-resident
  region (cheap: the region stays in cache across probes);
* ``scattered_random`` — random lookups over a region larger than the
  cache, each paying an (MLP-discounted) memory miss;
* ``writes`` — produced elements (cracking moves, materialized results).

The constants are calibrated so the paper's observed *ratios* hold (e.g.
selection cracking's scattered reconstruction vs. MonetDB's in-order
reconstruction in Exp1, the reordering crossovers in Exp3); absolute
numbers are not meaningful — the shape is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.counters import AccessStats


@dataclass(frozen=True)
class MemoryModel:
    """Prices an :class:`AccessStats` tally in model nanoseconds."""

    element_bytes: int = 8
    line_bytes: int = 64
    cache_bytes: int = 512 * 1024
    ns_sequential_element: float = 2.0
    ns_cached_hit: float = 3.0
    ns_dram_miss: float = 25.0
    ns_write: float = 1.0
    ns_index_lookup: float = 120.0

    @property
    def cache_elements(self) -> int:
        """Cache capacity in column cells; feeds access classification."""
        return self.cache_bytes // self.element_bytes

    @property
    def elements_per_line(self) -> int:
        return max(1, self.line_bytes // self.element_bytes)

    def cost_ns(self, stats: AccessStats) -> float:
        """Model time (ns) to execute the accesses in ``stats``."""
        return (
            stats.sequential * self.ns_sequential_element
            + stats.clustered_random * self.ns_cached_hit
            + stats.scattered_random * self.ns_dram_miss
            + stats.writes * self.ns_write
            + stats.index_lookups * self.ns_index_lookup
        )

    def cost_ms(self, stats: AccessStats) -> float:
        return self.cost_ns(stats) / 1e6

    def cost_seconds(self, stats: AccessStats) -> float:
        return self.cost_ns(stats) / 1e9


DEFAULT_MODEL = MemoryModel()
