"""Wall-clock timers with named phases.

Benchmarks need per-phase cost breakdowns (the paper's Tot / TR / Sel table,
Fig. 5's before-join vs. after-join split).  :class:`PhaseTimer` accumulates
wall-clock seconds under phase names; nested phases are not double counted —
time is attributed to the innermost open phase only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """A stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.seconds += time.perf_counter() - self._start
        self._start = None


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("select"):
            ...
        with timer.phase("reconstruct"):
            ...
        timer.totals  # {"select": ..., "reconstruct": ...}
    """

    totals: dict[str, float] = field(default_factory=dict)
    _stack: list[tuple[str, float]] = field(default_factory=list)

    def phase(self, name: str) -> "_Phase":
        return _Phase(self, name)

    def _enter(self, name: str) -> None:
        now = time.perf_counter()
        if self._stack:
            parent, started = self._stack[-1]
            self.totals[parent] = self.totals.get(parent, 0.0) + (now - started)
            self._stack[-1] = (parent, now)
        self._stack.append((name, now))

    def _exit(self) -> None:
        name, started = self._stack.pop()
        now = time.perf_counter()
        self.totals[name] = self.totals.get(name, 0.0) + (now - started)
        if self._stack:
            parent, _ = self._stack[-1]
            self._stack[-1] = (parent, now)

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def merge(self, other: "PhaseTimer") -> None:
        for name, secs in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + secs


class _Phase:
    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> None:
        self._timer._enter(self._name)

    def __exit__(self, *exc_info: object) -> None:
        self._timer._exit()
