"""Access-pattern accounting and the hierarchical memory cost model.

The paper's performance story is about *access patterns*: sideways cracking
replaces scattered random lookups over whole base columns with sequential
scans over small, contiguous, aligned areas.  Wall-clock time in Python is a
noisy proxy for that, so every engine in this repository reports two signals:

* measured wall-clock time (NumPy gathers vs. slices do differ), and
* an explicit :class:`~repro.stats.counters.AccessStats` tally of element
  touches classified as sequential, clustered-random (random within a
  cache-sized region), or scattered-random, priced by
  :class:`~repro.stats.memory_model.MemoryModel`.
"""

from repro.stats.counters import AccessStats, StatsRecorder, global_recorder
from repro.stats.memory_model import MemoryModel
from repro.stats.timing import PhaseTimer, Timer

__all__ = [
    "AccessStats",
    "StatsRecorder",
    "global_recorder",
    "MemoryModel",
    "PhaseTimer",
    "Timer",
]
