"""repro — self-organizing tuple reconstruction in column-stores.

A from-scratch Python/NumPy reproduction of Idreos, Kersten & Manegold,
*Self-organizing Tuple Reconstruction in Column-stores* (SIGMOD 2009):
**sideways cracking** and **partial sideways cracking** on a MonetDB-like
column-store substrate, with the paper's baselines (plain scans, presorted
copies, selection cracking, a row store) and its full experiment suite.

Quick start::

    import numpy as np
    from repro import Database, Interval, Predicate, Query, SidewaysEngine

    db = Database()
    rng = np.random.default_rng(0)
    db.create_table("R", {c: rng.integers(1, 10**7, 10**5) for c in "ABCD"})

    engine = SidewaysEngine(db)            # partial=True for partial maps
    query = Query(
        "R",
        predicates=(Predicate("A", Interval.open(1000, 500_000)),),
        projections=("B", "C"),
    )
    result = engine.run(query)             # cracks + aligns as a side effect
    result.columns["B"], result.stats      # values + access-pattern tally
"""

from repro.core.map import CrackerMap
from repro.core.mapset import FullMapStorage, MapSet
from repro.core.partial import (
    Chunk,
    ChunkMap,
    ChunkStorage,
    PartialConfig,
    PartialMap,
    PartialSidewaysCracker,
)
from repro.core.sideways import SidewaysCracker
from repro.core.tape import CrackerTape
from repro.cracking import Bound, CrackerColumn, CrackerIndex, Interval, Side
from repro.engine import (
    Database,
    JoinQuery,
    JoinSide,
    PlainEngine,
    Predicate,
    PresortedEngine,
    Query,
    QueryResult,
    RowStoreEngine,
    SelectionCrackingEngine,
    SidewaysEngine,
)
from repro.sql import execute as sql_execute
from repro.sql import parse as sql_parse
from repro.stats import AccessStats, MemoryModel, StatsRecorder
from repro.storage import BAT, Catalog, Relation

__version__ = "1.0.0"

__all__ = [
    # storage substrate
    "BAT", "Relation", "Catalog",
    # selection cracking
    "Bound", "Side", "Interval", "CrackerIndex", "CrackerColumn",
    # sideways cracking core
    "CrackerTape", "CrackerMap", "MapSet", "FullMapStorage", "SidewaysCracker",
    # partial sideways cracking
    "Chunk", "ChunkMap", "PartialMap", "ChunkStorage", "PartialConfig",
    "PartialSidewaysCracker",
    # engines
    "Database", "Query", "JoinQuery", "JoinSide", "Predicate", "QueryResult",
    "PlainEngine", "PresortedEngine", "SelectionCrackingEngine",
    "SidewaysEngine", "RowStoreEngine",
    # SQL front-end
    "sql_parse", "sql_execute",
    # instrumentation
    "AccessStats", "StatsRecorder", "MemoryModel",
    "__version__",
]
