"""A named collection of relations (the "database")."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.storage.relation import Relation


@dataclass
class Catalog:
    """Maps relation names to :class:`Relation` objects."""

    relations: dict[str, Relation] = field(default_factory=dict)

    def add(self, relation: Relation) -> Relation:
        if relation.name in self.relations:
            raise CatalogError(f"relation {relation.name!r} already exists")
        self.relations[relation.name] = relation
        return relation

    def get(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r}") from None

    def drop(self, name: str) -> None:
        if name not in self.relations:
            raise CatalogError(f"no relation named {name!r}")
        del self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations.values())

    def storage_tuples(self) -> int:
        return sum(rel.storage_tuples() for rel in self)
