"""The MonetDB-like column-store substrate.

Every relational table is a collection of Binary Association Tables
(:class:`~repro.storage.bat.BAT`): one per attribute, storing ``(key, attr)``
pairs where the key column is a dense, virtual (non-materialized) sequence of
tuple positions.  :class:`~repro.storage.relation.Relation` groups the BATs of
one table; :class:`~repro.storage.catalog.Catalog` names the relations of a
database.
"""

from repro.storage.bat import BAT
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.shared import SharedArray, SharedBAT
from repro.storage.types import ColumnType, coerce_column

__all__ = [
    "BAT",
    "Catalog",
    "Relation",
    "SharedArray",
    "SharedBAT",
    "ColumnType",
    "coerce_column",
]
