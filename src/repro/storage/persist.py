"""Saving and loading databases.

Base relations (and their dictionaries) round-trip through a single
``.npz`` archive plus an embedded JSON manifest.  Cracking structures are
*not* persisted — they are auxiliary by design (the paper's point: any map
or chunk can be dropped and relearned from the workload), so a reloaded
database simply starts cold.

Tombstones are persisted so deletions survive the round trip.
"""

from __future__ import annotations

import io
import json
import pathlib

import numpy as np

from repro.engine.database import Database
from repro.errors import SchemaError

_MANIFEST_KEY = "__manifest__"
_FORMAT_VERSION = 1


def save_database(db: Database, path: "str | pathlib.Path") -> None:
    """Write every table of ``db`` (values, dictionaries, tombstones)."""
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {"version": _FORMAT_VERSION, "tables": {}}
    for relation in db.catalog:
        table = relation.name
        columns = {}
        for attr in relation.attributes:
            bat = relation.column(attr)
            key = f"{table}::{attr}"
            arrays[key] = bat.values
            columns[attr] = {
                "ctype": bat.ctype.value,
                "dictionary": list(bat.dictionary.values) if bat.dictionary else None,
            }
        arrays[f"{table}::@tombstones"] = db.tombstones(table)
        manifest["tables"][table] = {"columns": columns}
    manifest_blob = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays, **{_MANIFEST_KEY: manifest_blob})


def load_database(path: "str | pathlib.Path", db: Database | None = None) -> Database:
    """Rebuild a :class:`Database` saved by :func:`save_database`."""
    from repro.storage.bat import BAT
    from repro.storage.relation import Relation
    from repro.storage.types import ColumnType, Dictionary

    with np.load(path, allow_pickle=False) as archive:
        if _MANIFEST_KEY not in archive:
            raise SchemaError(f"{path} is not a repro database archive")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
        if manifest.get("version") != _FORMAT_VERSION:
            raise SchemaError(
                f"unsupported archive version {manifest.get('version')!r}"
            )
        db = db or Database()
        for table, spec in manifest["tables"].items():
            relation = Relation(table)
            for attr, column_spec in spec["columns"].items():
                ctype = ColumnType(column_spec["ctype"])
                values = archive[f"{table}::{attr}"]
                dictionary = None
                if column_spec["dictionary"] is not None:
                    dictionary = Dictionary(tuple(column_spec["dictionary"]))
                relation.add_column(
                    attr, BAT(values.copy(), ctype, None, dictionary)
                )
            db.catalog.add(relation)
            from repro.engine.database import _TableState

            tombstones = archive[f"{table}::@tombstones"].astype(bool)
            db._tables[table] = _TableState(relation, tombstones.copy())
    return db


def dumps(db: Database) -> bytes:
    """In-memory serialization (round-trips through :func:`loads`)."""
    buffer = io.BytesIO()
    save_database(db, buffer)
    return buffer.getvalue()


def loads(blob: bytes) -> Database:
    return load_database(io.BytesIO(blob))
