"""Saving and loading databases.

Base relations (and their dictionaries) round-trip through a single
``.npz`` archive plus an embedded JSON manifest.  Cracking structures are
*not* persisted — they are auxiliary by design (the paper's point: any map
or chunk can be dropped and relearned from the workload), so a reloaded
database simply starts cold.

Tombstones are persisted so deletions survive the round trip.

Integrity: the manifest records a CRC32 per persisted array.  Loading
verifies every array against its recorded checksum, so a truncated or
bit-flipped snapshot raises a structured :class:`~repro.errors.PersistError`
naming the offending path and archive member instead of silently serving
damaged base data (which no amount of cracking-level self-healing could
recover from — base relations are the primary copy).
"""

from __future__ import annotations

import io
import json
import pathlib
import zipfile
import zlib

import numpy as np

from repro.engine.database import Database
from repro.errors import PersistError, SchemaError
from repro.faults.plan import active_plan, fault_hook

_MANIFEST_KEY = "__manifest__"
_FORMAT_VERSION = 2

#: Low-level failures the loader converts into :class:`PersistError`.
#: ``zipfile.BadZipFile`` subclasses more than one of these across Python
#: versions, so it is listed explicitly.
_IO_ERRORS = (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError)


def _crc32(values: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(values).tobytes()) & 0xFFFFFFFF


def _path_of(path: "str | pathlib.Path | io.IOBase") -> str | None:
    if isinstance(path, (str, pathlib.Path)):
        return str(path)
    return getattr(path, "name", None)


def _file_size(path: "str | pathlib.Path | io.IOBase") -> int | None:
    try:
        if isinstance(path, (str, pathlib.Path)):
            return pathlib.Path(path).stat().st_size
        if hasattr(path, "getbuffer"):
            return len(path.getbuffer())
    except OSError:
        return None
    return None


def _stage(values: np.ndarray) -> np.ndarray:
    """Pass one outbound array through the ``persist.save`` failpoint.

    The manifest CRC is always computed from the *live* array, so a
    ``corrupt`` fault here yields exactly the torn-write scenario the
    checksums exist for: the archive holds flipped bytes under a pristine
    checksum, and the next :func:`load_database` reports a structured
    :class:`PersistError` instead of serving damaged base data.  The copy
    is taken only while a plan is armed — live columns must never be the
    corruption target.
    """
    if active_plan() is not None:
        values = values.copy()
    fault_hook("persist.save", values)
    return values


def save_database(db: Database, path: "str | pathlib.Path") -> None:
    """Write every table of ``db`` (values, dictionaries, tombstones)."""
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {"version": _FORMAT_VERSION, "tables": {}}
    for relation in db.catalog:
        table = relation.name
        columns = {}
        for attr in relation.attributes:
            bat = relation.column(attr)
            key = f"{table}::{attr}"
            arrays[key] = _stage(bat.values)
            columns[attr] = {
                "ctype": bat.ctype.value,
                "dictionary": list(bat.dictionary.values) if bat.dictionary else None,
                "crc32": _crc32(bat.values),
            }
        tombstones = db.tombstones(table)
        arrays[f"{table}::@tombstones"] = _stage(tombstones)
        manifest["tables"][table] = {
            "columns": columns,
            "tombstones_crc32": _crc32(tombstones),
        }
    manifest_blob = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays, **{_MANIFEST_KEY: manifest_blob})


def _read_member(archive, key: str, path_str: str | None) -> np.ndarray:
    """One archive array, converting low-level damage into ``PersistError``."""
    try:
        return archive[key]
    except KeyError as err:
        raise PersistError(
            "archive member missing", path=path_str, member=key
        ) from err
    except _IO_ERRORS as err:
        raise PersistError(
            f"archive member unreadable: {err}", path=path_str, member=key
        ) from err


def _verify_crc(
    values: np.ndarray, expected: int | None, path_str: str | None, key: str
) -> None:
    if expected is None:  # a v1 archive: no checksums recorded
        return
    actual = _crc32(values)
    if actual != expected:
        raise PersistError(
            f"checksum mismatch (recorded {expected:#010x}, "
            f"computed {actual:#010x}) — the snapshot is corrupted",
            path=path_str, member=key,
        )


def load_database(path: "str | pathlib.Path", db: Database | None = None) -> Database:
    """Rebuild a :class:`Database` saved by :func:`save_database`.

    Raises :class:`SchemaError` for files that are not repro archives at
    all, and :class:`PersistError` (with path/member context) for archives
    that are truncated, bit-flipped, or otherwise damaged.
    """
    from repro.storage.bat import BAT
    from repro.storage.relation import Relation
    from repro.storage.types import ColumnType, Dictionary

    path_str = _path_of(path)
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except _IO_ERRORS as err:
        raise PersistError(
            f"cannot open database archive: {err}",
            path=path_str, offset=_file_size(path),
        ) from err
    with archive_cm as archive:
        if _MANIFEST_KEY not in archive:
            raise SchemaError(f"{path} is not a repro database archive")
        try:
            manifest = json.loads(
                bytes(_read_member(archive, _MANIFEST_KEY, path_str)).decode("utf-8")
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            raise PersistError(
                f"manifest is not valid JSON: {err}",
                path=path_str, member=_MANIFEST_KEY,
            ) from err
        if manifest.get("version") not in (1, _FORMAT_VERSION):
            raise SchemaError(
                f"unsupported archive version {manifest.get('version')!r}"
            )
        db = db or Database()
        for table, spec in manifest["tables"].items():
            relation = Relation(table)
            for attr, column_spec in spec["columns"].items():
                key = f"{table}::{attr}"
                ctype = ColumnType(column_spec["ctype"])
                values = _read_member(archive, key, path_str)
                # Between read and verify: a corrupt fault here models
                # in-flight damage, which the CRC check below must catch.
                fault_hook("persist.load", values)
                _verify_crc(values, column_spec.get("crc32"), path_str, key)
                dictionary = None
                if column_spec["dictionary"] is not None:
                    dictionary = Dictionary(tuple(column_spec["dictionary"]))
                relation.add_column(
                    attr, BAT(values.copy(), ctype, None, dictionary)
                )
            db.catalog.add(relation)
            from repro.engine.database import _TableState

            key = f"{table}::@tombstones"
            tombstones = _read_member(archive, key, path_str).astype(bool)
            fault_hook("persist.load", tombstones)
            _verify_crc(
                tombstones, spec.get("tombstones_crc32"), path_str, key
            )
            if len(tombstones) != len(relation):
                raise PersistError(
                    f"tombstone mask has {len(tombstones)} entries for "
                    f"{len(relation)} rows", path=path_str, member=key,
                )
            db._tables[table] = _TableState(relation, tombstones.copy())
    return db


def dumps(db: Database) -> bytes:
    """In-memory serialization (round-trips through :func:`loads`)."""
    buffer = io.BytesIO()
    save_database(db, buffer)
    return buffer.getvalue()


def loads(blob: bytes) -> Database:
    return load_database(io.BytesIO(blob))
