"""Shared-memory column payloads for process-parallel serving.

A :class:`SharedArray` places one NumPy array in a
``multiprocessing.shared_memory`` segment; a :class:`SharedBAT` mirrors a
:class:`~repro.storage.bat.BAT` (values plus materialized keys) across such
segments.  Both sides see **zero-copy views**: the creating process writes
the payload once, worker processes attach by segment name and map the same
physical pages — no pickling of column payloads ever crosses the process
boundary (Rozenberg's analytic-column-store model: columnar payloads live
in flat, process-shareable buffers).

Lifecycle discipline (the part ``/dev/shm`` makes unforgiving):

* every segment has exactly one **owner** — the process that created it.
  ``close()`` on the owner both unmaps *and unlinks* the segment
  (unlink-on-close), so a closed owner can never leak a name;
* attachments (worker-side maps of an existing name) ``close()`` their
  mapping only; the owner's unlink reclaims the memory once the last map
  drops (POSIX shm semantics — a SIGKILLed attacher cannot leak either);
* :class:`SharedBAT` adds an explicit refcount (:meth:`SharedBAT.retain` /
  :meth:`SharedBAT.release`) for owners shared by several structures;
* every create/attach is recorded in a process-local registry;
  :func:`live_segment_names` backs the test suite's leak-check fixture and
  :func:`leaked_system_segments` sweeps ``/dev/shm`` for names this process
  created but never unlinked.

Attachments bypass ``multiprocessing.resource_tracker`` registration: on
Python < 3.13 an attach registers the name with the *attaching* process's
tracker, whose exit-time cleanup would unlink a segment the owner still
serves (the well-known double-unlink hazard).  Ownership here is explicit,
so the tracker must not second-guess it.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import shared_memory

import numpy as np

from repro.errors import SchemaError, ServerError
from repro.server.locks import Mutex
from repro.storage.bat import BAT
from repro.storage.types import ColumnType

#: Segment names are prefixed with the creating PID so concurrent test runs
#: never collide and the leak sweep can attribute every name it finds.
SEGMENT_PREFIX = "repro_shm"

_counter = itertools.count()
_registry_mutex = Mutex("shm.registry")
#: name -> "owner" | "attached"; the process-local accounting behind the
#: suite's leak-check fixture.
_live: dict[str, str] = {}


def _next_name() -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_counter)}"


def live_segment_names() -> frozenset[str]:
    """Names of segments this process created or attached and has not closed."""
    with _registry_mutex:
        return frozenset(_live)


def leaked_system_segments() -> list[str]:
    """Names under ``/dev/shm`` that this process created but never unlinked.

    Empty on platforms without a ``/dev/shm`` (the in-process registry still
    covers those).  Segments created by *other* processes (including other
    test runs) are ignored via the PID prefix.
    """
    root = "/dev/shm"
    mine = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    try:
        entries = os.listdir(root)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(mine))


def _register(name: str, role: str) -> None:
    with _registry_mutex:
        _live[name] = role


def _unregister(name: str) -> None:
    with _registry_mutex:
        _live.pop(name, None)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    Only the owner may unlink; but on Python < 3.13 every
    ``SharedMemory(name=...)`` attach registers the name with the resource
    tracker, whose exit-time cleanup would unlink a segment the owner still
    serves.  Worse, fork-started workers *share* the parent's tracker
    process, so a worker-side ``unregister`` after the fact would delete the
    owner's legitimate entry (double-unlink hazard inverted).  Suppressing
    registration during the attach sidesteps both: attachments simply never
    enter the tracker's books.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
    except (ImportError, AttributeError):
        return shared_memory.SharedMemory(name=name)
    with _registry_mutex:
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArray:
    """One NumPy array in one shared-memory segment, with explicit ownership.

    ``owner=True`` instances created the segment and unlink it on
    :meth:`close`; ``owner=False`` instances (worker-side attaches) only
    unmap.  ``view`` is the zero-copy ndarray over the segment's pages.
    """

    __slots__ = ("shm", "view", "shape", "dtype", "owner", "closed")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self.shm = shm
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self.closed = False
        self.view = np.ndarray(shape, dtype=self.dtype, buffer=shm.buf)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, values: np.ndarray) -> "SharedArray":
        """Place a copy of ``values`` into a fresh owned segment."""
        values = np.ascontiguousarray(values)
        out = cls.zeros(values.shape, values.dtype)
        out.view[...] = values
        return out

    @classmethod
    def zeros(
        cls, shape: "tuple[int, ...] | int", dtype: object = np.int64
    ) -> "SharedArray":
        """A fresh owned segment of zeroed ``shape`` x ``dtype``."""
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(
            name=_next_name(), create=True, size=nbytes
        )
        _register(shm.name, "owner")
        arr = cls(shm, tuple(shape), dtype, owner=True)
        arr.view[...] = 0
        return arr

    @property
    def meta(self) -> tuple[str, str, tuple[int, ...]]:
        """A picklable descriptor another process can :meth:`attach` with."""
        return (self.shm.name, self.dtype.str, self.shape)

    @classmethod
    def attach(cls, meta: tuple[str, str, tuple[int, ...]]) -> "SharedArray":
        """Map an existing segment by descriptor (non-owning)."""
        name, dtype, shape = meta
        shm = _attach_untracked(name)
        _register(name, "attached")
        return cls(shm, tuple(shape), np.dtype(dtype), owner=False)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap; owners also unlink.  Idempotent.

        A still-exported view (a caller holding an uncopied slice) keeps the
        mapping alive until it drops, but the owner's *unlink* always runs —
        the name can never leak past an owner close.
        """
        if self.closed:
            return
        self.closed = True
        name = self.shm.name
        self.view = None  # type: ignore[assignment]  # release our buffer export
        try:
            self.shm.close()
        except BufferError:
            # An outstanding external view pins the mapping; the pages free
            # when it drops.  Unlink below still removes the name.
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
        _unregister(name)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return int(self.shape[0]) if self.shape else 0

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"<SharedArray {self.shm.name} {self.dtype}{list(self.shape)} "
            f"{role}{' closed' if self.closed else ''}>"
        )


#: Column types a shared segment can carry: fixed-width numerics only.
#: Dictionary-encoded columns carry a Python-object code table that cannot
#: live in flat shared pages; the serving layer shards numeric attributes.
_SHAREABLE = (ColumnType.INT, ColumnType.FLOAT)


class SharedBAT:
    """A BAT whose value and key payloads live in shared-memory segments.

    Mirrors the owning side of one shard: ``values`` (and materialized
    ``keys``) are :class:`SharedArray` segments; :meth:`as_bat` yields a
    zero-copy :class:`~repro.storage.bat.BAT` over the mapped pages, and
    :meth:`meta` a picklable descriptor workers :meth:`attach` with.

    Owners are refcounted: each logical holder calls :meth:`retain` and
    :meth:`release`; the segments unlink when the count reaches zero (or on
    an explicit :meth:`close`, which overrides outstanding holds — the
    executor's shutdown path must never leak on an unbalanced holder).
    """

    def __init__(
        self,
        values: SharedArray,
        keys: SharedArray | None,
        ctype: ColumnType,
    ) -> None:
        self._values = values
        self._keys = keys
        self.ctype = ctype
        self._refs = 1
        self._mutex = Mutex("shm.bat")
        self.closed = False

    # -- construction --------------------------------------------------------

    @classmethod
    def from_bat(cls, bat: BAT) -> "SharedBAT":
        """Copy one BAT's payloads into fresh owned segments."""
        if bat.ctype not in _SHAREABLE:
            raise SchemaError(
                f"cannot share a {bat.ctype.name} column; shared shards are "
                "fixed-width numeric only"
            )
        values = SharedArray.create(bat.values)
        keys = SharedArray.create(bat.materialized_keys())
        return cls(values, keys, bat.ctype)

    def meta(self) -> dict[str, object]:
        """Picklable attach descriptor (segment names, dtypes, shapes)."""
        return {
            "values": self._values.meta,
            "keys": None if self._keys is None else self._keys.meta,
            "ctype": self.ctype.name,
        }

    @classmethod
    def attach(cls, meta: dict[str, object]) -> "SharedBAT":
        """Map another process's segments (non-owning)."""
        values = SharedArray.attach(meta["values"])  # type: ignore[arg-type]
        keys_meta = meta["keys"]
        keys = None if keys_meta is None else SharedArray.attach(keys_meta)  # type: ignore[arg-type]
        return cls(values, keys, ColumnType[str(meta["ctype"])])

    # -- views ---------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        return self._values.view

    @property
    def keys(self) -> np.ndarray | None:
        return None if self._keys is None else self._keys.view

    def as_bat(self) -> BAT:
        """A zero-copy BAT over the mapped segments."""
        if self.closed:
            raise ServerError("SharedBAT used after close")
        return BAT(self.values, self.ctype, self.keys, None)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def nbytes(self) -> int:
        total = int(np.prod(self._values.shape)) * self._values.dtype.itemsize
        if self._keys is not None:
            total += int(np.prod(self._keys.shape)) * self._keys.dtype.itemsize
        return total

    # -- lifecycle -----------------------------------------------------------

    def retain(self) -> "SharedBAT":
        with self._mutex:
            if self.closed:
                raise ServerError("SharedBAT retained after close")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one hold; the last hold closes (and owners unlink)."""
        with self._mutex:
            if self.closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self.closed = True
        self._close_segments()

    def close(self) -> None:
        """Unconditional close: unmap/unlink regardless of holds."""
        with self._mutex:
            if self.closed:
                return
            self.closed = True
            self._refs = 0
        self._close_segments()

    def _close_segments(self) -> None:
        self._values.close()
        if self._keys is not None:
            self._keys.close()

    def __enter__(self) -> "SharedBAT":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
