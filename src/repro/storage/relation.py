"""Relations: named collections of aligned base BATs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError, SchemaError
from repro.storage.bat import BAT


@dataclass
class Relation:
    """A relational table stored column-wise.

    All member BATs are base BATs (virtual dense keys) of equal length; row
    ``i`` of every column belongs to relational tuple ``i``, in insertion
    order — the alignment that makes positional tuple reconstruction work.
    """

    name: str
    columns: dict[str, BAT] = field(default_factory=dict)

    @classmethod
    def from_arrays(cls, name: str, arrays: dict[str, object]) -> "Relation":
        """Build a relation from ``{attribute: values}``.

        String-valued arrays are dictionary-encoded automatically.
        """
        rel = cls(name)
        for attr, values in arrays.items():
            arr = np.asarray(values)
            if arr.dtype.kind in ("U", "S", "O"):
                rel.add_column(attr, BAT.from_strings(arr))
            else:
                rel.add_column(attr, BAT.from_values(arr))
        return rel

    def add_column(self, attr: str, bat: BAT) -> None:
        if attr in self.columns:
            raise CatalogError(f"relation {self.name!r} already has column {attr!r}")
        if not bat.is_base:
            raise SchemaError("relations store base BATs only")
        if self.columns and len(bat) != len(self):
            raise SchemaError(
                f"column {attr!r} has {len(bat)} rows; relation {self.name!r} has {len(self)}"
            )
        self.columns[attr] = bat

    def column(self, attr: str) -> BAT:
        try:
            return self.columns[attr]
        except KeyError:
            raise CatalogError(f"relation {self.name!r} has no column {attr!r}") from None

    def values(self, attr: str) -> np.ndarray:
        """The raw value array of ``attr`` (convenience accessor)."""
        return self.column(attr).values

    def __contains__(self, attr: str) -> bool:
        return attr in self.columns

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def attributes(self) -> list[str]:
        return list(self.columns)

    def append_rows(self, rows: dict[str, object]) -> None:
        """Append tuples given as ``{attribute: values}`` to every column.

        Every attribute of the relation must be present so columns stay
        aligned.
        """
        missing = set(self.columns) - set(rows)
        extra = set(rows) - set(self.columns)
        if missing or extra:
            raise SchemaError(
                f"append_rows must cover exactly the relation's attributes; "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        lengths = {attr: len(np.asarray(vals)) for attr, vals in rows.items()}
        if len(set(lengths.values())) != 1:
            raise SchemaError(f"ragged row batch: {lengths}")
        for attr, vals in rows.items():
            bat = self.columns[attr]
            addition = BAT(
                np.ascontiguousarray(np.asarray(vals), dtype=bat.ctype.dtype),
                bat.ctype,
                None,
                bat.dictionary,
            )
            self.columns[attr] = bat.append(addition)

    def delete_rows(self, positions: np.ndarray) -> None:
        """Physically remove the tuples at ``positions`` from every column."""
        keep = np.ones(len(self), dtype=bool)
        keep[np.asarray(positions, dtype=np.int64)] = False
        for attr, bat in self.columns.items():
            self.columns[attr] = BAT(bat.values[keep], bat.ctype, None, bat.dictionary)

    def sorted_copy(self, by: str, then_by: tuple[str, ...] = ()) -> "Relation":
        """A presorted copy: all columns reordered by ``by`` (stable).

        ``then_by`` adds minor sort keys, mirroring the paper's presorted
        tables that are sub-sorted on group-by / order-by columns.
        """
        keys = [self.values(attr) for attr in reversed(then_by)] + [self.values(by)]
        order = np.lexsort(keys)
        copy = Relation(f"{self.name}@{by}")
        for attr, bat in self.columns.items():
            copy.add_column(attr, BAT(bat.values[order], bat.ctype, None, bat.dictionary))
        return copy

    def storage_tuples(self) -> int:
        """Storage footprint in cells (tuples × attributes)."""
        return len(self) * len(self.columns)
