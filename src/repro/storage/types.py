"""Column value types.

The engine stores every attribute as a one-dimensional NumPy array.  Three
logical types cover the paper's workloads:

* ``INT`` — 64-bit integers (synthetic workloads, keys, dates-as-ordinals).
* ``FLOAT`` — 64-bit floats (TPC-H prices, discounts).
* ``DICT`` — dictionary-encoded strings: the column stores int32 codes and the
  type carries the code→string table.  This matches standard column-store
  practice; the paper defers genuine string cracking to future work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Logical type of a stored column."""

    INT = "int"
    FLOAT = "float"
    DICT = "dict"

    @property
    def dtype(self) -> np.dtype:
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(np.int32)


@dataclass(frozen=True)
class Dictionary:
    """A code→string table for ``DICT`` columns.

    Codes are assigned in sorted string order so that range predicates on
    codes correspond to lexicographic ranges on the strings.
    """

    values: tuple[str, ...]

    @classmethod
    def from_strings(cls, strings: "np.ndarray | list[str]") -> tuple["Dictionary", np.ndarray]:
        """Encode ``strings``; returns the dictionary and the code column."""
        uniques, codes = np.unique(np.asarray(strings, dtype=object), return_inverse=True)
        return cls(tuple(str(u) for u in uniques)), codes.astype(np.int32)

    def code_of(self, string: str) -> int:
        """The code for ``string``; raises :class:`SchemaError` if absent."""
        lo, hi = 0, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.values[mid] < string:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.values) and self.values[lo] == string:
            return lo
        raise SchemaError(f"string {string!r} is not in the dictionary")

    def decode(self, codes: np.ndarray) -> list[str]:
        return [self.values[int(c)] for c in codes]

    def prefix_range(self, prefix: str) -> tuple[int, int]:
        """Codes ``[lo, hi)`` of strings starting with ``prefix``.

        Codes are assigned in sorted order, so a prefix predicate is a
        contiguous code range (empty when nothing matches).
        """
        import bisect

        lo = bisect.bisect_left(self.values, prefix)
        hi = bisect.bisect_left(self.values, prefix + "￿")
        return lo, hi


def coerce_column(values: object, ctype: ColumnType | None = None) -> tuple[np.ndarray, ColumnType]:
    """Normalize ``values`` to a contiguous 1-D array plus its logical type.

    Infers ``INT`` vs ``FLOAT`` from the data when ``ctype`` is omitted.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be one-dimensional, got shape {arr.shape}")
    if ctype is None:
        if np.issubdtype(arr.dtype, np.integer) or np.issubdtype(arr.dtype, np.bool_):
            ctype = ColumnType.INT
        elif np.issubdtype(arr.dtype, np.floating):
            ctype = ColumnType.FLOAT
        else:
            raise SchemaError(
                f"cannot infer a column type for dtype {arr.dtype}; "
                "dictionary-encode strings explicitly"
            )
    out = np.ascontiguousarray(arr, dtype=ctype.dtype)
    return out, ctype
