"""Binary Association Tables.

A BAT stores one attribute as ``(key, attr)`` pairs.  For base BATs the key
column is *virtual*: keys are the dense sequence ``0..n-1`` equal to array
positions, so only the value array is materialized — exactly MonetDB's
tuple-order alignment that positional tuple reconstruction relies on.

Intermediate results may carry materialized keys (e.g. the output of a
selection, which is a list of qualifying positions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.storage.types import ColumnType, Dictionary, coerce_column


@dataclass
class BAT:
    """One attribute column with an optionally virtual key column.

    Attributes
    ----------
    values:
        The attribute values, one per tuple, in tuple-insertion order.
    ctype:
        Logical type of ``values``.
    keys:
        ``None`` for a virtual dense key column (base BATs); otherwise a
        materialized int64 key array of the same length as ``values``.
    dictionary:
        The code table when ``ctype`` is ``DICT``.
    """

    values: np.ndarray
    ctype: ColumnType
    keys: np.ndarray | None = None
    dictionary: Dictionary | None = None

    def __post_init__(self) -> None:
        if self.keys is not None and len(self.keys) != len(self.values):
            raise SchemaError("key and value columns must have equal length")
        if self.ctype is ColumnType.DICT and self.dictionary is None:
            raise SchemaError("DICT columns require a dictionary")

    @classmethod
    def from_values(cls, values: object, ctype: ColumnType | None = None) -> "BAT":
        """Build a base BAT (virtual keys) from raw values."""
        arr, inferred = coerce_column(values, ctype)
        return cls(values=arr, ctype=inferred)

    @classmethod
    def from_strings(cls, strings: "list[str] | np.ndarray") -> "BAT":
        """Build a dictionary-encoded base BAT from strings."""
        dictionary, codes = Dictionary.from_strings(strings)
        return cls(values=codes, ctype=ColumnType.DICT, dictionary=dictionary)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_base(self) -> bool:
        """True when the key column is virtual (dense ``0..n-1``)."""
        return self.keys is None

    def materialized_keys(self) -> np.ndarray:
        """The key column, materializing the dense sequence if virtual."""
        if self.keys is not None:
            return self.keys
        return np.arange(len(self.values), dtype=np.int64)

    def slice(self, lo: int, hi: int) -> "BAT":
        """A zero-copy view of rows ``[lo, hi)``."""
        keys = None if self.keys is None else self.keys[lo:hi]
        if self.keys is None and lo != 0:
            keys = np.arange(lo, hi, dtype=np.int64)
        return BAT(self.values[lo:hi], self.ctype, keys, self.dictionary)

    def gather(self, positions: np.ndarray) -> "BAT":
        """Positional lookups: rows of this BAT at ``positions``.

        The result carries the looked-up positions as materialized keys when
        this BAT is a base BAT, else the gathered keys.
        """
        keys = positions.astype(np.int64) if self.keys is None else self.keys[positions]
        return BAT(self.values[positions], self.ctype, keys, self.dictionary)

    def append(self, other: "BAT") -> "BAT":
        """A new BAT with ``other``'s rows appended (base BATs only)."""
        if not (self.is_base and other.is_base):
            raise SchemaError("append is defined on base BATs only")
        if self.ctype is not other.ctype:
            raise SchemaError("cannot append BATs of different types")
        return BAT(np.concatenate([self.values, other.values]), self.ctype,
                   None, self.dictionary)

    def copy(self) -> "BAT":
        keys = None if self.keys is None else self.keys.copy()
        return BAT(self.values.copy(), self.ctype, keys, self.dictionary)
