"""Row-store cracking (paper §7: "a fully unexplored and promising area").

The straightforward transplant of database cracking to an N-ary store:
keep one array of whole tuples per cracked attribute and physically
reorganize *entire rows* on each range selection.  Selections then return a
contiguous row slice with every attribute already in place — tuple
reconstruction disappears entirely.

The trade-off this makes measurable: every crack moves ``width×`` more
bytes than a column crack, but multi-attribute queries read nothing beyond
the qualifying slice.  The extension benchmark compares it against
column-wise sideways cracking as the number of projected attributes grows —
the same early/late materialization tension the paper's introduction opens
with, now inside the cracking world.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sanitizer import checkpoint_crack, register_structure
from repro.cracking.avl import CrackerIndex
from repro.cracking.bounds import Interval
from repro.errors import CrackError
from repro.stats.counters import StatsRecorder, global_recorder
from repro.storage.relation import Relation


class RowCracker:
    """A cracked N-ary copy of a relation, organized on one attribute."""

    def __init__(
        self,
        relation: Relation,
        crack_attr: str,
        recorder: StatsRecorder | None = None,
    ) -> None:
        self.crack_attr = crack_attr
        self.attributes = list(relation.attributes)
        self.width = len(self.attributes)
        self._recorder = recorder or global_recorder()
        dtype = [("@key", np.int64)] + [
            (attr, relation.column(attr).values.dtype) for attr in self.attributes
        ]
        self.rows = np.empty(len(relation), dtype=dtype)
        self.rows["@key"] = np.arange(len(relation), dtype=np.int64)
        for attr in self.attributes:
            self.rows[attr] = relation.values(attr)
        self.index = CrackerIndex()
        # Creating the row copy touches every cell once (read + write).
        cells = len(relation) * (self.width + 1)
        self._recorder.sequential(cells)
        self._recorder.write(cells)
        register_structure(self, "rowstore", f"rowstore[{crack_attr}]")

    def __len__(self) -> int:
        return len(self.rows)

    # -- cracking ------------------------------------------------------------------

    def _head(self) -> np.ndarray:
        return self.rows[self.crack_attr]

    def crack(self, interval: Interval) -> tuple[int, int]:
        """Crack whole rows on the organizing attribute; returns ``[lo, hi)``.

        Row movement is ``width×`` a column crack — that is the point this
        extension makes measurable.
        """
        n = len(self.rows)
        lower = interval.lower_bound()
        upper = interval.upper_bound()
        w_lo, w_hi = 0, n
        if lower is not None and upper is not None:
            lo_pos = self.index.position_of(lower)
            hi_pos = self.index.position_of(upper)
            if lo_pos is None and hi_pos is None:
                piece_l = self.index.enclosing(lower, n)
                piece_u = self.index.enclosing(upper, n)
                if piece_l == piece_u:
                    p1, p2 = self._partition3(piece_l, lower, upper)
                    self.index.insert(lower, p1)
                    self.index.insert(upper, p2)
                    return p1, p2
        if lower is not None:
            w_lo = self._ensure_bound(lower)
        if upper is not None:
            w_hi = self._ensure_bound(upper)
        return w_lo, w_hi

    def _ensure_bound(self, bound) -> int:
        pos = self.index.position_of(bound)
        if pos is not None:
            return pos
        lo, hi = self.index.enclosing(bound, len(self.rows))
        segment = self.rows[lo:hi]
        below = bound.below_mask(segment[self.crack_attr])
        split = lo + int(below.sum())
        order = np.concatenate([np.flatnonzero(below), np.flatnonzero(~below)])
        self.rows[lo:hi] = segment[order]
        self._account(hi - lo)
        self.index.insert(bound, split)
        return split

    def _partition3(self, piece, lower, upper) -> tuple[int, int]:
        lo, hi = piece
        segment = self.rows[lo:hi]
        values = segment[self.crack_attr]
        below_low = lower.below_mask(values)
        below_high = upper.below_mask(values)
        mid = below_high & ~below_low
        high = ~below_high
        order = np.concatenate(
            [np.flatnonzero(below_low), np.flatnonzero(mid), np.flatnonzero(high)]
        )
        self.rows[lo:hi] = segment[order]
        self._account(hi - lo)
        p1 = lo + int(below_low.sum())
        p2 = p1 + int(mid.sum())
        return p1, p2

    def _account(self, rows_moved: int) -> None:
        cells = rows_moved * (self.width + 1)
        self._recorder.sequential(cells)
        self._recorder.write(cells)
        self._recorder.event("cracks")
        checkpoint_crack(self, "rowstore")

    # -- querying ------------------------------------------------------------------------

    def select(
        self, interval: Interval, projections: list[str]
    ) -> dict[str, np.ndarray]:
        """Qualifying rows' attributes — a contiguous slice, zero TR."""
        if any(attr not in self.attributes for attr in projections):
            raise CrackError(f"unknown projection among {projections}")
        lo, hi = self.crack(interval)
        # Row stores read full tuple width regardless of projections.
        self._recorder.sequential((hi - lo) * (self.width + 1))
        segment = self.rows[lo:hi]
        return {attr: segment[attr].copy() for attr in projections}

    def select_keys(self, interval: Interval) -> np.ndarray:
        lo, hi = self.crack(interval)
        self._recorder.sequential((hi - lo) * (self.width + 1))
        return self.rows["@key"][lo:hi].copy()

    # -- invariants -------------------------------------------------------------------------

    def check_invariants(self, deep: bool = False) -> None:
        """Run the shared invariant catalog; raises ``InvariantError``."""
        from repro.analysis.invariants import check_or_raise

        check_or_raise(self, "rowstore", deep=deep)
