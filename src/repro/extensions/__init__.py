"""Extensions beyond the paper's evaluated system.

The paper's research agenda (§7) names row-store cracking "a fully
unexplored and promising area"; :mod:`~repro.extensions.row_cracking`
implements the obvious first cut — cracking whole N-ary tuples — so it can
be compared against column-wise sideways cracking.  §3.4's operator ideas
(piece-exploiting aggregates, cracker joins) live in
:mod:`repro.core.aggregates` and :mod:`repro.engine.cracker_join`.
"""

from repro.extensions.row_cracking import RowCracker

__all__ = ["RowCracker"]
